#!/usr/bin/env python3
"""NVM lifetime planner: how long does a PCM DIMM survive under each scheme?

The paper's §5.2 argues ObfusMem preserves PCM lifetime while ORAM's
~100-block path rewrites destroy it.  This example sizes that claim for a
concrete deployment: it simulates a write-heavy workload on both systems,
measures actual cell writes, and projects device lifetime from cell
endurance — then sweeps the dummy-address policy ablation to show why the
paper's FIXED design is the only one that is wear-free.

    python examples/nvm_lifetime_planner.py
"""


from repro.analysis.energy import analytical_comparison
from repro.core.config import DummyAddressPolicy
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark

PCM_CELL_ENDURANCE = 10**8  # writes per cell (paper: "a few hundred million")
REQUESTS = 3000


def cell_writes(stats: dict[str, float]) -> float:
    return sum(v for k, v in stats.items() if k.endswith(".array_writes"))


def main() -> None:
    profile = SPEC_PROFILES["lbm"]  # write-heavy streaming workload
    print(f"workload: {profile.name}, write fraction {profile.write_fraction}")

    baseline = run_benchmark(profile, ProtectionLevel.UNPROTECTED, num_requests=REQUESTS)
    obfus = run_benchmark(profile, ProtectionLevel.OBFUSMEM_AUTH, num_requests=REQUESTS)
    oram = run_benchmark(profile, ProtectionLevel.ORAM, num_requests=REQUESTS)

    base_writes = cell_writes(baseline.stats)
    obfus_writes = cell_writes(obfus.stats)
    oram_writes = oram.stats.get("oram.cell_block_writes", 0)

    print(f"\nPCM cell block-writes for {REQUESTS} memory requests:")
    print(f"  unprotected   : {base_writes:8.0f}")
    print(f"  ObfusMem+Auth : {obfus_writes:8.0f} "
          f"(amplification {obfus_writes / max(base_writes, 1):.2f}x)")
    print(f"  Path ORAM     : {oram_writes:8.0f} "
          f"(amplification {oram_writes / max(base_writes, 1):.1f}x)")

    lifetime_ratio = oram_writes / max(obfus_writes, 1)
    print(f"\nprojected lifetime: ObfusMem outlives ORAM by ~{lifetime_ratio:.0f}x "
          f"(paper's analytical estimate: ~{analytical_comparison().lifetime_improvement:.0f}x)")

    # --- ablation: the three dummy-address designs of §3.3 --------------
    print("\ndummy-address policy ablation (extra cell writes vs FIXED):")
    fixed_writes = None
    for policy in (DummyAddressPolicy.FIXED, DummyAddressPolicy.ORIGINAL,
                   DummyAddressPolicy.RANDOM):
        machine = MachineConfig(dummy_policy=policy)
        result = run_benchmark(
            profile, ProtectionLevel.OBFUSMEM, machine=machine, num_requests=REQUESTS
        )
        writes = cell_writes(result.stats)
        if fixed_writes is None:
            fixed_writes = writes
        print(f"  {policy.value:8s}: {writes:8.0f} cell writes "
              f"({writes / max(fixed_writes, 1):.2f}x FIXED), "
              f"exec overhead {result.overhead_pct(baseline):+.1f}%")
    print("\nFIXED lets the memory drop dummies before the array: every read's")
    print("escort write costs nothing. ORIGINAL/RANDOM really write the array")
    print("on every dummy - the wear the paper's Observation 2 eliminates.")


if __name__ == "__main__":
    main()
