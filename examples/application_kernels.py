#!/usr/bin/env python3
"""Protect real application kernels, end to end through the cache hierarchy.

Instead of SPEC-calibrated traces, this example starts from CPU-level
loads/stores of four application kernels (bulk scan, key-value lookups,
graph pointer-chasing, stencil), filters them through the Table 2 cache
hierarchy, and runs the resulting memory traffic on every protection level
— then co-schedules two kernels as a multiprogrammed mix.

    python examples/application_kernels.py
"""

from repro.cpu.kernels import (
    pointer_chase,
    random_lookup,
    sequential_scan,
    stencil,
    trace_through_hierarchy,
)
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.mem.hierarchy import HierarchyConfig
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_mix, run_trace

# Modest caches keep the example fast while still filtering traffic.
HIERARCHY = HierarchyConfig(cores=1, l1_size=8 << 10, l2_size=32 << 10, l3_size=256 << 10)

KERNELS = {
    "bulk-scan": lambda: sequential_scan(2 << 20, stride=8, write_fraction=0.2),
    "kv-lookups": lambda: random_lookup(4 << 20, lookups=3000),
    "graph-chase": lambda: pointer_chase(2 << 20, hops=8000),
    "stencil": lambda: stencil(1 << 20, sweeps=1),
}

LEVELS = [
    ProtectionLevel.UNPROTECTED,
    ProtectionLevel.OBFUSMEM_AUTH,
    ProtectionLevel.ORAM,
]


def main() -> None:
    print(f"{'kernel':12s} {'LLC miss rate':>13s} {'base':>9s} "
          f"{'obfusmem':>9s} {'oram':>10s} {'speedup':>8s}")
    for name, make_stream in KERNELS.items():
        trace, hierarchy = trace_through_hierarchy(
            make_stream(), HIERARCHY, name=name
        )
        stats = hierarchy.stats
        miss_rate = stats.get("llc_misses") / stats.get("accesses")
        times = {}
        for level in LEVELS:
            times[level] = run_trace(trace, level, MachineConfig(), window=4)
        base = times[ProtectionLevel.UNPROTECTED]
        obfus = times[ProtectionLevel.OBFUSMEM_AUTH]
        oram = times[ProtectionLevel.ORAM]
        print(
            f"{name:12s} {100 * miss_rate:12.1f}% "
            f"{base.execution_time_ns / 1000:7.0f}us "
            f"{obfus.overhead_pct(base):+8.1f}% "
            f"{oram.overhead_pct(base):+9.1f}% "
            f"{oram.execution_time_ns / obfus.execution_time_ns:7.1f}x"
        )

    print("\nmultiprogrammed mix (2 cores sharing one protected channel):")
    mix = [SPEC_PROFILES["mcf"], SPEC_PROFILES["libquantum"]]
    base = run_mix(mix, ProtectionLevel.UNPROTECTED, num_requests=2000)
    obfus = run_mix(mix, ProtectionLevel.OBFUSMEM_AUTH, num_requests=2000)
    print(f"  mcf + libquantum: ObfusMem+Auth overhead "
          f"{obfus.overhead_pct(base):+.1f}% over the unprotected mix")


if __name__ == "__main__":
    main()
