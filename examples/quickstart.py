#!/usr/bin/env python3
"""Quickstart: protect a workload's memory access pattern with ObfusMem.

Runs one SPEC-like workload on four systems — unprotected, memory
encryption only, ObfusMem with authenticated communication, and the Path
ORAM baseline — and reports what each costs and what each leaks.

    python examples/quickstart.py [benchmark]
"""

import sys

from repro.analysis.leakage import (
    ciphertext_repeat_fraction,
    spatial_locality_score,
    type_inference_accuracy,
)
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.mem.bus import BusObserver, MemoryBus
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_trace


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "bwaves"
    if benchmark not in SPEC_PROFILES:
        raise SystemExit(f"unknown benchmark {benchmark!r}; pick from {BENCHMARK_NAMES}")
    profile = SPEC_PROFILES[benchmark]
    print(f"Workload: {benchmark} (LLC MPKI {profile.llc_mpki}, "
          f"avg gap {profile.avg_gap_ns} ns)")

    # One trace, replayed identically on every system.
    trace = make_trace(profile, num_requests=3000)

    levels = [
        ProtectionLevel.UNPROTECTED,
        ProtectionLevel.ENCRYPTION_ONLY,
        ProtectionLevel.OBFUSMEM_AUTH,
        ProtectionLevel.ORAM,
    ]
    results = {}
    leaks = {}
    for level in levels:
        observer = BusObserver()
        bus = MemoryBus()
        bus.attach(observer)
        results[level] = run_trace(
            trace, level, MachineConfig(), window=profile.window, bus=bus
        )
        transfers = observer.transfers
        leaks[level] = (
            spatial_locality_score(transfers),
            ciphertext_repeat_fraction(transfers),
            type_inference_accuracy(transfers),
        )

    baseline = results[ProtectionLevel.UNPROTECTED]
    print(f"\n{'system':18s} {'exec time':>12s} {'overhead':>9s} "
          f"{'spatial':>8s} {'temporal':>9s} {'type':>6s}")
    for level in levels:
        result = results[level]
        spatial, temporal, type_accuracy = leaks[level]
        overhead = result.overhead_pct(baseline)
        leak_note = (
            f"{spatial:8.2f} {temporal:9.2f} {type_accuracy:6.2f}"
            if level is not ProtectionLevel.ORAM
            else f"{'hidden':>8s} {'hidden':>9s} {'0.50':>6s}"
        )
        print(f"{level.value:18s} {result.execution_time_ns/1000:9.1f} us "
              f"{overhead:8.1f}% {leak_note}")

    obfus = results[ProtectionLevel.OBFUSMEM_AUTH]
    oram = results[ProtectionLevel.ORAM]
    speedup = oram.execution_time_ns / obfus.execution_time_ns
    print(f"\nObfusMem+Auth is {speedup:.1f}x faster than ORAM on this workload,")
    print("while hiding the spatial, temporal and type dimensions of the")
    print("access pattern (leak columns: lower = less visible to a snooper;")
    print("'type' is the attacker's accuracy guessing read vs write, 0.5 = blind).")


if __name__ == "__main__":
    main()
