#!/usr/bin/env python3
"""A secure key-value store on a fully functional ObfusMem channel.

Walks the complete lifecycle of §3.1–§3.3 with real cryptography:

1. manufacturers fabricate processor and memory chips with burned RSA
   identities;
2. a system integrator programs each chip with its counterpart's public key;
3. at boot the chips attest to each other and run an authenticated
   Diffie–Hellman exchange, deriving the channel session key;
4. a toy patient-records store then writes and reads records through the
   encrypted, obfuscated channel — and we inspect what an attacker probing
   the bus or scanning the memory chips would actually see.

    python examples/secure_boot_and_storage.py
"""

from repro.core.config import AuthMode
from repro.core.functional import FunctionalObfusMem
from repro.core.trust import (
    Manufacturer,
    MemoryChip,
    ProcessorChip,
    SystemIntegrator,
    bootstrap_untrusted_integrator,
)
from repro.crypto.rng import DeterministicRng
from repro.errors import TrustError
from repro.mem.bus import BusObserver, MemoryBus

RECORDS = {
    0x0000: b"patient:ada   dx:hypertension rx:lisinopril",
    0x0040: b"patient:bob   dx:diabetes-t2  rx:metformin",
    0x0080: b"patient:carol dx:asthma       rx:albuterol",
}


def pad_record(record: bytes) -> bytes:
    return record.ljust(64, b" ")


def main() -> None:
    rng = DeterministicRng(20170624)

    # --- 1/2: manufacture and integrate -------------------------------
    cpu_vendor = Manufacturer("cpu-vendor", rng)
    mem_vendor = Manufacturer("mem-vendor", rng)
    processor = ProcessorChip(cpu_vendor)
    memory = MemoryChip(mem_vendor, channel=0)
    SystemIntegrator(rng).integrate(processor, [memory])
    print("integrated system: processor and memory know each other's keys")

    # --- 3: attested boot ----------------------------------------------
    table = bootstrap_untrusted_integrator(processor, [memory], rng)
    session_key = table.key_for(0)
    print(f"boot attestation passed; channel-0 session key: {session_key.hex()}")

    # A malicious integrator would have been caught:
    evil_processor = ProcessorChip(cpu_vendor)
    evil_memory = MemoryChip(mem_vendor, channel=0)
    SystemIntegrator(rng.fork("evil"), malicious=True).integrate(
        evil_processor, [evil_memory]
    )
    try:
        bootstrap_untrusted_integrator(evil_processor, [evil_memory], rng)
    except TrustError as error:
        print(f"malicious integrator detected at boot: {error}")

    # --- 4: the protected store ----------------------------------------
    bus = MemoryBus()
    snooper = BusObserver("bus-snooper")
    bus.attach(snooper)
    channel = FunctionalObfusMem(
        session_key=session_key,
        memory_key=rng.fork("memkey").token_bytes(16),
        rng=rng,
        auth=AuthMode.ENCRYPT_AND_MAC,
        bus=bus,
    )

    for address, record in RECORDS.items():
        channel.write(address, pad_record(record))
    print(f"\nstored {len(RECORDS)} records through the obfuscated channel")

    for address, record in RECORDS.items():
        assert channel.read(address) == pad_record(record)
    print("read-back verified: all records decrypt correctly on-chip")

    # --- what the attacker saw -----------------------------------------
    print(f"\nbus snooper captured {len(snooper.transfers)} transfers; "
          "every payload is ciphertext:")
    for transfer in snooper.transfers[:4]:
        print(f"  {transfer.kind.value:8s} {transfer.direction.value:13s} "
              f"{transfer.wire_bytes[:16].hex()}...")
    plaintexts = set(pad_record(r) for r in RECORDS.values())
    assert not any(t.wire_bytes in plaintexts for t in snooper.transfers)

    print("\nmemory-chip scan (what a cold-boot attacker dumps):")
    for address, stored in sorted(channel.memory_side.array_snapshot().items()):
        assert stored not in plaintexts
        print(f"  {address:#06x}: {stored[:24].hex()}...")
    print(f"\ndummy requests dropped inside the memory perimeter: "
          f"{channel.memory_side.dummies_dropped} (no wear, no energy)")


if __name__ == "__main__":
    main()
