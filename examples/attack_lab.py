#!/usr/bin/env python3
"""Attack lab: run the paper's passive and active attacks against the stack.

Demonstrates, with real cryptography and wire traffic:

* the **dictionary attack** that breaks the ECB strawman of §3.2 and fails
  against counter-mode obfuscation;
* every **active tampering scenario** of §3.5 (bit-flip, drop, replay,
  injection) being detected by the encrypt-and-MAC scheme — and the one
  deliberate gap (data tampering deferred to the Merkle tree,
  Observation 4).

    python examples/attack_lab.py
"""

from repro.analysis.attacks import (
    EcbAddressObfuscation,
    command_bitflip_attack,
    data_tamper_attack,
    dictionary_attack,
    injection_attack,
    message_drop_attack,
    replay_attack,
)
from repro.crypto.rng import DeterministicRng


def passive_lab() -> None:
    print("=== passive: dictionary attack on address encodings ===")
    rng = DeterministicRng(404)
    hot_addresses = [0x1000, 0x2000, 0x3000, 0x4000, 0x5000]
    weights = [40, 30, 15, 10, 5]
    accesses = [a for a, w in zip(hot_addresses, weights) for _ in range(w)]
    rng.shuffle(accesses)

    ecb = EcbAddressObfuscation(rng.token_bytes(16))
    ecb_wire = [ecb.encrypt_address(a) for a in accesses]
    result = dictionary_attack(accesses, ecb_wire, top_k=5)
    print(f"ECB-encrypted bus:     attacker recovers {result.correct_matches}/"
          f"{result.candidates} hot addresses by frequency rank")

    ctr_wire = [rng.token_bytes(16) for _ in accesses]  # CTR: unique encodings
    result = dictionary_attack(accesses, ctr_wire, top_k=5)
    print(f"Counter-mode bus:      attacker recovers {result.correct_matches}/"
          f"{result.candidates} (frequency structure destroyed)")


def active_lab() -> None:
    print("\n=== active: tampering with the authenticated channel ===")
    scenarios = [
        ("flip a bit in an encrypted command", command_bitflip_attack),
        ("delete a request from the bus", message_drop_attack),
        ("replay a captured valid command", replay_attack),
        ("inject a fabricated command", injection_attack),
        ("flip bits in a data burst", data_tamper_attack),
    ]
    for description, attack in scenarios:
        outcome = attack()
        verdict = "DETECTED" if outcome.detected else "not detected at bus level"
        print(f"  {description:38s} -> {verdict}")
        if outcome.error:
            print(f"      {outcome.error}")
    print("\n(data-burst tampering is the documented exception: the bus MAC")
    print(" covers (type|address|counter); data integrity is the Merkle")
    print(" tree's job and is caught when the block is read back - Obs. 4)")


def main() -> None:
    passive_lab()
    active_lab()


if __name__ == "__main__":
    main()
