"""Ring ORAM (Ren et al., USENIX Security 2015) — the optimized ORAM the
paper cites alongside Path ORAM (bandwidth overheads of 24x vs 120x).

Structural differences from Path ORAM, all implemented here:

* each bucket holds Z real slots plus S *reshufflable dummy* slots, and a
  per-bucket permutation hides which slot is which;
* an online access reads exactly **one slot per bucket** on the path (the
  real block where present, a fresh dummy elsewhere) instead of the whole
  bucket — with the XOR technique the whole path collapses to a single
  block on the bus;
* buckets are reshuffled *early* once their fresh dummies run out (each
  bucket can serve S accesses between reshuffles);
* eviction is decoupled: one full path write-back every A accesses, on a
  reverse-lexicographic leaf schedule.

The security invariant is identical to Path ORAM's (a block mapped to leaf
l lives on path l or in the stash) and is checked by
:meth:`RingOram.check_invariant`.  Bandwidth statistics separate *bus*
blocks from *physical* slot touches so the Ring-vs-Path comparison bench
can reproduce the paper's ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, OramDeadlockError, OramError
from repro.oram.path_oram import OramBlock
from repro.sim.statistics import StatGroup

DEFAULT_REALS = 4  # Z
DEFAULT_DUMMIES = 12  # S
DEFAULT_EVICT_RATE = 8  # A (Ren et al. use A ~= 2Z for Z=4)


@dataclass
class _RingBucket:
    """A bucket of Z real slots + S dummy slots with freshness tracking."""

    real_capacity: int
    dummy_capacity: int
    blocks: list[OramBlock] = field(default_factory=list)
    dummies_consumed: int = 0
    accesses_since_shuffle: int = 0

    @property
    def free_real_slots(self) -> int:
        return self.real_capacity - len(self.blocks)

    @property
    def needs_reshuffle(self) -> bool:
        return self.dummies_consumed >= self.dummy_capacity

    def reset(self) -> None:
        self.dummies_consumed = 0
        self.accesses_since_shuffle = 0


class RingOram:
    """Functional Ring ORAM over ``num_blocks`` addressable blocks."""

    def __init__(
        self,
        num_blocks: int,
        rng: DeterministicRng,
        bucket_reals: int = DEFAULT_REALS,
        bucket_dummies: int = DEFAULT_DUMMIES,
        evict_rate: int = DEFAULT_EVICT_RATE,
        levels: int | None = None,
        stash_limit: int = 256,
        use_xor: bool = True,
        stats: StatGroup | None = None,
    ):
        if num_blocks < 1:
            raise ConfigurationError("Ring ORAM needs at least one block")
        if bucket_reals < 1 or bucket_dummies < 1:
            raise ConfigurationError("bucket must have real and dummy slots")
        if evict_rate < 1:
            raise ConfigurationError("evict rate A must be >= 1")
        if levels is None:
            levels = max(1, (num_blocks - 1).bit_length())
        self.levels = levels
        self.num_leaves = 1 << levels
        self.num_buckets = (1 << (levels + 1)) - 1
        if self.num_leaves * bucket_reals < num_blocks:
            raise ConfigurationError(
                f"tree with L={levels}, Z={bucket_reals} cannot hold {num_blocks}"
            )
        self.num_blocks = num_blocks
        self.bucket_reals = bucket_reals
        self.bucket_dummies = bucket_dummies
        self.evict_rate = evict_rate
        self.stash_limit = stash_limit
        self.use_xor = use_xor
        self._rng = rng.fork("ring-posmap")
        self._position: dict[int, int] = {}
        self._buckets = [
            _RingBucket(bucket_reals, bucket_dummies) for _ in range(self.num_buckets)
        ]
        self.stash: dict[int, OramBlock] = {}
        self.stats = stats or StatGroup("ring_oram")
        self.max_stash_seen = 0
        self._access_count = 0
        self._evict_leaf_counter = 0

    # ------------------------------------------------------------------
    # Geometry (heap layout shared with Path ORAM)
    # ------------------------------------------------------------------

    def _path_indices(self, leaf: int) -> list[int]:
        if not 0 <= leaf < self.num_leaves:
            raise OramError(f"leaf {leaf} out of range")
        node = leaf + self.num_leaves - 1
        path = []
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    def _lookup_position(self, address: int) -> int:
        if address not in self._position:
            self._position[address] = self._rng.randrange(self.num_leaves)
        return self._position[address]

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------

    def access(self, address: int, write_data: bytes | None = None) -> bytes | None:
        """One Ring ORAM access (read if ``write_data`` is None)."""
        if not 0 <= address < self.num_blocks:
            raise OramError(f"address {address} out of range")
        leaf = self._lookup_position(address)
        new_leaf = self._rng.randrange(self.num_leaves)
        self._position[address] = new_leaf
        path = self._path_indices(leaf)

        # Online phase: one slot per bucket; XOR collapses the bus cost.
        for index in path:
            bucket = self._buckets[index]
            bucket.accesses_since_shuffle += 1
            found = None
            for block in bucket.blocks:
                if block.address == address:
                    found = block
                    break
            if found is not None:
                bucket.blocks.remove(found)
                self.stash[found.address] = found
            else:
                bucket.dummies_consumed += 1
            self.stats.add("slots_touched")
        self.stats.add(
            "bus_blocks_read", 1 if self.use_xor else len(path)
        )
        self.stats.add("accesses")

        # Serve the request from the stash.
        old_data = None
        if address in self.stash:
            old_data = self.stash[address].data
            self.stash[address].leaf = new_leaf
            if write_data is not None:
                self.stash[address].data = write_data
        elif write_data is not None:
            self.stash[address] = OramBlock(address, new_leaf, write_data)

        # Early reshuffles for buckets that ran out of fresh dummies.
        for index in path:
            if self._buckets[index].needs_reshuffle:
                self._reshuffle_bucket(index)

        # Scheduled eviction every A accesses.
        self._access_count += 1
        if self._access_count % self.evict_rate == 0:
            self._evict_path()

        self.max_stash_seen = max(self.max_stash_seen, len(self.stash))
        if len(self.stash) > self.stash_limit:
            raise OramDeadlockError(
                f"Ring ORAM stash overflow: {len(self.stash)} > {self.stash_limit}"
            )
        return old_data

    def read(self, address: int) -> bytes | None:
        """Oblivious read of one block."""
        return self.access(address)

    def write(self, address: int, data: bytes) -> None:
        """Oblivious write of one block."""
        self.access(address, write_data=data)

    # ------------------------------------------------------------------
    # Maintenance phases
    # ------------------------------------------------------------------

    def _reshuffle_bucket(self, index: int) -> None:
        """Re-randomize a bucket whose dummies are exhausted.

        Costs a full bucket read + write on the bus (Z + S slots each way).
        Real blocks stay put (their paths are unchanged); only the dummy
        pool and the hidden permutation are refreshed.
        """
        bucket = self._buckets[index]
        slots = self.bucket_reals + self.bucket_dummies
        self.stats.add("bus_blocks_read", slots)
        self.stats.add("bus_blocks_written", slots)
        self.stats.add("early_reshuffles")
        bucket.reset()

    def _next_evict_leaf(self) -> int:
        """Reverse-lexicographic eviction order (deterministic coverage)."""
        leaf = int(
            format(self._evict_leaf_counter % self.num_leaves, f"0{self.levels}b")[::-1],
            2,
        ) if self.levels else 0
        self._evict_leaf_counter += 1
        return leaf

    def _evict_path(self) -> None:
        """Read a full path into the stash and greedily write it back."""
        leaf = self._next_evict_leaf()
        path = self._path_indices(leaf)
        slots = self.bucket_reals + self.bucket_dummies
        for index in path:
            bucket = self._buckets[index]
            for block in bucket.blocks:
                self.stash[block.address] = block
            bucket.blocks = []
            bucket.reset()
        self.stats.add("bus_blocks_read", slots * len(path))
        for depth in range(len(path) - 1, -1, -1):
            bucket = self._buckets[path[depth]]
            candidates = [
                block
                for block in self.stash.values()
                if self._path_indices(block.leaf)[depth] == path[depth]
            ]
            for block in candidates[: bucket.free_real_slots]:
                bucket.blocks.append(block)
                del self.stash[block.address]
        self.stats.add("bus_blocks_written", slots * len(path))
        self.stats.add("evictions")

    # ------------------------------------------------------------------
    # Invariants and accounting
    # ------------------------------------------------------------------

    def check_invariant(self) -> None:
        """Every mapped block is on its leaf's path or in the stash."""
        seen: set[int] = set()
        for index, bucket in enumerate(self._buckets):
            if len(bucket.blocks) > self.bucket_reals:
                raise OramError(f"bucket {index} over real capacity")
            for block in bucket.blocks:
                if block.address in seen:
                    raise OramError(f"duplicate block {block.address}")
                seen.add(block.address)
                if index not in self._path_indices(block.leaf):
                    raise OramError(
                        f"block {block.address} in bucket {index} off its path"
                    )
        for address in self.stash:
            if address in seen:
                raise OramError(f"block {address} duplicated in stash and tree")

    @property
    def bus_blocks_per_access(self) -> float:
        """Measured average bus blocks per access (online + amortized)."""
        accesses = self.stats.get("accesses")
        if not accesses:
            return 0.0
        total = self.stats.get("bus_blocks_read") + self.stats.get("bus_blocks_written")
        return total / accesses
