"""Pluggable ORAM backends: one descriptor per ORAM design.

The paper's Table 3 positions the obfuscated bus against "ORAM" as if that
were one design; in reality the ORAM literature is a family — Path ORAM's
full-path reads, Ring ORAM's XOR-compressed online phase, the Pyramid
Scheme's hash-table hierarchy (Costa et al.), Palermo's protocol/hardware
co-design that overlaps position-map and tree phases (Ye et al.).  This
module gives each design one seam: an :class:`OramBackend` descriptor that
bundles

* the **functional access algorithm** (:meth:`OramBackend.make_functional`
  constructs the invariant-checked simulator object — Path ORAM, Ring
  ORAM, Pyramid ORAM — used for capacity / write-amplification / failure
  characterization);
* the **per-access timing and traffic decomposition**
  (:meth:`OramBackend.decompose` returns the ordered
  :class:`AccessPhase` list — position map, read path, write-back,
  amortized rebuild — with the overlap structure that determines the
  critical-path latency the fixed-latency memory model charges);
* the **observable-bus trait descriptor** (:attr:`OramBackend.traits`,
  the ``TRAIT_*`` vocabulary :func:`repro.analysis.leakage.expected_leakage`
  reads).

Descriptors are frozen dataclasses: hashable, picklable (the PR-8 snapshot
protocol pickles the whole component graph, descriptor included), and
cheap enough that :class:`repro.schemes.stages.OramBackendStage` resolves
one per build with zero per-backend branches.  The module-level defaults
that used to live in :mod:`repro.oram.timing` (fixed 2500 ns access,
L=24, Z=4) are fields of the descriptor now, so a per-scheme override
flows through :meth:`OramBackend.with_latency` and can never drift from
:class:`repro.system.config.MachineConfig`.

Registering a new design::

    from repro.oram.backend import OramBackend, register_backend

    @dataclass(frozen=True)
    class MyBackend(OramBackend):
        name = "mine"
        summary = "my oblivious design"
        ...  # decompose() + make_functional()

    register_backend(MyBackend())
    # then: ProtectionScheme(..., stages=(OramBackendStage(backend="mine"),))
"""

from __future__ import annotations

import abc
import dataclasses
import difflib
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # imported lazily at build time to keep import cycles out
    from repro.crypto.rng import DeterministicRng

# Paper baseline (§4): every ORAM access costs a fixed 2500 ns (extrapolated
# from Freecursive ORAM) over an L=24, Z=4 tree — a path of ~100 blocks read
# and later written back per access.  These used to be module-level constants
# in repro.oram.timing; they live on the descriptor now.
DEFAULT_ACCESS_LATENCY_NS = 2500.0
DEFAULT_LEVELS = 24
DEFAULT_BUCKET_SIZE = 4

#: The backend has no wire model at all: accesses vanish into an opaque
#: trusted memory, so a bus snooper sees nothing (every ORAM backend).
TRAIT_OPAQUE_BACKEND = "opaque-backend"
#: Amortized maintenance (scheduled evictions, hash-table rebuilds) arrives
#: in periodic bursts a timing observer can count even without a wire.
TRAIT_REBUILD_BURSTS = "rebuild-bursts"


@dataclass(frozen=True)
class AccessPhase:
    """One protocol phase of a single ORAM access.

    Latency is the time the phase contributes when executed serially;
    traffic fields are per-access block counts (amortized phases carry
    fractional values).  ``overlapped`` folds the phase into the same
    pipeline step as the preceding phase: the step's latency becomes the
    max of its phases instead of the sum — exactly Palermo's trick of
    fetching the position map while the tree path is speculatively read.
    """

    name: str
    latency_ns: float
    blocks_read: float = 0.0
    blocks_written: float = 0.0
    cell_writes: float = 0.0
    overlapped: bool = False

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ConfigurationError(f"phase {self.name!r} has negative latency")
        if min(self.blocks_read, self.blocks_written, self.cell_writes) < 0:
            raise ConfigurationError(f"phase {self.name!r} has negative traffic")


@dataclass(frozen=True)
class AccessDecomposition:
    """The per-access timing/traffic breakdown of one ORAM backend.

    Phases are listed in protocol order; consecutive phases marked
    ``overlapped`` share a pipeline step with the phase they follow.  The
    critical-path latency is the sum over steps of each step's slowest
    phase, so a backend that overlaps nothing degenerates to the plain
    serial sum.
    """

    phases: tuple[AccessPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("decomposition needs at least one phase")
        if self.phases[0].overlapped:
            raise ConfigurationError("first phase cannot overlap a predecessor")
        if self.latency_ns <= 0:
            raise ConfigurationError("decomposition must take positive time")

    def steps(self) -> list[tuple[AccessPhase, ...]]:
        """Phases grouped into pipeline steps (overlap joins the previous)."""
        grouped: list[list[AccessPhase]] = []
        for phase in self.phases:
            if phase.overlapped and grouped:
                grouped[-1].append(phase)
            else:
                grouped.append([phase])
        return [tuple(group) for group in grouped]

    @property
    def latency_ns(self) -> float:
        """Critical-path latency: per-step max, summed across steps."""
        return sum(
            max(phase.latency_ns for phase in step) for step in self.steps()
        )

    @property
    def serialized_latency_ns(self) -> float:
        """What the access would cost with no overlap at all."""
        return sum(phase.latency_ns for phase in self.phases)

    @property
    def overlap_savings_ns(self) -> float:
        """Latency hidden by the overlap structure (0 for serial designs)."""
        return self.serialized_latency_ns - self.latency_ns

    @property
    def blocks_read(self) -> float:
        """Blocks read from the trusted memory per access (amortized)."""
        return sum(phase.blocks_read for phase in self.phases)

    @property
    def blocks_written(self) -> float:
        """Blocks written back per access (amortized)."""
        return sum(phase.blocks_written for phase in self.phases)

    @property
    def cell_writes(self) -> float:
        """PCM cell writes charged against lifetime per access (amortized)."""
        return sum(phase.cell_writes for phase in self.phases)

    def phase_named(self, name: str) -> AccessPhase:
        """The phase with the given name; KeyError when absent."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(name)


@dataclass(frozen=True)
class OramBackend(abc.ABC):
    """One ORAM design: functional algorithm + timing decomposition + traits.

    Subclasses set the class-level metadata (``name``, ``summary``,
    ``traits``) and implement :meth:`decompose` and
    :meth:`make_functional`.  The shared fields are the paper-baseline
    geometry every decomposition is scaled from: ``access_latency_ns`` is
    the reference cost of one *Path ORAM* access over an
    ``levels``/``bucket_size`` tree, so the per-block wire time
    (:attr:`block_time_ns`) — and with it every other backend's latency —
    moves together when :class:`~repro.system.config.MachineConfig`
    overrides the ORAM latency assumption.
    """

    access_latency_ns: float = DEFAULT_ACCESS_LATENCY_NS
    levels: int = DEFAULT_LEVELS
    bucket_size: int = DEFAULT_BUCKET_SIZE

    #: Registry key (``OramBackendStage(backend=<name>)`` selects it).
    name: ClassVar[str] = "backend"
    #: One-line design summary for ``--list-schemes`` and stack listings.
    summary: ClassVar[str] = ""
    #: Observable-bus trait flags (``TRAIT_*``) the leakage model reads.
    traits: ClassVar[frozenset[str]] = frozenset({TRAIT_OPAQUE_BACKEND})

    def __post_init__(self) -> None:
        if self.access_latency_ns <= 0:
            raise ConfigurationError("ORAM access latency must be positive")
        if self.levels < 1 or self.bucket_size < 1:
            raise ConfigurationError("ORAM geometry must be positive")

    # -- shared geometry ----------------------------------------------------

    @property
    def path_blocks(self) -> int:
        """Blocks on one root-to-leaf path of the reference tree."""
        return (self.levels + 1) * self.bucket_size

    @property
    def block_time_ns(self) -> float:
        """Per-block service time implied by the paper's path latency.

        The reference access moves a full path twice (read + write-back)
        in ``access_latency_ns``, so one block costs that divided by
        ``2 * path_blocks`` — the scale every decomposition is built from.
        """
        return self.access_latency_ns / (2 * self.path_blocks)

    def with_latency(self, access_latency_ns: float) -> "OramBackend":
        """This descriptor rescaled to a machine's ORAM latency assumption."""
        return dataclasses.replace(self, access_latency_ns=access_latency_ns)

    def maintenance_burst(self) -> tuple[int, int] | None:
        """Externally visible maintenance cadence, or None when smooth.

        Backends flagged :data:`TRAIT_REBUILD_BURSTS` batch their
        amortized maintenance into scheduled work: every
        ``period_accesses`` accesses the package moves ``burst_blocks``
        blocks in one burst, visible to a timing observer (power/bank
        activity) even though no wire leaves the trusted package.
        Returns ``(period_accesses, burst_blocks)``; the default None
        means maintenance is folded smoothly into each access and there
        is nothing periodic to observe.
        """
        return None

    # -- the protocol -------------------------------------------------------

    @abc.abstractmethod
    def decompose(self) -> AccessDecomposition:
        """The per-access phase breakdown at this descriptor's scale."""

    @abc.abstractmethod
    def make_functional(self, num_blocks: int, rng: "DeterministicRng", **kwargs):
        """Construct the functional (invariant-checked) ORAM instance."""

    def describe(self) -> str:
        """Human-readable ``name: summary`` line for listings."""
        return f"{self.name}: {self.summary}"


@dataclass(frozen=True)
class PathOramBackend(OramBackend):
    """Path ORAM (Stefanov et al.) under the paper's §4 timing assumptions.

    Every access reads the full path into the stash and writes it back:
    two serial path movements, no overlap, the fixed 2500 ns baseline the
    paper's Table 3 charges.  The position-map lookup is on-chip (the
    recursive position map is folded into the access constant, as the
    paper does).
    """

    name: ClassVar[str] = "path"
    summary: ClassVar[str] = "full path read + write-back per access (§4 baseline)"
    traits: ClassVar[frozenset[str]] = frozenset({TRAIT_OPAQUE_BACKEND})

    def decompose(self) -> AccessDecomposition:
        """Position map (on-chip), then path read, then path write-back."""
        half = self.access_latency_ns / 2
        return AccessDecomposition(
            phases=(
                AccessPhase("posmap", 0.0),
                AccessPhase("read-path", half, blocks_read=self.path_blocks),
                AccessPhase(
                    "writeback",
                    half,
                    blocks_written=self.path_blocks,
                    cell_writes=self.path_blocks,
                ),
            )
        )

    def make_functional(self, num_blocks: int, rng: "DeterministicRng", **kwargs):
        """A :class:`~repro.oram.path_oram.PathOram` over this geometry."""
        from repro.oram.path_oram import PathOram

        kwargs.setdefault("bucket_size", self.bucket_size)
        return PathOram(num_blocks, rng, **kwargs)


@dataclass(frozen=True)
class RingOramBackend(OramBackend):
    """Ring ORAM (Ren et al.): XOR online reads + decoupled eviction.

    The online phase touches one slot per bucket on the path and the XOR
    technique collapses the whole path to a single block on the bus; a
    full path eviction runs only every ``evict_rate`` accesses.  Scheduled
    evictions and early reshuffles arrive in bursts, which is what the
    :data:`TRAIT_REBUILD_BURSTS` flag declares to the leakage model.
    """

    bucket_dummies: int = 12
    evict_rate: int = 8

    name: ClassVar[str] = "ring"
    summary: ClassVar[str] = "XOR online reads + amortized path evictions"
    traits: ClassVar[frozenset[str]] = frozenset(
        {TRAIT_OPAQUE_BACKEND, TRAIT_REBUILD_BURSTS}
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bucket_dummies < 1 or self.evict_rate < 1:
            raise ConfigurationError("ring backend needs dummies and A >= 1")

    def decompose(self) -> AccessDecomposition:
        """Online slot reads, then the per-access share of one eviction."""
        slots_online = self.levels + 1  # one slot per bucket on the path
        evict_blocks = self.path_blocks / self.evict_rate  # amortized each way
        return AccessDecomposition(
            phases=(
                AccessPhase("posmap", 0.0),
                # Slot touches are serial on the DIMM even though XOR
                # compresses the bus transfer to one block.
                AccessPhase(
                    "online-read",
                    slots_online * self.block_time_ns,
                    blocks_read=1.0,
                ),
                AccessPhase(
                    "evict",
                    2 * evict_blocks * self.block_time_ns,
                    blocks_read=evict_blocks,
                    blocks_written=evict_blocks,
                    cell_writes=evict_blocks,
                ),
            )
        )

    def make_functional(self, num_blocks: int, rng: "DeterministicRng", **kwargs):
        """A :class:`~repro.oram.ring_oram.RingOram` over this geometry."""
        from repro.oram.ring_oram import RingOram

        kwargs.setdefault("bucket_reals", self.bucket_size)
        kwargs.setdefault("bucket_dummies", self.bucket_dummies)
        kwargs.setdefault("evict_rate", self.evict_rate)
        return RingOram(num_blocks, rng, **kwargs)

    def maintenance_burst(self) -> tuple[int, int]:
        """One full path eviction (read + write-back) every A accesses."""
        return self.evict_rate, 2 * self.path_blocks


@dataclass(frozen=True)
class PyramidOramBackend(OramBackend):
    """The Pyramid Scheme (Costa et al.): a hash-table ORAM hierarchy.

    An access probes one bucket per hash level top-down (locality-friendly
    sequential reads, the design's point for trusted processors) and every
    access carries an amortized share of the periodic level rebuilds that
    merge small tables into larger ones under fresh hash keys.  The
    rebuild cadence is bursty — :data:`TRAIT_REBUILD_BURSTS`.

    ``levels`` means *hash levels* here (the functional
    :class:`~repro.oram.pyramid.PyramidOram` sizes itself the same way),
    not tree depth; the default keeps the probe cost well under one path
    movement, which is the design's headline.
    """

    levels: int = 12

    name: ClassVar[str] = "pyramid"
    summary: ClassVar[str] = "hash-table hierarchy probes + amortized rebuilds"
    traits: ClassVar[frozenset[str]] = frozenset(
        {TRAIT_OPAQUE_BACKEND, TRAIT_REBUILD_BURSTS}
    )

    def decompose(self) -> AccessDecomposition:
        """Level probes, then the amortized rebuild share."""
        probe_blocks = self.levels * self.bucket_size  # one bucket per level
        # Over n accesses each block participates in ~log(n) merges: one
        # read and one write per level, amortized to `levels` blocks each
        # way per access.
        rebuild_each_way = float(self.levels)
        return AccessDecomposition(
            phases=(
                AccessPhase("posmap", 0.0),
                AccessPhase(
                    "probe",
                    probe_blocks * self.block_time_ns,
                    blocks_read=probe_blocks,
                ),
                AccessPhase(
                    "rebuild",
                    2 * rebuild_each_way * self.block_time_ns,
                    blocks_read=rebuild_each_way,
                    blocks_written=rebuild_each_way,
                    cell_writes=rebuild_each_way,
                ),
            )
        )

    def make_functional(self, num_blocks: int, rng: "DeterministicRng", **kwargs):
        """A :class:`~repro.oram.pyramid.PyramidOram` over this geometry."""
        from repro.oram.pyramid import PyramidOram

        kwargs.setdefault("bucket_size", self.bucket_size)
        return PyramidOram(num_blocks, rng, **kwargs)

    def maintenance_burst(self) -> tuple[int, int]:
        """Level merges drain the top buffer every ``4 * bucket_size``
        accesses, moving that period's amortized rebuild share (one read
        and one write per hash level per access) in a single burst."""
        period = 4 * self.bucket_size
        return period, 2 * self.levels * period


@dataclass(frozen=True)
class PalermoBackend(OramBackend):
    """Palermo (Ye et al.): protocol/hardware co-design over a ring tree.

    The co-design overlaps the off-chip position-map fetch with a
    speculative tree-path read and spreads the path over
    ``bank_parallelism`` banks, so the three phases collapse into one
    pipeline step whose latency is the slowest phase — the overlap
    structure :class:`AccessDecomposition` models directly.  Write-backs
    are pipelined behind subsequent accesses rather than bursty, so the
    backend does *not* carry :data:`TRAIT_REBUILD_BURSTS`.
    """

    bank_parallelism: int = 4
    posmap_fraction: float = 0.1

    name: ClassVar[str] = "palermo"
    summary: ClassVar[str] = "posmap fetch overlapped with banked tree phases"
    traits: ClassVar[frozenset[str]] = frozenset({TRAIT_OPAQUE_BACKEND})

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bank_parallelism < 1:
            raise ConfigurationError("bank parallelism must be >= 1")
        if not 0 < self.posmap_fraction < 1:
            raise ConfigurationError("posmap fraction must be in (0, 1)")

    def decompose(self) -> AccessDecomposition:
        """Posmap, tree read and write-back folded into one pipeline step."""
        banked_half = (self.access_latency_ns / 2) / self.bank_parallelism
        return AccessDecomposition(
            phases=(
                AccessPhase(
                    "posmap",
                    self.posmap_fraction * self.access_latency_ns,
                    blocks_read=2.0,  # off-chip position-map blocks
                ),
                AccessPhase(
                    "read-path",
                    banked_half,
                    blocks_read=self.path_blocks,
                    overlapped=True,
                ),
                AccessPhase(
                    "writeback",
                    banked_half,
                    blocks_written=self.path_blocks,
                    cell_writes=self.path_blocks,
                    overlapped=True,
                ),
            )
        )

    def make_functional(self, num_blocks: int, rng: "DeterministicRng", **kwargs):
        """The co-design keeps Ring ORAM's functional tree semantics."""
        from repro.oram.ring_oram import RingOram

        kwargs.setdefault("bucket_reals", self.bucket_size)
        return RingOram(num_blocks, rng, **kwargs)


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, OramBackend] = {}


def register_backend(backend: OramBackend, replace: bool = False) -> OramBackend:
    """Add a backend descriptor; duplicate names raise unless ``replace``."""
    if not replace and backend.name in _BACKENDS:
        raise ConfigurationError(
            f"ORAM backend {backend.name!r} is already registered"
        )
    _BACKENDS[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend by name (no-op when absent; mainly for tests)."""
    _BACKENDS.pop(name, None)


def backend_names() -> list[str]:
    """Registered backend names in registration order."""
    return list(_BACKENDS)


def available_backends() -> list[OramBackend]:
    """Every registered backend descriptor, in registration order."""
    return list(_BACKENDS.values())


def get_backend(name: str) -> OramBackend:
    """Look a backend up by name; unknown names get a close-match hint."""
    try:
        return _BACKENDS[name]
    except KeyError:
        suggestion = difflib.get_close_matches(name, _BACKENDS, n=1)
        hint = f"; did you mean {suggestion[0]!r}?" if suggestion else ""
        raise ConfigurationError(
            f"unknown ORAM backend {name!r}{hint} "
            f"(registered: {', '.join(_BACKENDS)})"
        ) from None


register_backend(PathOramBackend())
register_backend(RingOramBackend())
register_backend(PyramidOramBackend())
register_backend(PalermoBackend())
