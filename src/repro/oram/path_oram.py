"""Path ORAM (Stefanov et al., CCS 2013) — the baseline ObfusMem is compared
against.

Functional implementation of the full protocol: a binary tree of buckets
(Z blocks each), a position map assigning every block to a leaf, and a stash
of overflow blocks on the (trusted) processor.  The invariant maintained is
the paper's quote of Stefanov et al.:

    If a block is mapped to leaf l, then it must be either in some bucket on
    path l or in the stash.

Every access reads the whole path into the stash, remaps the block to a
fresh random leaf, then writes the path back greedily from the stash —
which is precisely where ORAM's bandwidth, capacity and write-amplification
overheads come from (the quantities Tables 3/4 and §5.2 compare).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, OramDeadlockError, OramError
from repro.sim.statistics import StatGroup


@dataclass
class OramBlock:
    """A real data block stored in the tree or stash."""

    address: int
    leaf: int
    data: bytes


@dataclass
class Bucket:
    """A tree node holding up to Z real blocks (the rest are dummies)."""

    capacity: int
    blocks: list[OramBlock] = field(default_factory=list)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.blocks)


class PositionMap:
    """Block address -> leaf mapping, randomly initialized on first touch."""

    def __init__(self, num_leaves: int, rng: DeterministicRng):
        self._num_leaves = num_leaves
        self._rng = rng
        self._map: dict[int, int] = {}

    def lookup(self, address: int) -> int:
        """Leaf currently assigned to a block (drawn lazily)."""
        if address not in self._map:
            self._map[address] = self._rng.randrange(self._num_leaves)
        return self._map[address]

    def remap(self, address: int) -> int:
        """Assign a fresh uniformly random leaf (the reshuffle step)."""
        new_leaf = self._rng.randrange(self._num_leaves)
        self._map[address] = new_leaf
        return new_leaf

    def __len__(self) -> int:
        return len(self._map)


class PathOram:
    """Functional Path ORAM over ``num_blocks`` addressable blocks.

    Parameters
    ----------
    num_blocks:
        How many distinct real blocks the ORAM must hold.
    bucket_size:
        Z, blocks per bucket (paper baseline: 4).
    levels:
        Tree levels L (leaves = 2^L).  Default picks the smallest L with at
        least ``num_blocks`` leaves, giving the >=100% capacity overhead the
        paper describes.
    stash_limit:
        Maximum stash occupancy; exceeding it raises
        :class:`OramDeadlockError`, modelling the failure mode the paper
        calls out (reshuffling cannot proceed).
    """

    def __init__(
        self,
        num_blocks: int,
        rng: DeterministicRng,
        bucket_size: int = 4,
        levels: int | None = None,
        stash_limit: int = 256,
        stats: StatGroup | None = None,
    ):
        if num_blocks < 1:
            raise ConfigurationError("ORAM needs at least one block")
        if bucket_size < 1:
            raise ConfigurationError("bucket size must be >= 1")
        self.bucket_size = bucket_size
        if levels is None:
            levels = max(1, (num_blocks - 1).bit_length())
        self.levels = levels
        self.num_leaves = 1 << levels
        self.num_buckets = (1 << (levels + 1)) - 1
        if self.num_leaves * bucket_size < num_blocks:
            raise ConfigurationError(
                f"tree with L={levels}, Z={bucket_size} cannot hold {num_blocks} blocks"
            )
        self.num_blocks = num_blocks
        self.stash_limit = stash_limit
        self.position_map = PositionMap(self.num_leaves, rng.fork("posmap"))
        self._buckets = [Bucket(bucket_size) for _ in range(self.num_buckets)]
        self.stash: dict[int, OramBlock] = {}
        self.stats = stats or StatGroup("path_oram")
        self.max_stash_seen = 0

    # ------------------------------------------------------------------
    # Tree geometry: buckets stored heap-style, root at index 0.
    # ------------------------------------------------------------------

    def _path_indices(self, leaf: int) -> list[int]:
        """Bucket indices from root (index 0) down to the given leaf."""
        if not 0 <= leaf < self.num_leaves:
            raise OramError(f"leaf {leaf} out of range")
        node = leaf + self.num_leaves - 1  # leaf bucket in heap order
        path = []
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    def path_of(self, leaf: int) -> list[int]:
        """Public accessor used by tests and invariant checks."""
        return self._path_indices(leaf)

    # ------------------------------------------------------------------

    def access(self, address: int, write_data: bytes | None = None) -> bytes | None:
        """One ORAM access: read if ``write_data`` is None, else write.

        Returns the block's previous data (None if never written).  Reads
        and writes are indistinguishable by construction: both read a full
        path, remap, and write the path back.
        """
        if not 0 <= address < self.num_blocks:
            raise OramError(f"address {address} out of ORAM range")
        leaf = self.position_map.lookup(address)
        new_leaf = self.position_map.remap(address)
        path = self._path_indices(leaf)

        # Step 1: read every block on the path into the stash.
        for index in path:
            bucket = self._buckets[index]
            for block in bucket.blocks:
                self.stash[block.address] = block
            self.stats.add("blocks_read", self.bucket_size)
            bucket.blocks = []

        # Step 2: read or update the target block in the stash.
        old_data = None
        if address in self.stash:
            old_data = self.stash[address].data
            self.stash[address].leaf = new_leaf
            if write_data is not None:
                self.stash[address].data = write_data
        elif write_data is not None:
            self.stash[address] = OramBlock(address, new_leaf, write_data)

        # Step 3: write the path back, greedily evicting stash blocks to the
        # deepest bucket they may legally occupy (path intersection rule).
        for depth in range(len(path) - 1, -1, -1):
            bucket = self._buckets[path[depth]]
            candidates = [
                block
                for block in self.stash.values()
                if self._path_indices(block.leaf)[depth] == path[depth]
            ]
            for block in candidates[: bucket.free_slots]:
                bucket.blocks.append(block)
                del self.stash[block.address]
            self.stats.add("blocks_written", self.bucket_size)

        self.max_stash_seen = max(self.max_stash_seen, len(self.stash))
        self.stats.add("accesses")
        if len(self.stash) > self.stash_limit:
            raise OramDeadlockError(
                f"stash overflow: {len(self.stash)} blocks exceed limit "
                f"{self.stash_limit} (reshuffling cannot proceed)"
            )
        return old_data

    def read(self, address: int) -> bytes | None:
        """Oblivious read of one block."""
        return self.access(address)

    def write(self, address: int, data: bytes) -> None:
        """Oblivious write of one block."""
        self.access(address, write_data=data)

    # ------------------------------------------------------------------
    # Invariants and accounting
    # ------------------------------------------------------------------

    def check_invariant(self) -> None:
        """Assert the Path ORAM invariant for every mapped block."""
        located: dict[int, str] = {}
        for index, bucket in enumerate(self._buckets):
            for block in bucket.blocks:
                located[block.address] = f"bucket{index}"
                if index not in self._path_indices(block.leaf):
                    raise OramError(
                        f"block {block.address} in bucket {index} is off its "
                        f"leaf-{block.leaf} path"
                    )
        for address, block in self.stash.items():
            if address in located:
                raise OramError(f"block {address} duplicated in stash and tree")
            located[address] = "stash"

    @property
    def capacity_blocks(self) -> int:
        """Total block slots in the tree (real + dummy)."""
        return self.num_buckets * self.bucket_size

    @property
    def capacity_overhead(self) -> float:
        """Fraction of tree capacity not usable for real data (>= 0.5)."""
        return 1.0 - self.num_blocks / self.capacity_blocks

    @property
    def blocks_per_access(self) -> int:
        """Blocks moved per access: read + write of a full path."""
        return 2 * (self.levels + 1) * self.bucket_size
