"""ORAM timing model used for the performance comparison (paper §4).

The paper deliberately models ORAM optimistically: every memory access costs
a fixed 2500 ns (extrapolated from Freecursive ORAM), with unlimited
bandwidth and unconstrained PCM write power.  We reproduce exactly that
model so Table 3 is regenerated on the paper's own terms, while the
*functional* Path ORAM in :mod:`repro.oram.path_oram` supplies the
capacity / write-amplification / stash-failure numbers for Table 4 and
§5.2.
"""

from __future__ import annotations

from collections.abc import Callable
from functools import partial

from repro.errors import ConfigurationError
from repro.mem.request import MemoryRequest
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry

CompletionCallback = Callable[[MemoryRequest], None]

# Paper baseline: L=24 levels, Z=4 blocks/bucket => a path of ~100 blocks is
# read and later written back on every access.
DEFAULT_ACCESS_LATENCY_NS = 2500.0
DEFAULT_LEVELS = 24
DEFAULT_BUCKET_SIZE = 4


class OramMemoryModel:
    """Fixed-latency, unlimited-bandwidth ORAM memory backend."""

    def __init__(
        self,
        engine: Engine,
        stats: StatRegistry,
        access_latency_ns: float = DEFAULT_ACCESS_LATENCY_NS,
        levels: int = DEFAULT_LEVELS,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
    ):
        if access_latency_ns <= 0:
            raise ConfigurationError("ORAM access latency must be positive")
        self.engine = engine
        self.stats = stats.group("oram")
        self.access_latency_ps = ns_to_ps(access_latency_ns)
        self.levels = levels
        self.bucket_size = bucket_size

    @property
    def blocks_per_access(self) -> int:
        """Path read + path write-back per access ((L+1) * Z each way)."""
        return 2 * (self.levels + 1) * self.bucket_size

    def issue(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        """Service a request after the fixed ORAM access latency.

        Both reads and writes move a full path: the request type does not
        change the work (that is how ORAM hides it).
        """
        self.stats.add("accesses")
        path_blocks = (self.levels + 1) * self.bucket_size
        self.stats.add("blocks_read", path_blocks)
        self.stats.add("blocks_written", path_blocks)
        # Every access rewrites ~(L+1)*Z blocks: that is the write
        # amplification charged against PCM lifetime in Table 4 / §5.2.
        self.stats.add("cell_block_writes", path_blocks)

        # Bound-method partial, not a closure: the queued completion event
        # must stay picklable for checkpoints.
        self.engine.post(
            self.access_latency_ps, partial(self._finish, request, callback)
        )

    def _finish(
        self, request: MemoryRequest, callback: CompletionCallback | None
    ) -> None:
        """Completion event: the fixed-latency access is done."""
        request.complete_time_ps = self.engine.now_ps
        if callback is not None:
            callback(request)

    # Port-compatibility alias (MemorySystem exposes enqueue).
    enqueue = issue
