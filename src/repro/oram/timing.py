"""ORAM timing model used for the performance comparison (paper §4).

The paper deliberately models ORAM optimistically: every memory access
costs a fixed latency (2500 ns for the Path ORAM baseline, extrapolated
from Freecursive ORAM), with unlimited bandwidth and unconstrained PCM
write power.  :class:`OramMemoryModel` reproduces exactly that shape —
one fixed-latency completion per request — but the latency and the
per-access traffic charged to the stats now come from a pluggable
:class:`~repro.oram.backend.OramBackend` decomposition, so Ring, Pyramid
and Palermo-style designs slot in as alternative backends while Table 3
is still regenerated on the paper's own terms.  The *functional* ORAMs
in :mod:`repro.oram.path_oram` / :mod:`repro.oram.ring_oram` /
:mod:`repro.oram.pyramid` supply the capacity / write-amplification /
stash-failure numbers for Table 4 and §5.2.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from functools import partial

from repro.mem.bus import BusTransfer, Direction, MemoryBus, TransferKind
from repro.mem.request import MemoryRequest
from repro.oram.backend import OramBackend, PathOramBackend, get_backend
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry

CompletionCallback = Callable[[MemoryRequest], None]

#: Spacing between the pulses of one maintenance burst (they model one
#: tightly scheduled batch of internal block moves).
_BURST_PULSE_SPACING_PS = 1_000
#: Safety bound on pulses emitted per burst (observability, not traffic
#: accounting, so truncating a huge burst loses nothing the attacker uses).
_MAX_BURST_PULSES = 1_024


class OramMemoryModel:
    """Fixed-latency, unlimited-bandwidth ORAM memory backend.

    The serviced latency and the per-access traffic (blocks read/written,
    PCM cell writes) are read once from the backend's
    :class:`~repro.oram.backend.AccessDecomposition`; legacy keyword
    overrides (``access_latency_ns``/``levels``/``bucket_size``) rescale
    the descriptor so existing call sites keep their meaning.

    With a ``bus`` attached, the model emits :data:`TransferKind.PULSE`
    records: an opaque trusted package exposes no wire, but its *activity
    timing* (power draw, bank-level parallelism) is still physically
    observable.  Per-access work produces one pulse; backends that declare
    a :meth:`~repro.oram.backend.OramBackend.maintenance_burst` cadence
    additionally emit one tight pulse cluster per scheduled eviction or
    rebuild — the §6.2-style timing channel the leakage matrix's
    rebuild-timing attacker detects.  Without a bus nothing is emitted
    and timing/stats are unchanged.
    """

    def __init__(
        self,
        engine: Engine,
        stats: StatRegistry,
        backend: OramBackend | str | None = None,
        access_latency_ns: float | None = None,
        levels: int | None = None,
        bucket_size: int | None = None,
        bus: MemoryBus | None = None,
    ):
        if backend is None:
            backend = PathOramBackend()
        elif isinstance(backend, str):
            backend = get_backend(backend)
        overrides = {
            "access_latency_ns": access_latency_ns,
            "levels": levels,
            "bucket_size": bucket_size,
        }
        applied = {k: v for k, v in overrides.items() if v is not None}
        if applied:
            backend = dataclasses.replace(backend, **applied)
        self.backend = backend
        self.engine = engine
        self.stats = stats.group("oram")
        self.decomposition = backend.decompose()
        self.access_latency_ps = ns_to_ps(self.decomposition.latency_ns)
        self.levels = backend.levels
        self.bucket_size = backend.bucket_size
        self.bus = bus
        self._accesses = 0
        self._burst = backend.maintenance_burst()

    @property
    def blocks_per_access(self) -> float:
        """Blocks moved per access (read + write-back, amortized)."""
        return self.decomposition.blocks_read + self.decomposition.blocks_written

    def issue(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        """Service a request after the backend's critical-path latency.

        Both reads and writes run the same decomposition: the request
        type does not change the work (that is how ORAM hides it).
        """
        self.stats.add("accesses")
        self.stats.add("blocks_read", self.decomposition.blocks_read)
        self.stats.add("blocks_written", self.decomposition.blocks_written)
        # Write-back traffic is charged against PCM lifetime: the write
        # amplification in Table 4 / §5.2 (amortized for backends whose
        # maintenance is periodic rather than per-access).
        self.stats.add("cell_block_writes", self.decomposition.cell_writes)

        # Bound-method partial, not a closure: the queued completion event
        # must stay picklable for checkpoints.
        self.engine.post(
            self.access_latency_ps, partial(self._finish, request, callback)
        )
        if self.bus is not None:
            self._emit_pulses()

    def _emit_pulses(self) -> None:
        """Record the access's observable activity on the attached bus.

        Timestamps anchor at the access's completion; burst pulses are
        spaced one per :data:`_BURST_PULSE_SPACING_PS` to model one tight
        internal batch.  Pure observability: no events are scheduled and
        no stats are touched, so simulated timing is bit-identical with or
        without an observer.
        """
        self._accesses += 1
        done_ps = self.engine.now_ps + self.access_latency_ps
        self.bus.emit(
            BusTransfer(done_ps, 0, TransferKind.PULSE, Direction.TO_MEMORY, b"")
        )
        if self._burst is None:
            return
        period, burst_blocks = self._burst
        if self._accesses % period:
            return
        for index in range(1, min(burst_blocks, _MAX_BURST_PULSES) + 1):
            self.bus.emit(
                BusTransfer(
                    done_ps + index * _BURST_PULSE_SPACING_PS,
                    0,
                    TransferKind.PULSE,
                    Direction.TO_MEMORY,
                    b"",
                )
            )

    def _finish(
        self, request: MemoryRequest, callback: CompletionCallback | None
    ) -> None:
        """Completion event: the fixed-latency access is done."""
        request.complete_time_ps = self.engine.now_ps
        if callback is not None:
            callback(request)

    # Port-compatibility alias (MemorySystem exposes enqueue).
    enqueue = issue
