"""ORAM baselines: Path ORAM and Ring ORAM (functional), plus the paper's
fixed-latency ORAM timing model."""

from repro.oram.path_oram import Bucket, OramBlock, PathOram, PositionMap
from repro.oram.ring_oram import RingOram
from repro.oram.timing import (
    DEFAULT_ACCESS_LATENCY_NS,
    DEFAULT_BUCKET_SIZE,
    DEFAULT_LEVELS,
    OramMemoryModel,
)

__all__ = [
    "Bucket",
    "OramBlock",
    "PathOram",
    "PositionMap",
    "RingOram",
    "DEFAULT_ACCESS_LATENCY_NS",
    "DEFAULT_BUCKET_SIZE",
    "DEFAULT_LEVELS",
    "OramMemoryModel",
]
