"""ORAM designs behind one pluggable-backend seam.

Functional implementations (Path, Ring, Pyramid), the fixed-latency
timing model the paper's §4 comparison charges, and the
:class:`~repro.oram.backend.OramBackend` descriptors that bind a design's
functional algorithm, per-access timing/traffic decomposition, and
observable-bus traits into one registrable object.
"""

from repro.oram.backend import (
    DEFAULT_ACCESS_LATENCY_NS,
    DEFAULT_BUCKET_SIZE,
    DEFAULT_LEVELS,
    AccessDecomposition,
    AccessPhase,
    OramBackend,
    PalermoBackend,
    PathOramBackend,
    PyramidOramBackend,
    RingOramBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.oram.path_oram import Bucket, OramBlock, PathOram, PositionMap
from repro.oram.pyramid import PyramidOram
from repro.oram.ring_oram import RingOram
from repro.oram.timing import OramMemoryModel

__all__ = [
    "AccessDecomposition",
    "AccessPhase",
    "Bucket",
    "OramBackend",
    "OramBlock",
    "OramMemoryModel",
    "PalermoBackend",
    "PathOram",
    "PathOramBackend",
    "PositionMap",
    "PyramidOram",
    "PyramidOramBackend",
    "RingOram",
    "RingOramBackend",
    "DEFAULT_ACCESS_LATENCY_NS",
    "DEFAULT_BUCKET_SIZE",
    "DEFAULT_LEVELS",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
