"""Pyramid ORAM (the Pyramid Scheme, Costa et al.) — a hash-table hierarchy.

Functional implementation of the hierarchical hash-table ORAM family the
Pyramid Scheme builds on: a small trusted *top buffer* sits above a
pyramid of keyed hash tables, each level twice the size of the one above.
An access probes exactly one bucket per non-empty level top-down (a dummy
bucket once the block has been found, so the probe sequence is
independent of where the block lives), then inserts the freshly touched
block into the top buffer.  When the top buffer overflows, levels are
merged downward under fresh hash keys — the classic binary-counter
rebuild schedule that gives the design its amortized cost and its bursty
maintenance signature (:data:`repro.oram.backend.TRAIT_REBUILD_BURSTS`).

The obliviousness argument is the hierarchical one: each level's key is
refreshed at every rebuild, a block is probed at most once per level per
epoch (it moves to the top buffer on first touch), and unfound levels are
probed at uniformly random buckets — so the bucket sequence an observer
sees is fresh-random per access.  :meth:`PyramidOram.check_invariant`
asserts the structural half (every stored block sits in the bucket its
level's key hashes it to, no duplicates), which is what rebuild bugs
break first.

Everything is plain picklable state (dicts, lists, ints) and all
randomness flows through one :class:`~repro.crypto.rng.DeterministicRng`
fork, so instances honor the PR-8 snapshot protocol: pickle mid-workload,
thaw, continue bit-identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, OramDeadlockError, OramError
from repro.oram.path_oram import OramBlock
from repro.sim.statistics import StatGroup

DEFAULT_TOP_CAPACITY = 4  # blocks buffered before a rebuild triggers
DEFAULT_REHASH_LIMIT = 32  # fresh-key retries before declaring deadlock
# A merge only targets a level with at least this many buckets per merged
# block (mean load <= 1/4): overflowing a Z-slot bucket is then rare
# enough that the fresh-key retry loop always converges in practice.
_LOAD_HEADROOM = 4


def _bucket_of(key: int, address: int, num_buckets: int) -> int:
    """Keyed hash placing a block address into one of a level's buckets.

    A short keyed digest (not Python's randomized ``hash``) keeps the
    mapping stable across processes, which the snapshot protocol and the
    golden determinism grid both rely on.
    """
    digest = hashlib.blake2b(
        f"{key}:{address}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % num_buckets


@dataclass
class _HashLevel:
    """One pyramid level: a keyed hash table of fixed-size buckets."""

    num_buckets: int
    bucket_size: int
    key: int = 0
    occupied: bool = False
    buckets: list[list[OramBlock]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.buckets:
            self.buckets = [[] for _ in range(self.num_buckets)]

    @property
    def block_count(self) -> int:
        """Real blocks currently stored in this level."""
        return sum(len(bucket) for bucket in self.buckets)

    def clear(self) -> None:
        """Empty the level (post-merge)."""
        self.buckets = [[] for _ in range(self.num_buckets)]
        self.occupied = False


class PyramidOram:
    """Functional Pyramid ORAM over ``num_blocks`` addressable blocks.

    Parameters
    ----------
    num_blocks:
        How many distinct real blocks the ORAM must hold.
    bucket_size:
        Slots per hash bucket (shares the paper's Z=4 default).
    top_capacity:
        Trusted top-buffer size; overflowing it triggers a rebuild, so
        this is also the rebuild cadence.
    rehash_limit:
        Fresh-key retries when a rebuild overflows a bucket before
        :class:`OramDeadlockError` is raised (the hierarchy's analogue of
        Path ORAM's stash overflow).
    """

    def __init__(
        self,
        num_blocks: int,
        rng: DeterministicRng,
        bucket_size: int = 4,
        top_capacity: int = DEFAULT_TOP_CAPACITY,
        levels: int | None = None,
        rehash_limit: int = DEFAULT_REHASH_LIMIT,
        stats: StatGroup | None = None,
    ):
        if num_blocks < 1:
            raise ConfigurationError("Pyramid ORAM needs at least one block")
        if bucket_size < 1:
            raise ConfigurationError("bucket size must be >= 1")
        if top_capacity < 1:
            raise ConfigurationError("top buffer needs at least one slot")
        if rehash_limit < 1:
            raise ConfigurationError("rehash limit must be >= 1")
        if levels is None:
            # Deep enough that the bottom level holds everything at the
            # <= 1/4 blocks-per-bucket load the rebuild rule maintains
            # (keeps per-key placement failures rare enough that a few
            # rehash retries always succeed).
            levels = max(
                2, (_LOAD_HEADROOM * (num_blocks + top_capacity) - 1).bit_length()
            )
        self.num_blocks = num_blocks
        self.bucket_size = bucket_size
        self.top_capacity = top_capacity
        self.rehash_limit = rehash_limit
        self.num_levels = levels
        self._rng = rng.fork("pyramid")
        # Level i has 2^(i+1) buckets: capacity doubles level to level.
        self.levels = [
            _HashLevel(num_buckets=1 << (i + 1), bucket_size=bucket_size)
            for i in range(levels)
        ]
        bottom = self.levels[-1]
        if bottom.num_buckets < _LOAD_HEADROOM * (num_blocks + top_capacity):
            raise ConfigurationError(
                f"pyramid with {levels} levels, Z={bucket_size} cannot hold "
                f"{num_blocks} blocks at the required hash load headroom"
            )
        self.top: dict[int, OramBlock] = {}
        self.stats = stats or StatGroup("pyramid_oram")
        self.max_top_seen = 0
        self.epoch = 0

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------

    def access(self, address: int, write_data: bytes | None = None) -> bytes | None:
        """One Pyramid access: read if ``write_data`` is None, else write.

        Probes one bucket per occupied level top-down (dummy buckets once
        the block is found or when it was already in the top buffer),
        moves the block into the top buffer, and rebuilds when the buffer
        overflows.  Returns the block's previous data (None if never
        written).
        """
        if not 0 <= address < self.num_blocks:
            raise OramError(f"address {address} out of ORAM range")
        found = self.top.pop(address, None)
        for level in self.levels:
            if not level.occupied:
                continue
            if found is None:
                index = _bucket_of(level.key, address, level.num_buckets)
            else:
                # Dummy probe: uniformly random bucket, same wire cost.
                index = self._rng.randrange(level.num_buckets)
            bucket = level.buckets[index]
            self.stats.add("blocks_read", self.bucket_size)
            if found is None:
                for position, block in enumerate(bucket):
                    if block.address == address:
                        found = bucket.pop(position)
                        break

        old_data = None
        if found is not None:
            old_data = found.data
            if write_data is not None:
                found.data = write_data
            self.top[address] = found
        elif write_data is not None:
            self.top[address] = OramBlock(address, 0, write_data)

        self.max_top_seen = max(self.max_top_seen, len(self.top))
        self.stats.add("accesses")
        if len(self.top) > self.top_capacity:
            self._rebuild()
        return old_data

    def read(self, address: int) -> bytes | None:
        """Oblivious read of one block."""
        return self.access(address)

    def write(self, address: int, data: bytes) -> None:
        """Oblivious write of one block."""
        self.access(address, write_data=data)

    # ------------------------------------------------------------------
    # Rebuild (the binary-counter merge schedule)
    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        """Merge the top buffer and upper levels downward under a fresh key.

        Hierarchical schedule with a load guard: walking top-down and
        accumulating the blocks that would merge (top buffer plus every
        level passed, the destination's current content included), the
        destination is the shallowest level that can take the merged set
        at the :data:`_LOAD_HEADROOM` buckets-per-block ratio — the bottom
        level as the guaranteed fallback.  Levels above the destination
        come out empty, restoring the pyramid shape.
        """
        target = self.num_levels - 1
        cumulative = len(self.top)
        for i, level in enumerate(self.levels):
            cumulative += level.block_count
            if level.num_buckets >= _LOAD_HEADROOM * cumulative:
                target = i
                break
        blocks = list(self.top.values())
        for level in self.levels[: target + 1]:
            for bucket in level.buckets:
                blocks.extend(bucket)
        self._fill_level(self.levels[target], blocks)
        self.top = {}
        for level in self.levels[:target]:
            level.clear()
        self.epoch += 1
        self.stats.add("rebuilds")
        self.stats.add("rebuild_blocks", len(blocks))

    def _fill_level(self, level: _HashLevel, blocks: list[OramBlock]) -> None:
        """Place blocks into a level under a fresh key, retrying on overflow."""
        if len(blocks) > level.num_buckets * level.bucket_size:
            raise OramDeadlockError(
                f"pyramid level of {level.num_buckets} buckets cannot hold "
                f"{len(blocks)} blocks"
            )
        for _ in range(self.rehash_limit):
            key = self._rng.getrandbits(64)
            placed: list[list[OramBlock]] = [[] for _ in range(level.num_buckets)]
            for block in blocks:
                slot = placed[_bucket_of(key, block.address, level.num_buckets)]
                if len(slot) >= level.bucket_size:
                    break
                slot.append(block)
            else:
                level.key = key
                level.buckets = placed
                level.occupied = True
                # One read + one write per merged block, the traffic the
                # backend decomposition amortizes per access.
                self.stats.add("blocks_read", len(blocks))
                self.stats.add("blocks_written", len(blocks))
                return
            self.stats.add("rehash_retries")
        raise OramDeadlockError(
            f"pyramid rebuild failed {self.rehash_limit} rehash attempts "
            f"placing {len(blocks)} blocks into {level.num_buckets} buckets"
        )

    # ------------------------------------------------------------------
    # Invariants and accounting
    # ------------------------------------------------------------------

    def check_invariant(self) -> None:
        """Structural invariant: keyed placement holds and no block repeats."""
        seen: set[int] = set(self.top)
        if len(seen) != len(self.top):
            raise OramError("duplicate block in top buffer")
        for depth, level in enumerate(self.levels):
            if not level.occupied and level.block_count:
                raise OramError(f"level {depth} holds blocks but is marked empty")
            for index, bucket in enumerate(level.buckets):
                if len(bucket) > level.bucket_size:
                    raise OramError(f"level {depth} bucket {index} over capacity")
                for block in bucket:
                    if block.address in seen:
                        raise OramError(f"duplicate block {block.address}")
                    seen.add(block.address)
                    expected = _bucket_of(level.key, block.address, level.num_buckets)
                    if index != expected:
                        raise OramError(
                            f"block {block.address} in level {depth} bucket "
                            f"{index}, keyed hash says {expected}"
                        )

    @property
    def stored_blocks(self) -> int:
        """Real blocks currently held (top buffer + all levels)."""
        return len(self.top) + sum(level.block_count for level in self.levels)

    @property
    def capacity_blocks(self) -> int:
        """Total block slots across the hierarchy (real + empty)."""
        return sum(
            level.num_buckets * level.bucket_size for level in self.levels
        )

    @property
    def capacity_overhead(self) -> float:
        """Fraction of hierarchy capacity not usable for real data."""
        return 1.0 - self.num_blocks / self.capacity_blocks

    @property
    def blocks_per_access(self) -> float:
        """Measured average blocks moved per access (probes + rebuilds)."""
        accesses = self.stats.get("accesses")
        if not accesses:
            return 0.0
        total = self.stats.get("blocks_read") + self.stats.get("blocks_written")
        return total / accesses
