"""CPU side: traces, synthetic workload generation and the core model."""

from repro.cpu.core import TraceDrivenCore
from repro.cpu.generator import SyntheticTraceGenerator, make_trace
from repro.cpu.kernels import (
    KERNELS,
    AccessChunks,
    pointer_chase,
    pointer_chase_chunks,
    random_lookup,
    random_lookup_chunks,
    sequential_scan,
    sequential_scan_chunks,
    stencil,
    stencil_chunks,
    trace_through_hierarchy,
)
from repro.cpu.spec_profiles import (
    BENCHMARK_NAMES,
    BASELINE_READ_LATENCY_NS,
    ORAM_ACCESS_LATENCY_NS,
    BenchmarkProfile,
    SPEC_PROFILES,
)
from repro.cpu.trace import Trace, TraceRecord

__all__ = [
    "TraceDrivenCore",
    "SyntheticTraceGenerator",
    "make_trace",
    "KERNELS",
    "AccessChunks",
    "pointer_chase",
    "pointer_chase_chunks",
    "random_lookup",
    "random_lookup_chunks",
    "sequential_scan",
    "sequential_scan_chunks",
    "stencil",
    "stencil_chunks",
    "trace_through_hierarchy",
    "BENCHMARK_NAMES",
    "BASELINE_READ_LATENCY_NS",
    "ORAM_ACCESS_LATENCY_NS",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "Trace",
    "TraceRecord",
]
