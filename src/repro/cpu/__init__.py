"""CPU side: traces, synthetic workload generation and the core model."""

from repro.cpu.core import TraceDrivenCore
from repro.cpu.generator import SyntheticTraceGenerator, make_trace
from repro.cpu.kernels import (
    pointer_chase,
    random_lookup,
    sequential_scan,
    stencil,
    trace_through_hierarchy,
)
from repro.cpu.spec_profiles import (
    BENCHMARK_NAMES,
    BASELINE_READ_LATENCY_NS,
    ORAM_ACCESS_LATENCY_NS,
    BenchmarkProfile,
    SPEC_PROFILES,
)
from repro.cpu.trace import Trace, TraceRecord

__all__ = [
    "TraceDrivenCore",
    "SyntheticTraceGenerator",
    "make_trace",
    "pointer_chase",
    "random_lookup",
    "sequential_scan",
    "stencil",
    "trace_through_hierarchy",
    "BENCHMARK_NAMES",
    "BASELINE_READ_LATENCY_NS",
    "ORAM_ACCESS_LATENCY_NS",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "Trace",
    "TraceRecord",
]
