"""Synthetic trace generation calibrated to a benchmark profile.

The generator reproduces, by construction, the statistics the paper's
evaluation depends on: the average inter-request gap (exponential compute
gaps around the profile's calibrated mean), the read/write mix, the spatial
locality (geometric sequential runs), the temporal locality (a hot subset
receiving a configurable share of accesses), and the pointer-chasing degree
(dependent reads).  MPKI enters through ``instructions_per_request`` so IPC
and MPKI reporting match Table 1.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cpu.spec_profiles import BenchmarkProfile
from repro.cpu.trace import Trace, TraceRecord
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.request import BLOCK_SIZE_BYTES
from repro.sim import profiling

#: Default records per chunk yielded by
#: :meth:`SyntheticTraceGenerator.generate_chunks`.
CHUNK_RECORDS = 4096


class SyntheticTraceGenerator:
    """Generates reproducible traces for one benchmark profile."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        rng: DeterministicRng,
        address_limit: int | None = None,
    ):
        self.profile = profile
        self._rng = rng
        footprint_bytes = profile.footprint_mib << 20
        hot_bytes = min(profile.hot_mib << 20, footprint_bytes)
        if address_limit is not None and footprint_bytes > address_limit:
            raise ConfigurationError(
                f"{profile.name}: footprint {footprint_bytes:#x} exceeds "
                f"address limit {address_limit:#x}"
            )
        self._footprint_blocks = footprint_bytes // BLOCK_SIZE_BYTES
        self._hot_blocks = max(1, hot_bytes // BLOCK_SIZE_BYTES)
        self._cursor_block = 0
        self._run_remaining = 0

    def _next_block(self) -> int:
        """Next block address: sequential runs over a hot/cold split."""
        profile = self.profile
        if self._run_remaining > 0:
            self._run_remaining -= 1
            self._cursor_block = (self._cursor_block + 1) % self._footprint_blocks
            return self._cursor_block
        # Start a new run at a fresh location.
        if self._rng.random() < profile.hot_fraction:
            self._cursor_block = self._rng.randrange(self._hot_blocks)
        else:
            self._cursor_block = self._rng.randrange(self._footprint_blocks)
        # Geometric run length with the profile's mean.
        if profile.run_length > 1.0:
            continue_probability = 1.0 - 1.0 / profile.run_length
            run = 1
            while self._rng.random() < continue_probability:
                run += 1
            self._run_remaining = run - 1
        return self._cursor_block

    def generate_chunks(
        self, num_requests: int, chunk_records: int = CHUNK_RECORDS
    ) -> Iterator[list[TraceRecord]]:
        """Stream the trace as chunks of records (the batch unit).

        Chunk boundaries never affect record content — only delivery.
        Consumers that feed records forward batch-at-a-time (the serve
        layer, :meth:`generate` itself) avoid per-record generator
        resumption this way.
        """
        if num_requests < 1:
            raise ConfigurationError("trace needs at least one request")
        profile = self.profile
        mean_gap = profile.compute_gap_ns
        has_gap = mean_gap > 0
        inverse_gap = 1.0 / mean_gap if has_gap else 0.0
        write_fraction = profile.write_fraction
        dependent_fraction = profile.dependent_fraction
        rng = self._rng
        expovariate = rng.expovariate
        random = rng.random
        next_block = self._next_block
        chunk: list[TraceRecord] = []
        append = chunk.append
        for _ in range(num_requests):
            gap = expovariate(inverse_gap) if has_gap else 0.0
            is_write = random() < write_fraction
            dependent = (not is_write) and random() < dependent_fraction
            append(
                TraceRecord(
                    gap_ns=gap,
                    address=next_block() * BLOCK_SIZE_BYTES,
                    is_write=is_write,
                    dependent=dependent,
                )
            )
            if len(chunk) >= chunk_records:
                yield chunk
                chunk = []
                append = chunk.append
        if chunk:
            yield chunk

    def generate(self, num_requests: int) -> Trace:
        """Produce a trace of ``num_requests`` records."""
        records: list[TraceRecord] = []
        with profiling.phase("trace_generation"):
            for chunk in self.generate_chunks(num_requests):
                records.extend(chunk)
        return Trace(
            name=self.profile.name,
            records=records,
            instructions_per_request=self.profile.instructions_per_request,
        )


def make_trace(
    profile: BenchmarkProfile, num_requests: int, seed: int = 2017
) -> Trace:
    """Convenience: deterministic trace for a profile and a seed."""
    rng = DeterministicRng(seed).fork(f"trace-{profile.name}")
    return SyntheticTraceGenerator(profile, rng).generate(num_requests)
