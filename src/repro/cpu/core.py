"""Trace-driven core model.

Replays a :class:`repro.cpu.trace.Trace` against any request port (the raw
memory system, the secure controller, ObfusMem, or the ORAM model) and
measures execution time.  The model captures the two core behaviours the
paper's results hinge on:

* **memory-level parallelism** — up to ``window`` reads may be outstanding;
  issue stalls when the window is full;
* **dependent reads** — records flagged ``dependent`` block all later
  issues until their data returns (pointer chasing).

Writes are posted: they are issued and forgotten (write-back traffic is off
the critical path, §3.3), though they still contend for memory resources
downstream.
"""

from __future__ import annotations

from repro.cpu.trace import Trace, TraceRecord
from repro.errors import ConfigurationError, SimulationError
from repro.mem.request import MemoryRequest, RequestType
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry


class TraceDrivenCore:
    """Issues one trace's requests into a port; measures execution time."""

    def __init__(
        self,
        engine: Engine,
        trace: Trace,
        port,
        window: int,
        stats: StatRegistry,
        core_id: int = 0,
    ):
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.engine = engine
        self.trace = trace
        self.port = port
        self.window = window
        self.stats = stats.group(f"core{core_id}")
        # Hot-path bindings: per-request counters and the latency histogram.
        self._counters = self.stats.counters()
        self._latency_hist = self.stats.live_histogram("read_latency_ns")
        self._records = trace.records
        # Issue gaps converted to integer picoseconds once, up front.
        self._gaps_ps = [ns_to_ps(record.gap_ns) for record in trace.records]
        self.core_id = core_id
        self._index = 0
        self._outstanding_reads = 0
        self._waiting_for: int | None = None  # request id of a dependent read
        self._window_stalled = False
        self._reads_completed = 0
        self._reads_issued = 0
        self.finish_time_ps: int | None = None
        self._started = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first issue; call once before ``engine.run()``."""
        if self._started:
            raise SimulationError("core already started")
        self._started = True
        self.engine.post(self._gaps_ps[0], self._try_issue)

    @property
    def done(self) -> bool:
        return self.finish_time_ps is not None

    @property
    def execution_time_ns(self) -> float:
        if self.finish_time_ps is None:
            raise SimulationError("core has not finished")
        return self.finish_time_ps / 1000.0

    @property
    def average_gap_ns(self) -> float:
        """Measured average time between requests (Table 1's 'Avg Gap')."""
        return self.execution_time_ns / len(self.trace)

    def measured_ipc(self, clock_ghz: float = 2.0) -> float:
        """IPC implied by the trace's instruction count and measured time."""
        cycles = self.execution_time_ns * clock_ghz
        return self.trace.total_instructions / cycles if cycles else 0.0

    # ------------------------------------------------------------------

    def _try_issue(self) -> None:
        """Issue the current record if the core is not stalled."""
        if self._index >= len(self._records):
            return
        if self._waiting_for is not None:
            return  # resumed by the dependent read's completion
        record = self._records[self._index]
        if not record.is_write and self._outstanding_reads >= self.window:
            self._window_stalled = True
            return  # resumed by any read completion
        self._index += 1
        self._issue(record)

    def _issue(self, record: TraceRecord) -> None:
        request = MemoryRequest(
            address=record.address,
            request_type=RequestType.WRITE if record.is_write else RequestType.READ,
            core_id=self.core_id,
        )
        request.issue_time_ps = self.engine._now_ps
        if record.is_write:
            self._counters["writes_issued"] += 1
            self.port.issue(request, None)
            self._schedule_next()
        else:
            self._counters["reads_issued"] += 1
            self._reads_issued += 1
            self._outstanding_reads += 1
            if record.dependent:
                self._waiting_for = request.request_id
                self._counters["dependent_reads"] += 1
            self.port.issue(request, self._on_read_complete)
            if not record.dependent:
                self._schedule_next()

    def _schedule_next(self) -> None:
        if self._index >= len(self._records):
            self._maybe_finish()
            return
        self.engine.post(self._gaps_ps[self._index], self._try_issue)

    def _on_read_complete(self, request: MemoryRequest) -> None:
        self._outstanding_reads -= 1
        self._reads_completed += 1
        self._latency_hist.record(request.latency_ps / 1000.0)
        if self._waiting_for == request.request_id:
            self._waiting_for = None
            self._schedule_next()
        elif self._window_stalled:
            self._window_stalled = False
            self._try_issue()
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (
            self.finish_time_ps is None
            and self._index >= len(self.trace.records)
            and self._reads_completed == self._reads_issued
            and self._waiting_for is None
        ):
            self.finish_time_ps = self.engine.now_ps
            self.stats.set("execution_time_ns", self.finish_time_ps / 1000.0)
