"""SPEC CPU2006 benchmark profiles calibrated to the paper's Table 1.

SPEC binaries cannot be run here, so each benchmark is described by the
three characteristics the paper reports (IPC, LLC MPKI, average gap between
memory requests) plus the paper's own measured ORAM overhead, and a handful
of locality knobs chosen per benchmark archetype (streaming vs pointer
chasing).  From those we derive the trace-generator parameters:

* ``window`` — the core's memory-level parallelism.  Calibrated so that a
  fixed 2500 ns ORAM access latency (the paper's §4 model) reproduces the
  paper's ORAM slowdown: ``window = ceil(2500ns / (oram_ratio * gap))``.
* ``dependent_fraction`` — the share of reads the core must block on, the
  fine-grained interpolation between full-window overlap and serial
  pointer chasing.  Solved from the same ORAM target.
* ``compute_gap_ns`` — mean non-memory work per request, back-solved so the
  *baseline* simulation reproduces Table 1's average gap.

The derivation intentionally uses only the paper's published numbers; the
ObfusMem overheads are then *emergent* from the simulated contention, which
is what the reproduction is testing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Nominal unloaded PCM read latency seen by the core in the baseline system
# (command + activation + CAS + burst, from Table 2), used only for the
# compute-gap back-solve.
BASELINE_READ_LATENCY_NS = 80.0
ORAM_ACCESS_LATENCY_NS = 2500.0


@dataclass(frozen=True)
class BenchmarkProfile:
    """Table 1 characteristics + archetype knobs for one benchmark."""

    name: str
    ipc: float  # Table 1
    llc_mpki: float  # Table 1
    avg_gap_ns: float  # Table 1
    oram_overhead_pct: float  # Table 3 (used for MLP calibration)
    obfusmem_overhead_pct: float  # Table 3 (reference only, never input)
    write_fraction: float
    run_length: float  # mean sequential run of block addresses
    footprint_mib: int  # distinct memory touched
    hot_fraction: float  # fraction of accesses hitting the hot subset
    hot_mib: int  # size of the hot subset

    # -- derived calibration ---------------------------------------------
    #
    # Only reads occupy the core's miss window (writes are posted), so all
    # throughput terms are scaled by the read share r.  The model mixes two
    # regimes: windowed reads sustain one request per max(mu, r*L/W) ns;
    # dependent reads serialize, costing mu + L each.  The dependent
    # fraction and compute gap are solved jointly so that (a) the baseline
    # simulation lands on Table 1's average gap and (b) the paper's fixed
    # 2500 ns ORAM model lands on Table 3's ORAM overhead.

    @property
    def read_share(self) -> float:
        return 1.0 - self.write_fraction

    @property
    def oram_time_per_request_ns(self) -> float:
        return (1.0 + self.oram_overhead_pct / 100.0) * self.avg_gap_ns

    @property
    def window(self) -> int:
        """Outstanding-miss window reproducing the paper's ORAM slowdown."""
        return max(
            1,
            math.ceil(
                self.read_share
                * ORAM_ACCESS_LATENCY_NS
                / self.oram_time_per_request_ns
            ),
        )

    def _solve_calibration(self) -> tuple[float, float]:
        """Fixed-point solve of (compute gap mu, dependent read fraction p)."""
        mu = self.avg_gap_ns
        p = 0.0
        r = self.read_share
        t_target = self.oram_time_per_request_ns
        for _ in range(12):
            t_windowed = max(mu, r * ORAM_ACCESS_LATENCY_NS / self.window)
            t_dependent = mu + ORAM_ACCESS_LATENCY_NS
            if t_dependent <= t_windowed:
                p_effective = 0.0
            else:
                p_effective = min(
                    r, max(0.0, (t_target - t_windowed) / (t_dependent - t_windowed))
                )
            p = p_effective / r if r else 0.0
            # Baseline exposure: dependent reads expose the full baseline
            # read latency each; windowed reads expose only spillover.
            exposed = p_effective * BASELINE_READ_LATENCY_NS
            exposed += max(0.0, r * BASELINE_READ_LATENCY_NS / self.window - mu) * (
                1.0 - p_effective
            )
            mu = max(1.0, self.avg_gap_ns - exposed)
        return mu, min(1.0, p)

    @property
    def dependent_fraction(self) -> float:
        """Share of reads the core must block on (pointer-chasing degree)."""
        return self._solve_calibration()[1]

    @property
    def compute_gap_ns(self) -> float:
        """Mean compute time per request, back-solved from Table 1's gap."""
        return self._solve_calibration()[0]

    @property
    def instructions_per_request(self) -> float:
        return 1000.0 / self.llc_mpki


def _streaming(name, ipc, mpki, gap, oram, obfus, footprint=192):
    return BenchmarkProfile(
        name=name,
        ipc=ipc,
        llc_mpki=mpki,
        avg_gap_ns=gap,
        oram_overhead_pct=oram,
        obfusmem_overhead_pct=obfus,
        write_fraction=0.35,
        run_length=16.0,
        footprint_mib=footprint,
        hot_fraction=0.6,
        hot_mib=8,
    )


def _pointer(name, ipc, mpki, gap, oram, obfus, footprint=96, hot=0.85):
    return BenchmarkProfile(
        name=name,
        ipc=ipc,
        llc_mpki=mpki,
        avg_gap_ns=gap,
        oram_overhead_pct=oram,
        obfusmem_overhead_pct=obfus,
        write_fraction=0.20,
        run_length=1.5,
        footprint_mib=footprint,
        hot_fraction=hot,
        hot_mib=12,
    )


def _mixed(name, ipc, mpki, gap, oram, obfus, footprint=128):
    return BenchmarkProfile(
        name=name,
        ipc=ipc,
        llc_mpki=mpki,
        avg_gap_ns=gap,
        oram_overhead_pct=oram,
        obfusmem_overhead_pct=obfus,
        write_fraction=0.30,
        run_length=4.0,
        footprint_mib=footprint,
        hot_fraction=0.8,
        hot_mib=16,
    )


# Table 1 + Table 3 of the paper, one profile per row.
SPEC_PROFILES: dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        _streaming("bwaves", 0.59, 18.23, 44.32, 1561.0, 18.9),
        _pointer("mcf", 0.17, 24.82, 74.95, 1133.3, 32.1, footprint=256, hot=0.85),
        _streaming("lbm", 0.35, 6.94, 67.97, 1298.6, 12.5),
        _streaming("zeus", 0.53, 4.81, 63.56, 1644.3, 14.9),
        _streaming("milc", 0.42, 15.56, 51.54, 1846.6, 28.4),
        _pointer("xalan", 0.52, 0.97, 945.62, 137.7, 0.8, footprint=48),
        _pointer("omnetpp", 4.30, 0.10, 1104.74, 64.96, 1.2, footprint=32),
        _mixed("soplex", 0.25, 23.11, 69.06, 1878.6, 15.7, footprint=160),
        _streaming("libquantum", 0.33, 5.56, 146.82, 604.8, 2.9, footprint=64),
        _pointer("sjeng", 0.95, 0.36, 1382.13, 152.5, 1.1, footprint=48),
        _streaming("leslie3d", 0.49, 9.85, 58.91, 1626.6, 15.1),
        _pointer("astar", 0.70, 0.13, 5660.18, 30.7, 0.1, footprint=24),
        _pointer("hmmer", 1.39, 0.02, 2687.60, 86.6, 0.0, footprint=16),
        _mixed("cactus", 1.05, 1.91, 128.09, 784.8, 5.2),
        _streaming("gems", 0.40, 11.66, 66.25, 1340.9, 14.3),
    ]
}

BENCHMARK_NAMES = list(SPEC_PROFILES)

# Paper-reported averages (for EXPERIMENTS.md comparison).
PAPER_AVG_ORAM_OVERHEAD_PCT = 946.1
PAPER_AVG_OBFUSMEM_AUTH_OVERHEAD_PCT = 10.9
PAPER_AVG_OBFUSMEM_OVERHEAD_PCT = 8.3
PAPER_AVG_ENCRYPTION_OVERHEAD_PCT = 2.2
PAPER_AVG_SPEEDUP = 9.1
