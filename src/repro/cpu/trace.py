"""Workload traces: the memory-request streams driving the experiments.

A trace is the sequence of LLC-level memory requests of one benchmark, each
annotated with the *compute gap* (nanoseconds of non-memory work the core
performs before issuing it) and, for reads, whether the core is *dependent*
on the result (pointer-chasing style: issue of later requests blocks until
the read returns).

Traces are generated once per benchmark (see :mod:`repro.cpu.generator`) and
replayed unchanged on every protection scheme, so execution-time ratios are
apples to apples.  A small text serialization supports saving/loading traces
for external tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import TraceError
from repro.mem.request import BLOCK_SIZE_BYTES


@dataclass(frozen=True)
class TraceRecord:
    """One LLC-level memory request."""

    gap_ns: float  # compute time since the previous record's issue
    address: int  # block-aligned byte address
    is_write: bool
    dependent: bool = False  # core blocks until this read completes

    def __post_init__(self) -> None:
        if self.gap_ns < 0:
            raise TraceError(f"negative gap {self.gap_ns}")
        if self.address % BLOCK_SIZE_BYTES:
            raise TraceError(f"unaligned trace address {self.address:#x}")
        if self.is_write and self.dependent:
            raise TraceError("writes are posted; they cannot be dependent")


@dataclass
class Trace:
    """A named request stream plus bookkeeping for IPC/MPKI reporting."""

    name: str
    records: list[TraceRecord]
    instructions_per_request: float = 1000.0

    def __post_init__(self) -> None:
        if not self.records:
            raise TraceError(f"trace {self.name!r} is empty")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def total_instructions(self) -> float:
        return len(self.records) * self.instructions_per_request

    @property
    def read_fraction(self) -> float:
        reads = sum(1 for record in self.records if not record.is_write)
        return reads / len(self.records)

    @property
    def footprint_blocks(self) -> int:
        return len({record.address for record in self.records})

    def to_jsonable(self) -> dict:
        """Lossless JSON form: exact float gaps, unlike :meth:`save`.

        The text format of :meth:`save` rounds gaps to 4 decimals for
        readability; the persistent trace cache needs bit-identical
        round-trips, so it stores this form instead (floats survive JSON
        exactly).  Records are compact ``[gap, address, write, dependent]``
        rows.
        """
        return {
            "name": self.name,
            "instructions_per_request": self.instructions_per_request,
            "records": [
                [record.gap_ns, record.address, int(record.is_write),
                 int(record.dependent)]
                for record in self.records
            ],
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "Trace":
        """Rebuild a trace from :meth:`to_jsonable` output (exact)."""
        try:
            records = [
                TraceRecord(
                    gap_ns=float(gap),
                    address=address,
                    is_write=bool(write),
                    dependent=bool(dependent),
                )
                for gap, address, write, dependent in payload["records"]
            ]
            return cls(
                name=payload["name"],
                records=records,
                instructions_per_request=float(
                    payload["instructions_per_request"]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise TraceError(f"malformed trace payload: {error}")

    def save(self, path: str | Path) -> None:
        """Write the trace as one line per record (gap addr kind flags)."""
        lines = [f"# trace {self.name} ipr={self.instructions_per_request}"]
        for record in self.records:
            kind = "W" if record.is_write else ("RD" if record.dependent else "R")
            lines.append(f"{record.gap_ns:.4f} {record.address:#x} {kind}")
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        lines = Path(path).read_text().splitlines()
        if not lines or not lines[0].startswith("# trace "):
            raise TraceError(f"{path}: missing trace header")
        header = lines[0].split()
        name = header[2]
        ipr = float(header[3].split("=", 1)[1])
        records = []
        for line_number, line in enumerate(lines[1:], start=2):
            if not line.strip() or line.startswith("#"):
                continue
            try:
                gap, address, kind = line.split()
                records.append(
                    TraceRecord(
                        gap_ns=float(gap),
                        address=int(address, 16),
                        is_write=kind == "W",
                        dependent=kind == "RD",
                    )
                )
            except (ValueError, TraceError) as error:
                raise TraceError(f"{path}:{line_number}: {error}")
        return cls(name=name, records=records, instructions_per_request=ipr)
