"""Application kernels: CPU-level address streams for the full-stack path.

The SPEC profiles drive the memory-level experiments; these kernels drive
the *whole* machine — loads and stores that flow through the cache
hierarchy before any memory traffic exists.  They model the workload
archetypes the paper's introduction motivates (sensitive database lookups,
graph traversal, bulk analytics), and double as workload generators for
users adopting the library outside the SPEC reproduction.

Kernels are *chunk-native*: each ``*_chunks`` factory returns an
:class:`AccessChunks` stream whose chunks are plain lists of
``(address, is_write)`` pairs.  :func:`trace_through_hierarchy` feeds
whole chunks into :meth:`~repro.mem.hierarchy.CacheHierarchy.access_batch`
in a tight loop, so the front end pays one generator resumption per a few
thousand accesses instead of one per access, and builds
:class:`~repro.cpu.trace.TraceRecord` objects only for the below-LLC
traffic that survives the hierarchy.  The historical per-access kernels
(:func:`sequential_scan` et al.) remain as flattening wrappers — same
signatures, same RNG consumption order, same streams.

``reference=True`` routes :func:`trace_through_hierarchy` through the
preserved original implementation (:mod:`repro.mem.reference`); the
equivalence tests assert both paths produce bit-identical traces and
statistics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import islice

from repro.cpu.trace import Trace, TraceRecord
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig
from repro.mem.reference import ReferenceCacheHierarchy
from repro.sim import profiling
from repro.sim.statistics import StatRegistry

AccessStream = Iterable[tuple[int, bool]]

#: Default accesses per chunk: large enough to amortise generator
#: resumption and batch dispatch, small enough to keep chunks in cache.
CHUNK_ACCESSES = 4096


class AccessChunks:
    """A kernel's access stream, delivered as chunks of ``(address, is_write)``.

    Iterating yields lists of pairs (the batch units consumed by
    :func:`trace_through_hierarchy`); :meth:`flatten` recovers the
    per-access view for code that wants one pair at a time.  Chunk
    boundaries are an implementation detail — they never affect the
    access sequence, only how it is delivered.
    """

    __slots__ = ("_chunks",)

    def __init__(self, chunks: Iterable[list[tuple[int, bool]]]):
        self._chunks = chunks

    def __iter__(self) -> Iterator[list[tuple[int, bool]]]:
        """Yield the chunks in stream order."""
        return iter(self._chunks)

    def flatten(self) -> Iterator[tuple[int, bool]]:
        """Yield individual ``(address, is_write)`` pairs in stream order."""
        for chunk in self._chunks:
            yield from chunk


def sequential_scan_chunks(
    array_bytes: int,
    passes: int = 1,
    stride: int = 8,
    write_fraction: float = 0.0,
    rng: DeterministicRng | None = None,
    chunk_accesses: int = CHUNK_ACCESSES,
) -> AccessChunks:
    """Bulk analytics: stream over a large array, optionally updating it."""

    def produce() -> Iterator[list[tuple[int, bool]]]:
        if array_bytes <= 0 or stride <= 0:
            raise ConfigurationError("array and stride must be positive")
        random = (rng or DeterministicRng(0)).random
        chunk: list[tuple[int, bool]] = []
        append = chunk.append
        for _ in range(passes):
            for address in range(0, array_bytes, stride):
                append((address, random() < write_fraction))
                if len(chunk) >= chunk_accesses:
                    yield chunk
                    chunk = []
                    append = chunk.append
        if chunk:
            yield chunk

    return AccessChunks(produce())


def random_lookup_chunks(
    table_bytes: int,
    lookups: int,
    record_bytes: int = 64,
    rng: DeterministicRng | None = None,
    chunk_accesses: int = CHUNK_ACCESSES,
) -> AccessChunks:
    """Key-value / database index probes: uniform reads of whole records."""

    def produce() -> Iterator[list[tuple[int, bool]]]:
        if table_bytes < record_bytes:
            raise ConfigurationError("table smaller than one record")
        randrange = (rng or DeterministicRng(1)).randrange
        records = table_bytes // record_bytes
        chunk: list[tuple[int, bool]] = []
        append = chunk.append
        for _ in range(lookups):
            base = randrange(records) * record_bytes
            for offset in range(0, record_bytes, 8):
                append((base + offset, False))
            if len(chunk) >= chunk_accesses:
                yield chunk
                chunk = []
                append = chunk.append
        if chunk:
            yield chunk

    return AccessChunks(produce())


def pointer_chase_chunks(
    pool_bytes: int,
    hops: int,
    node_bytes: int = 64,
    rng: DeterministicRng | None = None,
    chunk_accesses: int = CHUNK_ACCESSES,
) -> AccessChunks:
    """Graph/linked-structure traversal: each hop depends on the last.

    The chain is a random permutation cycle so every node is visited
    before any repeats — the worst case for caches and the classic
    access-pattern-leak workload (the attacker literally sees the pointer
    graph on an unprotected bus).
    """

    def produce() -> Iterator[list[tuple[int, bool]]]:
        if pool_bytes < node_bytes:
            raise ConfigurationError("pool smaller than one node")
        shuffle_rng = rng or DeterministicRng(2)
        nodes = pool_bytes // node_bytes
        order = list(range(nodes))
        shuffle_rng.shuffle(order)
        position = 0
        chunk: list[tuple[int, bool]] = []
        append = chunk.append
        for _ in range(hops):
            append((order[position] * node_bytes, False))
            position = (position + 1) % nodes
            if len(chunk) >= chunk_accesses:
                yield chunk
                chunk = []
                append = chunk.append
        if chunk:
            yield chunk

    return AccessChunks(produce())


def stencil_chunks(
    grid_bytes: int,
    sweeps: int = 1,
    row_bytes: int = 4096,
    rng: DeterministicRng | None = None,
    chunk_accesses: int = CHUNK_ACCESSES,
) -> AccessChunks:
    """Scientific stencil: read three neighbouring rows, write the centre."""

    def produce() -> Iterator[list[tuple[int, bool]]]:
        if grid_bytes < 3 * row_bytes:
            raise ConfigurationError("grid needs at least three rows")
        rows = grid_bytes // row_bytes
        chunk: list[tuple[int, bool]] = []
        append = chunk.append
        for _ in range(sweeps):
            for row in range(1, rows - 1):
                above = (row - 1) * row_bytes
                below = (row + 1) * row_bytes
                centre = row * row_bytes
                for column in range(0, row_bytes, 64):
                    append((above + column, False))
                    append((below + column, False))
                    append((centre + column, True))
                if len(chunk) >= chunk_accesses:
                    yield chunk
                    chunk = []
                    append = chunk.append
        if chunk:
            yield chunk

    return AccessChunks(produce())


def sequential_scan(
    array_bytes: int, passes: int = 1, stride: int = 8, write_fraction: float = 0.0,
    rng: DeterministicRng | None = None,
) -> Iterator[tuple[int, bool]]:
    """Per-access view of :func:`sequential_scan_chunks` (same stream)."""
    return sequential_scan_chunks(
        array_bytes, passes, stride, write_fraction, rng
    ).flatten()


def random_lookup(
    table_bytes: int,
    lookups: int,
    record_bytes: int = 64,
    rng: DeterministicRng | None = None,
) -> Iterator[tuple[int, bool]]:
    """Per-access view of :func:`random_lookup_chunks` (same stream)."""
    return random_lookup_chunks(table_bytes, lookups, record_bytes, rng).flatten()


def pointer_chase(
    pool_bytes: int,
    hops: int,
    node_bytes: int = 64,
    rng: DeterministicRng | None = None,
) -> Iterator[tuple[int, bool]]:
    """Per-access view of :func:`pointer_chase_chunks` (same stream)."""
    return pointer_chase_chunks(pool_bytes, hops, node_bytes, rng).flatten()


def stencil(
    grid_bytes: int,
    sweeps: int = 1,
    row_bytes: int = 4096,
    rng: DeterministicRng | None = None,
) -> Iterator[tuple[int, bool]]:
    """Per-access view of :func:`stencil_chunks` (same stream)."""
    return stencil_chunks(grid_bytes, sweeps, row_bytes, rng).flatten()


#: Registry of chunk-kernel factories by name.  The persistent trace cache
#: (:mod:`repro.experiments.trace_cache`) keys cached front-end runs on
#: these names plus their keyword parameters.
KERNELS = {
    "sequential_scan": sequential_scan_chunks,
    "random_lookup": random_lookup_chunks,
    "pointer_chase": pointer_chase_chunks,
    "stencil": stencil_chunks,
}


def trace_through_hierarchy(
    stream: AccessStream | AccessChunks,
    config: HierarchyConfig | None = None,
    gap_ns: float = 2.0,
    core_id: int = 0,
    name: str = "kernel",
    reference: bool = False,
    chunk_accesses: int = CHUNK_ACCESSES,
) -> tuple[Trace, CacheHierarchy]:
    """Filter a kernel's accesses through the cache hierarchy.

    Returns the LLC-level trace (misses + write-backs, ready for
    :func:`repro.system.run_trace`) and the hierarchy, whose statistics
    report hit rates and MPKI.

    ``stream`` may be an :class:`AccessChunks` (consumed chunk-at-a-time
    on the batched fast path) or any iterable of ``(address, is_write)``
    pairs (regrouped into ``chunk_accesses``-sized batches first).  With
    ``reference=True`` the accesses instead run one-by-one through the
    preserved original implementation
    (:class:`repro.mem.reference.ReferenceCacheHierarchy`, returned in
    place of the fast hierarchy) — slow, but the behavioural oracle the
    equivalence tests compare against.
    """
    if reference:
        return _trace_through_reference(stream, config, gap_ns, core_id, name)
    hierarchy = CacheHierarchy(config or HierarchyConfig(), StatRegistry())
    traffic: list[tuple[int, bool]] = []
    accesses = 0
    with profiling.phase("hierarchy_filtering"):
        access_batch = hierarchy.access_batch
        if isinstance(stream, AccessChunks):
            for chunk in stream:
                access_batch(core_id, chunk, traffic)
                accesses += len(chunk)
        else:
            iterator = iter(stream)
            while True:
                chunk = list(islice(iterator, chunk_accesses))
                if not chunk:
                    break
                access_batch(core_id, chunk, traffic)
                accesses += len(chunk)
    hierarchy.instructions = accesses  # one memory instruction per access
    if not traffic:
        raise ConfigurationError(
            f"kernel {name!r} produced no memory traffic (fits in cache); "
            "enlarge the working set"
        )
    records = [
        TraceRecord(gap_ns=gap_ns, address=address, is_write=is_write)
        for address, is_write in traffic
    ]
    return Trace(name=name, records=records), hierarchy


def _trace_through_reference(
    stream: AccessStream | AccessChunks,
    config: HierarchyConfig | None,
    gap_ns: float,
    core_id: int,
    name: str,
) -> tuple[Trace, ReferenceCacheHierarchy]:
    """The original per-access loop over the reference hierarchy."""
    hierarchy = ReferenceCacheHierarchy(config or HierarchyConfig(), StatRegistry())
    pairs = stream.flatten() if isinstance(stream, AccessChunks) else stream
    records = []
    accesses = 0
    with profiling.phase("hierarchy_filtering"):
        for address, is_write in pairs:
            accesses += 1
            result = hierarchy.access(core_id, address, is_write)
            for request in result.memory_requests:
                records.append(
                    TraceRecord(
                        gap_ns=gap_ns,
                        address=request.address,
                        is_write=request.is_write,
                    )
                )
    hierarchy.instructions = accesses
    if not records:
        raise ConfigurationError(
            f"kernel {name!r} produced no memory traffic (fits in cache); "
            "enlarge the working set"
        )
    return Trace(name=name, records=records), hierarchy
