"""Application kernels: CPU-level address streams for the full-stack path.

The SPEC profiles drive the memory-level experiments; these kernels drive
the *whole* machine — loads and stores that flow through the cache
hierarchy before any memory traffic exists.  They model the workload
archetypes the paper's introduction motivates (sensitive database lookups,
graph traversal, bulk analytics), and double as workload generators for
users adopting the library outside the SPEC reproduction.

Each kernel yields ``(address, is_write)`` pairs.  :func:`trace_through_hierarchy`
runs any kernel through a :class:`~repro.mem.hierarchy.CacheHierarchy` and
returns the resulting LLC-level :class:`~repro.cpu.trace.Trace`, ready for
any protection level.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.cpu.trace import Trace, TraceRecord
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig
from repro.sim.statistics import StatRegistry

AccessStream = Iterable[tuple[int, bool]]


def sequential_scan(
    array_bytes: int, passes: int = 1, stride: int = 8, write_fraction: float = 0.0,
    rng: DeterministicRng | None = None,
) -> Iterator[tuple[int, bool]]:
    """Bulk analytics: stream over a large array, optionally updating it."""
    if array_bytes <= 0 or stride <= 0:
        raise ConfigurationError("array and stride must be positive")
    rng = rng or DeterministicRng(0)
    for _ in range(passes):
        for address in range(0, array_bytes, stride):
            yield address, rng.random() < write_fraction


def random_lookup(
    table_bytes: int,
    lookups: int,
    record_bytes: int = 64,
    rng: DeterministicRng | None = None,
) -> Iterator[tuple[int, bool]]:
    """Key-value / database index probes: uniform reads of whole records."""
    if table_bytes < record_bytes:
        raise ConfigurationError("table smaller than one record")
    rng = rng or DeterministicRng(1)
    records = table_bytes // record_bytes
    for _ in range(lookups):
        base = rng.randrange(records) * record_bytes
        for offset in range(0, record_bytes, 8):
            yield base + offset, False


def pointer_chase(
    pool_bytes: int,
    hops: int,
    node_bytes: int = 64,
    rng: DeterministicRng | None = None,
) -> Iterator[tuple[int, bool]]:
    """Graph/linked-structure traversal: each hop depends on the last.

    The chain is a random permutation cycle so every node is visited
    before any repeats — the worst case for caches and the classic
    access-pattern-leak workload (the attacker literally sees the pointer
    graph on an unprotected bus).
    """
    if pool_bytes < node_bytes:
        raise ConfigurationError("pool smaller than one node")
    rng = rng or DeterministicRng(2)
    nodes = pool_bytes // node_bytes
    order = list(range(nodes))
    rng.shuffle(order)
    position = 0
    for _ in range(hops):
        yield order[position] * node_bytes, False
        position = (position + 1) % nodes


def stencil(
    grid_bytes: int,
    sweeps: int = 1,
    row_bytes: int = 4096,
    rng: DeterministicRng | None = None,
) -> Iterator[tuple[int, bool]]:
    """Scientific stencil: read three neighbouring rows, write the centre."""
    if grid_bytes < 3 * row_bytes:
        raise ConfigurationError("grid needs at least three rows")
    rows = grid_bytes // row_bytes
    for _ in range(sweeps):
        for row in range(1, rows - 1):
            for column in range(0, row_bytes, 64):
                yield (row - 1) * row_bytes + column, False
                yield (row + 1) * row_bytes + column, False
                yield row * row_bytes + column, True


def trace_through_hierarchy(
    stream: AccessStream,
    config: HierarchyConfig | None = None,
    gap_ns: float = 2.0,
    core_id: int = 0,
    name: str = "kernel",
) -> tuple[Trace, CacheHierarchy]:
    """Filter a kernel's accesses through the cache hierarchy.

    Returns the LLC-level trace (misses + write-backs, ready for
    :func:`repro.system.run_trace`) and the hierarchy, whose statistics
    report hit rates and MPKI.
    """
    hierarchy = CacheHierarchy(config or HierarchyConfig(), StatRegistry())
    records = []
    accesses = 0
    for address, is_write in stream:
        accesses += 1
        result = hierarchy.access(core_id, address, is_write)
        for request in result.memory_requests:
            records.append(
                TraceRecord(gap_ns=gap_ns, address=request.address, is_write=request.is_write)
            )
    hierarchy.instructions = accesses  # one memory instruction per access
    if not records:
        raise ConfigurationError(
            f"kernel {name!r} produced no memory traffic (fits in cache); "
            "enlarge the working set"
        )
    return Trace(name=name, records=records), hierarchy
