"""Attack harness: the passive and active attacks of §3.2/§3.5/§6.1.

Passive attacks run against recorded bus transfers; active attacks wire an
interceptor into the functional ObfusMem stack and check that every
tampering scenario the paper walks through is detected (or, for the ECB
strawman, that the attack *succeeds*, demonstrating why counter mode is
required).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.config import AuthMode
from repro.core.functional import FunctionalObfusMem
from repro.crypto.aes import AES128
from repro.crypto.rng import DeterministicRng
from repro.errors import IntegrityError
from repro.mem.bus import BusTransfer, TransferKind


# ---------------------------------------------------------------------------
# Passive: dictionary / frequency analysis (§3.2's argument against ECB)
# ---------------------------------------------------------------------------


class EcbAddressObfuscation:
    """The ECB strawman of §3.2: ``Y = E_Key(X)`` per address.

    Deterministic, so spatial locality across blocks is hidden but temporal
    reuse, footprint and access frequencies all leak.  Exists solely so the
    dictionary attack below has a demonstrable victim.
    """

    def __init__(self, key: bytes):
        self._cipher = AES128(key)

    def encrypt_address(self, address: int) -> bytes:
        """Deterministically encrypt one address (the ECB weakness)."""
        return self._cipher.encrypt_block(address.to_bytes(16, "big"))


@dataclass(frozen=True)
class DictionaryAttackResult:
    """Outcome of frequency matching between plaintext and wire streams."""

    correct_matches: int
    candidates: int

    @property
    def accuracy(self) -> float:
        return self.correct_matches / self.candidates if self.candidates else 0.0


def dictionary_attack(
    plaintext_addresses: list[int], wire_encodings: list[bytes], top_k: int = 8
) -> DictionaryAttackResult:
    """Match the ``top_k`` most frequent wire encodings to the most frequent
    plaintext addresses by rank (the classic frequency-analysis attack).

    Deterministic encryption (ECB) preserves frequency ranks, so the attack
    recovers the hot addresses; counter-mode wire encodings are all unique
    and the attack degenerates to guessing.
    """
    plain_ranks = [address for address, _ in Counter(plaintext_addresses).most_common(top_k)]
    wire_ranks = [encoding for encoding, _ in Counter(wire_encodings).most_common(top_k)]
    pairs = list(zip(plain_ranks, wire_ranks))
    if not pairs:
        return DictionaryAttackResult(0, 0)
    # Score against the true mapping: an encoding matches if it is the
    # encryption the rank-paired address actually produced somewhere.
    truth: dict[bytes, set[int]] = {}
    for address, encoding in zip(plaintext_addresses, wire_encodings):
        truth.setdefault(encoding, set()).add(address)
    correct = sum(1 for address, encoding in pairs if address in truth.get(encoding, set()))
    return DictionaryAttackResult(correct, len(pairs))


# ---------------------------------------------------------------------------
# Active attacks on the functional stack (§3.5 scenarios)
# ---------------------------------------------------------------------------


@dataclass
class ActiveAttackOutcome:
    """What happened when an active attack ran against the channel."""

    detected: bool
    error: str | None


class _ScriptedInterceptor:
    """Tamper with the nth wire message of a given kind."""

    def __init__(self, kind: str, occurrence: int, mutate):
        self.kind = kind
        self.occurrence = occurrence
        self.mutate = mutate
        self._seen = 0
        self.recorded: list[bytes] = []

    def __call__(self, kind: str, direction: str, payload: bytes) -> bytes | None:
        self.recorded.append(payload)
        if kind == self.kind:
            self._seen += 1
            if self._seen == self.occurrence:
                return self.mutate(payload)
        return payload


def _run_attack(auth: AuthMode, interceptor, operations) -> ActiveAttackOutcome:
    rng = DeterministicRng(99)
    stack = FunctionalObfusMem(
        session_key=rng.fork("sk").token_bytes(16),
        memory_key=rng.fork("mk").token_bytes(16),
        rng=rng,
        auth=auth,
        interceptor=interceptor,
    )
    try:
        operations(stack)
    except IntegrityError as error:
        return ActiveAttackOutcome(detected=True, error=str(error))
    return ActiveAttackOutcome(detected=False, error=None)


def _default_operations(stack: FunctionalObfusMem) -> None:
    stack.write(0x4000, bytes(range(64)))
    stack.read(0x4000)
    stack.write(0x8000, bytes(reversed(range(64))))
    stack.read(0x8000)


def command_bitflip_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Flip one bit of an encrypted command in flight (M -> M').

    §3.5: the memory decrypts a wrong (r', a) or (r, a'), the recomputed
    MAC mismatches, and tampering is detected.
    """

    def flip(payload: bytes) -> bytes:
        return bytes([payload[0] ^ 0x40]) + payload[1:]

    return _run_attack(auth, _ScriptedInterceptor("command", 2, flip), _default_operations)


def message_drop_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Delete a request from the bus.

    §3.5: processor and memory counters desynchronize; no further
    meaningful communication is possible and detection follows.
    """

    def drop(payload: bytes) -> bytes | None:
        return None

    return _run_attack(auth, _ScriptedInterceptor("command", 2, drop), _default_operations)


def replay_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Replace a command with a previously captured valid command.

    §3.5: the memory verifies with its *fresh* counter, while the captured
    message reflects a stale one — the MAC mismatches.
    """
    state: dict[str, bytes] = {}

    class Replayer:
        def __call__(self, kind: str, direction: str, payload: bytes) -> bytes:
            if kind != "command":
                return payload
            if "captured" not in state:
                state["captured"] = payload
                return payload
            if "replayed" not in state:
                state["replayed"] = payload
                return state["captured"]
            return payload

    return _run_attack(auth, Replayer(), _default_operations)


def data_tamper_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Flip bits in a *data* burst (not the command).

    Observation 4: with encrypt-and-MAC the tag covers (r|a|c) only, so
    data tampering passes the bus check — it is caught later by the Merkle
    tree when the block is read back.  Expected: NOT detected at bus level.
    """

    def flip(payload: bytes) -> bytes:
        return bytes([payload[0] ^ 0xFF]) + payload[1:]

    return _run_attack(auth, _ScriptedInterceptor("data", 1, flip), _default_operations)


def injection_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Substitute a fabricated random command for a legitimate one.

    The attacker cannot construct ciphertext that decrypts meaningfully
    under the session pad; decode or MAC verification fails.
    """
    rng = DeterministicRng(123456)

    def fabricate(payload: bytes) -> bytes:
        return rng.token_bytes(len(payload))

    return _run_attack(auth, _ScriptedInterceptor("command", 3, fabricate), _default_operations)


# ---------------------------------------------------------------------------
# Passive helper reused by experiments
# ---------------------------------------------------------------------------


def command_wire_encodings(transfers: list[BusTransfer]) -> list[bytes]:
    """Extract command wire bytes from a transfer list."""
    return [t.wire_bytes for t in transfers if t.kind is TransferKind.COMMAND]
