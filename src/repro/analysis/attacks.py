"""Backward-compatibility shim: the attack harnesses moved to ``repro.attacks``.

The §3.2 dictionary attack now lives in :mod:`repro.attacks.dictionary`
and the §3.5 active-tampering scenarios in :mod:`repro.attacks.tamper`,
where they are registered as first-class attackers and run in the
scheme×attack leakage matrix (:mod:`repro.experiments.matrix`).  This
module re-exports the original public names so existing imports keep
working; new code should import from :mod:`repro.attacks` directly.
"""

from __future__ import annotations

from repro.attacks.dictionary import (
    DictionaryAttackResult,
    EcbAddressObfuscation,
    command_wire_encodings,
    dictionary_attack,
)
from repro.attacks.tamper import (
    ActiveAttackOutcome,
    address_flip_attack,
    command_bitflip_attack,
    data_tamper_attack,
    injection_attack,
    message_drop_attack,
    replay_attack,
)

__all__ = [
    "ActiveAttackOutcome",
    "DictionaryAttackResult",
    "EcbAddressObfuscation",
    "address_flip_attack",
    "command_bitflip_attack",
    "command_wire_encodings",
    "data_tamper_attack",
    "dictionary_attack",
    "injection_attack",
    "message_drop_attack",
    "replay_attack",
]
