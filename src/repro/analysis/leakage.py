"""Leakage metrics computed from wire-level bus observations.

Every metric here consumes only what a physical bus snooper can see —
:meth:`BusTransfer.attacker_view` — and is scored against the ground-truth
annotations the simulator carries.  Together they quantify the four aspects
of the access pattern §3.2 says must be obfuscated (spatial, temporal, type,
footprint) plus the inter-channel pattern of §3.4, producing the measured
rows of Table 4.

:func:`expected_leakage` is the model's declarative side: it derives, from
a protection scheme's stage traits alone, what these metrics *should*
report — so the leakage suite compares measurement against the scheme
registry's metadata instead of isinstance checks on live components.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.mem.bus import BusTransfer, Direction, TransferKind
from repro.schemes.registry import ProtectionScheme, resolve_scheme
from repro.schemes.stages import (
    TRAIT_CHANNEL_COVER,
    TRAIT_CIPHERTEXT_WIRE,
    TRAIT_OPAQUE_BACKEND,
    TRAIT_PAIRED_TYPES,
    TRAIT_PERMUTED_ADDRESSES,
    TRAIT_REBUILD_BURSTS,
)

# The publicly known unprotected wire format: type byte + 8-byte address.
_UNPROTECTED_ADDRESS_SLICE = slice(1, 9)


def _commands(transfers: list[BusTransfer]) -> list[BusTransfer]:
    return [t for t in transfers if t.kind is TransferKind.COMMAND]


def wire_address(transfer: BusTransfer) -> int:
    """Interpret a command's wire bytes with the unprotected layout.

    An attacker always *can* do this; whether the result means anything is
    exactly what the metrics below measure.
    """
    return int.from_bytes(transfer.wire_bytes[_UNPROTECTED_ADDRESS_SLICE], "big")


# ---------------------------------------------------------------------------
# Temporal pattern
# ---------------------------------------------------------------------------


def ciphertext_repeat_fraction(transfers: list[BusTransfer]) -> float:
    """Fraction of command transfers whose wire bytes repeat an earlier one.

    On an unprotected bus a repeated address produces identical wire bytes,
    so this equals the temporal-reuse rate; under counter-mode obfuscation
    it collapses to ~0 (pads never repeat).
    """
    commands = _commands(transfers)
    if not commands:
        return 0.0
    counts = Counter(t.wire_bytes for t in commands)
    repeats = sum(count - 1 for count in counts.values())
    return repeats / len(commands)


# ---------------------------------------------------------------------------
# Spatial pattern
# ---------------------------------------------------------------------------


def chunk_locality_score(
    transfers: list[BusTransfer], chunk_bytes: int = 64 << 10
) -> float:
    """Fraction of consecutive wire-decoded addresses in the *same chunk*.

    Chunk-permutation schemes (HIDE et al., §7) shuffle addresses within a
    chunk but cannot hide which chunk is accessed: a streaming workload
    still shows long same-chunk runs at this granularity, while ObfusMem's
    encrypted addresses land in random chunks.
    """
    commands = _commands(transfers)
    if len(commands) < 2:
        return 0.0
    same_chunk = 0
    for previous, current in zip(commands, commands[1:]):
        if wire_address(previous) // chunk_bytes == wire_address(current) // chunk_bytes:
            same_chunk += 1
    return same_chunk / (len(commands) - 1)


def spatial_locality_score(transfers: list[BusTransfer], window_bytes: int = 4096) -> float:
    """Fraction of consecutive wire-decoded addresses within ``window_bytes``.

    Streaming workloads on an unprotected bus show strong consecutive
    proximity; ciphertext addresses look uniform, so the score drops to the
    random-chance level (~window / address-space).
    """
    commands = _commands(transfers)
    if len(commands) < 2:
        return 0.0
    close_pairs = 0
    for previous, current in zip(commands, commands[1:]):
        if abs(wire_address(current) - wire_address(previous)) <= window_bytes:
            close_pairs += 1
    return close_pairs / (len(commands) - 1)


# ---------------------------------------------------------------------------
# Footprint
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FootprintLeak:
    observed_unique: int  # distinct wire addresses the attacker counts
    true_unique: int  # ground truth distinct real blocks
    total_commands: int

    @property
    def relative_error(self) -> float:
        """How wrong the attacker's footprint estimate is (0 = exact).

        With no real blocks to estimate (an empty or all-dummy capture) any
        non-zero estimate is infinitely wrong, not exact.
        """
        if self.true_unique == 0:
            return 0.0 if self.observed_unique == 0 else math.inf
        return abs(self.observed_unique - self.true_unique) / self.true_unique


def footprint_leak(transfers: list[BusTransfer]) -> FootprintLeak:
    """Attacker's footprint estimate vs the truth.

    Unprotected: distinct wire addresses == distinct blocks (exact leak).
    Obfuscated: every command looks fresh, so the estimate degenerates to
    the number of accesses (§6.1: M is only bounded by 1 <= M <= n).
    """
    commands = _commands(transfers)
    observed = len({t.wire_bytes for t in commands})
    true_unique = len(
        {
            t.plaintext_address
            for t in commands
            if not t.is_dummy and t.plaintext_address is not None
        }
    )
    return FootprintLeak(observed, true_unique, len(commands))


# ---------------------------------------------------------------------------
# Request type
# ---------------------------------------------------------------------------


def type_inference_accuracy(
    transfers: list[BusTransfer], pair_window_ps: int = 2_000_000
) -> float:
    """Expected accuracy of an attacker guessing each real access's type.

    On an unprotected bus every command *is* a real access and its type is
    plainly encoded, so the attacker scores 1.0.  Under ObfusMem's pairing
    discipline each real access travels with an opposite-type companion the
    attacker cannot distinguish from it (dummies are ciphertext like
    everything else), so the attacker is reduced to picking one of the two
    — expected accuracy 0.5 (§3.3).

    The metric detects whether a pairing discipline is in effect from the
    ground-truth dummy annotations (evaluation-side knowledge an attacker
    does not have): if the wire carries no dummies at all, types are taken
    at face value.
    """
    commands = _commands(transfers)
    real = [t for t in commands if not t.is_dummy]
    if not real:
        return 0.0
    pairing_in_effect = any(t.is_dummy for t in commands)
    if not pairing_in_effect:
        return 1.0
    credit = 0.0
    for transfer in real:
        paired = any(
            other is not transfer
            and other.channel == transfer.channel
            and abs(other.time_ps - transfer.time_ps) <= pair_window_ps
            and other.plaintext_is_write != transfer.plaintext_is_write
            for other in commands
        )
        credit += 0.5 if paired else 1.0
    return credit / len(real)


def observed_write_share(transfers: list[BusTransfer]) -> float:
    """Share of to-memory data bursts among all data bursts.

    ObfusMem pushes this to ~0.5 regardless of the workload's true mix.
    """
    data = [t for t in transfers if t.kind is TransferKind.DATA]
    if not data:
        return 0.0
    to_memory = sum(1 for t in data if t.direction is Direction.TO_MEMORY)
    return to_memory / len(data)


# ---------------------------------------------------------------------------
# Inter-channel pattern (§3.4)
# ---------------------------------------------------------------------------


def channel_entropy(transfers: list[BusTransfer], num_channels: int) -> float:
    """Normalized entropy of per-channel command counts (1.0 = uniform).

    Commands tagged with a channel outside ``range(num_channels)`` are
    ignored — scoring them against a distribution they cannot belong to
    would let the normalized entropy drift outside ``[0, 1]``.
    """
    commands = _commands(transfers)
    if not commands or num_channels < 2:
        return 1.0
    counts = Counter(t.channel for t in commands if 0 <= t.channel < num_channels)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for channel in range(num_channels):
        p = counts.get(channel, 0) / total
        if p > 0:
            entropy -= p * math.log2(p)
    return entropy / math.log2(num_channels)


def timing_regularity(
    transfers: list[BusTransfer], channel: int = 0, cluster_gap_ps: int = 20_000
) -> float:
    """Coefficient of variation of inter-*slot* arrival times.

    A timing side-channel observer correlates request timing with program
    behaviour (§6.2).  Commands closer together than ``cluster_gap_ps``
    (a read-then-write pair, a back-to-back burst) are collapsed into one
    slot; the metric is the CV of inter-slot gaps.  Regular traffic — the
    timing-oblivious shaper's fixed epochs — drives this toward 0; bursty
    demand traffic scores ~1 or higher.  Returns 0.0 with fewer than three
    slots.
    """
    times = sorted(
        t.time_ps
        for t in transfers
        if t.kind is TransferKind.COMMAND and t.channel == channel
    )
    slots: list[int] = []
    for time in times:
        if not slots or time - slots[-1] > cluster_gap_ps:
            slots.append(time)
    if len(slots) < 3:
        return 0.0
    intervals = [b - a for a, b in zip(slots, slots[1:])]
    mean = sum(intervals) / len(intervals)
    if mean == 0:
        return 0.0
    variance = sum((x - mean) ** 2 for x in intervals) / len(intervals)
    return (variance**0.5) / mean


def channel_coactivity(
    transfers: list[BusTransfer],
    num_channels: int,
    window_ps: int = 150_000,
) -> float:
    """Fraction of real accesses during which *every* channel shows traffic.

    Observation 3: if all channels are active whenever any is, the spatial
    pattern across channels is hidden.  The window is one memory-service
    time (~150 ns): injected dummies land simultaneously with the real
    access, while unprotected traffic visits one channel at a time.
    NONE-injection systems score near the accidental co-activity rate;
    OPT/UNOPT score near 1.
    """
    if num_channels < 2:
        return 1.0
    commands = sorted(_commands(transfers), key=lambda t: t.time_ps)
    real = [t for t in commands if not t.is_dummy]
    if not real:
        return 0.0
    covered = 0
    for transfer in real:
        nearby_channels = {
            other.channel
            for other in commands
            if abs(other.time_ps - transfer.time_ps) <= window_ps
        }
        if len(nearby_channels) == num_channels:
            covered += 1
    return covered / len(real)


# ---------------------------------------------------------------------------
# Declarative expectations from scheme traits
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExpectedLeakage:
    """What the wire metrics should report for a given protection scheme.

    Each field mirrors one measurement above; ``type_accuracy`` is the
    expected attacker score (1.0 = types plainly visible, 0.5 = reduced to
    a coin flip by the pairing discipline).
    """

    wire_observable: bool  # the backend has a physical bus at all
    spatial_hidden: bool  # block-grain locality invisible on the wire
    chunk_hidden: bool  # chunk-grain locality invisible too
    temporal_hidden: bool  # wire bytes never repeat
    footprint_hidden: bool  # distinct-address count degenerates
    type_accuracy: float
    channels_covered: bool  # co-activity driven toward 1 (§3.4)
    #: Amortized maintenance arrives in periodic bursts a §6.2-style timing
    #: observer can count even without a wire (Ring evictions, Pyramid
    #: rebuilds).  Serial per-access designs and real wires score False.
    timing_bursts: bool = False


@dataclass(frozen=True)
class LeakageSurface:
    """A scheme's exposure to a battery of attackers, from traits alone.

    The sweep engine's Pareto axis: the fraction of a given adversary
    battery whose trait-derived prediction (:meth:`Attacker.expects_leak`)
    says the scheme leaks.  0.0 means no attacker in the battery is
    expected to clear its leak threshold; 1.0 means all are.
    """

    scheme: str
    #: Names of the attackers expected to succeed against this scheme.
    leaky_attacks: tuple[str, ...]
    #: Size of the battery the surface was scored against.
    attacks_total: int

    @property
    def score(self) -> float:
        """Expected leaky fraction of the battery (0.0 watertight, 1.0 open)."""
        if self.attacks_total == 0:
            return 0.0
        return len(self.leaky_attacks) / self.attacks_total


def leakage_surface(
    scheme: ProtectionScheme | object, attackers
) -> LeakageSurface:
    """Score a scheme's expected leakage against an attacker battery.

    ``attackers`` is any iterable of objects with a ``name`` and an
    ``expects_leak(ExpectedLeakage) -> bool`` — duck-typed so this module
    never imports :mod:`repro.attacks` (the dependency points the other
    way).  Pass :func:`repro.attacks.available_attackers()` for the full
    registered battery.
    """
    resolved = resolve_scheme(scheme)
    expected = expected_leakage(resolved)
    battery = list(attackers)
    leaky = tuple(a.name for a in battery if a.expects_leak(expected))
    return LeakageSurface(
        scheme=resolved.name, leaky_attacks=leaky, attacks_total=len(battery)
    )


def expected_leakage(
    scheme: ProtectionScheme | object,
) -> ExpectedLeakage:
    """Derive the expected metric outcomes from a scheme's stage traits.

    Accepts anything :func:`repro.schemes.resolve_scheme` accepts.  The
    derivation reads only the declarative ``TRAIT_*`` flags — no isinstance
    checks against live components — so a newly registered hybrid gets its
    leakage expectations for free:

    * an opaque backend (any ORAM timing model) has no wire, so every
      access-pattern aspect is hidden by construction and type inference
      degenerates to the 0.5 coin flip; backends with bursty amortized
      maintenance (Ring evictions, Pyramid rebuilds) still expose a
      countable timing cadence, flagged as ``timing_bursts``;
    * a ciphertext wire hides spatial (both grains), temporal and
      footprint aspects at once;
    * plaintext-but-permuted addresses (HIDE) hide only block-grain
      locality: the chunk-grain pattern and everything else stay visible;
    * the pairing discipline alone determines the expected type-inference
      accuracy, and channel cover alone the co-activity expectation.

    ``TRAIT_DATA_ENCRYPTED`` is deliberately absent here: encryption at
    rest protects content, not the access pattern these metrics score.
    """
    traits = resolve_scheme(scheme).traits
    if TRAIT_OPAQUE_BACKEND in traits:
        return ExpectedLeakage(
            wire_observable=False,
            spatial_hidden=True,
            chunk_hidden=True,
            temporal_hidden=True,
            footprint_hidden=True,
            type_accuracy=0.5,
            channels_covered=False,
            timing_bursts=TRAIT_REBUILD_BURSTS in traits,
        )
    ciphertext = TRAIT_CIPHERTEXT_WIRE in traits
    permuted = TRAIT_PERMUTED_ADDRESSES in traits
    return ExpectedLeakage(
        wire_observable=True,
        spatial_hidden=ciphertext or permuted,
        chunk_hidden=ciphertext,
        temporal_hidden=ciphertext,
        footprint_hidden=ciphertext,
        type_accuracy=0.5 if TRAIT_PAIRED_TYPES in traits else 1.0,
        channels_covered=TRAIT_CHANNEL_COVER in traits,
    )
