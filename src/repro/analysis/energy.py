"""Energy, pad-count and lifetime model of §5.2.

Two layers:

* the paper's *analytical* model (closed-form factors from L, Z, the PCM
  write:read energy ratio and channel count), reproduced exactly so the
  headline numbers — ORAM ~780x read energy vs ObfusMem 3.9x, a ~200x PCM
  energy reduction, ~100x lifetime improvement, 800 vs 64/16 pads — fall
  out of the formulas;
* a *measured* variant that pulls the same quantities from simulation
  statistics (pads consumed, PCM cell writes, dummy drops), so the analysis
  can be checked against what the simulator actually did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.dram_timing import PcmEnergy
from repro.oram.backend import DEFAULT_BUCKET_SIZE, DEFAULT_LEVELS

PCM_WRITE_TO_READ_ENERGY = 6.8  # Lee et al. ratio used in §5.2


def measured_energy_pj(
    stats: dict[str, float], energy: PcmEnergy | None = None
) -> float:
    """Total memory energy (pJ) one run spent, from its statistics.

    Wire-level schemes run through the PCM model, which accumulates
    ``*.energy_pj`` counters directly.  Opaque ORAM backends bypass the
    PCM simulation entirely, so their energy is reconstructed from the
    block traffic the backend reports (``oram.blocks_read`` /
    ``oram.blocks_written``) priced at the same PCM array energies — the
    §5.2 accounting, applied to measured rather than analytical counts.
    """
    direct = sum(value for key, value in stats.items() if key.endswith("energy_pj"))
    if direct > 0:
        return direct
    model = energy or PcmEnergy()
    return (
        stats.get("oram.blocks_read", 0.0) * model.array_read_pj
        + stats.get("oram.blocks_written", 0.0) * model.array_write_pj
    )


@dataclass(frozen=True)
class EnergyComparison:
    """The §5.2 quantities for one configuration."""

    oram_energy_factor: float  # memory energy per access, in read-energy units
    obfusmem_energy_factor: float
    pcm_energy_reduction: float  # ORAM / ObfusMem
    oram_pads_per_access: int
    obfusmem_pads_worst_case: int  # all other channels idle (full injection)
    obfusmem_pads_best_case: int  # all other channels busy (no injection)
    pad_reduction_worst_case: float
    pad_reduction_best_case: float
    lifetime_improvement: float  # cell writes per access, ORAM / ObfusMem


def analytical_comparison(
    levels: int = DEFAULT_LEVELS,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    write_read_ratio: float = PCM_WRITE_TO_READ_ENERGY,
    channels: int = 4,
    read_write_split: float = 0.5,
) -> EnergyComparison:
    """Reproduce §5.2's arithmetic with its stated assumptions."""
    path_blocks = (levels + 1) * bucket_size  # ~100 for L=24, Z=4
    # ORAM: every access reads a path and writes it back.
    oram_energy = (1.0 + write_read_ratio) * path_blocks
    # ObfusMem: a real access is one read or one write; with a
    # ``read_write_split`` mix the expected energy per access is the mean.
    obfus_energy = read_write_split * 1.0 + (1.0 - read_write_split) * write_read_ratio
    # Pads: ORAM decrypts and re-encrypts the full path, 4 pads per 64B
    # block each way.  ObfusMem: 16 pads per active channel (10 processor +
    # 6 memory side); the worst case injects on every idle channel.
    oram_pads = 2 * path_blocks * 4
    obfus_worst = 16 * channels
    obfus_best = 16
    return EnergyComparison(
        oram_energy_factor=oram_energy,
        obfusmem_energy_factor=obfus_energy,
        pcm_energy_reduction=oram_energy / obfus_energy,
        oram_pads_per_access=oram_pads,
        obfusmem_pads_worst_case=obfus_worst,
        obfusmem_pads_best_case=obfus_best,
        pad_reduction_worst_case=oram_pads / obfus_worst,
        pad_reduction_best_case=oram_pads / obfus_best,
        lifetime_improvement=float(path_blocks),
    )


@dataclass(frozen=True)
class MeasuredEnergy:
    """Simulation-measured counterparts for one benchmark run."""

    benchmark: str
    accesses: int
    pads_total: int
    pads_per_access: float
    cell_writes: int  # PCM array (cell) block-writes actually performed
    cell_writes_per_access: float
    dummy_writes_dropped: int  # writes ObfusMem avoided by dropping


def measure_obfusmem(stats: dict[str, float], benchmark: str) -> MeasuredEnergy:
    """Extract the §5.2 quantities from an ObfusMem run's statistics."""
    accesses = int(stats.get("obfusmem.requests_protected", 0))
    pads = int(stats.get("obfusmem.pads_total", 0))
    cell_writes = int(
        sum(value for key, value in stats.items() if key.endswith(".array_writes"))
    )
    dropped = int(
        sum(value for key, value in stats.items() if key.endswith(".dummy_writes_dropped"))
    )
    return MeasuredEnergy(
        benchmark=benchmark,
        accesses=accesses,
        pads_total=pads,
        pads_per_access=pads / accesses if accesses else 0.0,
        cell_writes=cell_writes,
        cell_writes_per_access=cell_writes / accesses if accesses else 0.0,
        dummy_writes_dropped=dropped,
    )


def measure_oram(stats: dict[str, float], benchmark: str) -> MeasuredEnergy:
    """Extract the same quantities from an ORAM run's statistics."""
    accesses = int(stats.get("oram.accesses", 0))
    cell_writes = int(stats.get("oram.cell_block_writes", 0))
    blocks_moved = stats.get("oram.blocks_read", 0) + stats.get("oram.blocks_written", 0)
    return MeasuredEnergy(
        benchmark=benchmark,
        accesses=accesses,
        pads_total=int(blocks_moved * 4),  # 4 pads per 64B block moved
        pads_per_access=(blocks_moved * 4) / accesses if accesses else 0.0,
        cell_writes=cell_writes,
        cell_writes_per_access=cell_writes / accesses if accesses else 0.0,
        dummy_writes_dropped=0,
    )
