"""PCM lifetime projection from simulated wear.

Turns the simulator's wear statistics (cell writes per row, execution time)
into the quantity a system designer actually cares about: *years until the
hottest row exhausts its write endurance*.  Used by the NVM lifetime
example and the §5.2 experiment to make "ObfusMem does not cause early
wear-out" concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

# "A few hundred million writes" per PCM cell (paper §2.3); we use the
# conservative end as the default.
DEFAULT_CELL_ENDURANCE = 10**8
SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class LifetimeProjection:
    """Projected endurance-limited lifetime of one memory device."""

    hottest_row_writes_per_second: float
    cell_endurance: int
    lifetime_years: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.lifetime_years:.1f} years at "
            f"{self.hottest_row_writes_per_second:.0f} writes/s to the hottest row"
        )


def project_lifetime(
    max_row_writes: int,
    execution_time_ns: float,
    cell_endurance: int = DEFAULT_CELL_ENDURANCE,
) -> LifetimeProjection:
    """Extrapolate device lifetime from a simulated window.

    ``max_row_writes`` is the wear of the hottest row over the simulated
    ``execution_time_ns``; the projection assumes the workload continues at
    that rate and the device dies when the hottest row hits
    ``cell_endurance`` writes (no wear leveling beyond what was simulated).
    """
    if execution_time_ns <= 0:
        raise ConfigurationError("execution time must be positive")
    if cell_endurance < 1:
        raise ConfigurationError("endurance must be >= 1")
    if max_row_writes <= 0:
        return LifetimeProjection(0.0, cell_endurance, float("inf"))
    writes_per_second = max_row_writes / (execution_time_ns * 1e-9)
    lifetime_seconds = cell_endurance / writes_per_second
    return LifetimeProjection(
        hottest_row_writes_per_second=writes_per_second,
        cell_endurance=cell_endurance,
        lifetime_years=lifetime_seconds / SECONDS_PER_YEAR,
    )


def lifetime_from_run(
    stats: dict[str, float],
    execution_time_ns: float,
    cell_endurance: int = DEFAULT_CELL_ENDURANCE,
    oram_blocks_per_access: int | None = None,
) -> LifetimeProjection:
    """Project lifetime from a :class:`~repro.system.simulator.RunResult`.

    For PCM-backed systems the hottest-row wear comes from the device
    statistics.  For the ORAM timing model (which has no per-row
    accounting), pass ``oram_blocks_per_access`` and the projection charges
    the path write-back evenly across the tree — optimistic for ORAM, which
    rewrites root-adjacent buckets far more often.
    """
    if oram_blocks_per_access is not None:
        accesses = stats.get("oram.accesses", 0.0)
        # Root bucket is rewritten on *every* access: its blocks are the
        # hottest cells. One row holds ~16 blocks; the root's Z blocks are
        # rewritten every access, so hottest-row writes ~= accesses.
        return project_lifetime(int(accesses), execution_time_ns, cell_endurance)
    max_row_writes = int(
        max(
            (value for key, value in stats.items() if key.endswith(".max_row_writes")),
            default=0,
        )
    )
    return project_lifetime(max_row_writes, execution_time_ns, cell_endurance)
