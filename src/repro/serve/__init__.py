"""``repro.serve`` — the always-on simulation service.

Turns the experiment execution layer (JobSpec / ResultCache /
ParallelRunner) into a long-lived network service: an asyncio HTTP/JSON
API fronting a supervised pool of persistent simulation worker processes,
with backlog-based admission control (429 + Retry-After), per-job
timeouts and cancellation, duplicate-submission coalescing, crash
requeue, live ``/metrics`` fleet health, and graceful drain on SIGTERM.
Everything is stdlib-only.

The pieces:

* :mod:`repro.serve.service` — the serving core (admission, coalescing,
  metrics) driving the pool;
* :mod:`repro.serve.pool` — the supervised multi-process worker pool;
* :mod:`repro.serve.http` — the HTTP/1.1 front end and its routes;
* :mod:`repro.serve.client` — a blocking, retrying client;
* :mod:`repro.serve.loadgen` — a closed-loop load generator;
* :mod:`repro.serve.harness` — an in-process server-on-a-thread for
  tests, benchmarks and smoke checks;
* :mod:`repro.serve.cli` — the ``python -m repro serve`` entry point.

Start one::

    python -m repro serve --port 8787 --workers 4 --queue-depth 32

and submit from anywhere::

    from repro.serve.client import ServeClient
    result = ServeClient(port=8787).run(
        {"benchmark": "mcf", "level": "obfusmem_auth"})

Operators: ``docs/serving.md`` is the deployment manual (worker sizing,
API reference, the full ``/metrics`` key table, security notes).
"""

from repro.serve.client import ClientError, JobFailed, RequestFailed, ServeClient, ServerBusy
from repro.serve.harness import ServerThread
from repro.serve.jobs import Job, JobBoard, JobState
from repro.serve.loadgen import LoadGenerator, LoadReport
from repro.serve.pool import PoolOutcome, WorkerHandle, WorkerPool
from repro.serve.service import (
    ServeError,
    ServiceConfig,
    ServiceDraining,
    ServiceSaturated,
    SimulationService,
    decode_submission,
)

__all__ = [
    "ClientError",
    "JobFailed",
    "RequestFailed",
    "ServeClient",
    "ServerBusy",
    "ServerThread",
    "Job",
    "JobBoard",
    "JobState",
    "LoadGenerator",
    "LoadReport",
    "PoolOutcome",
    "ServeError",
    "ServiceConfig",
    "ServiceDraining",
    "ServiceSaturated",
    "SimulationService",
    "WorkerHandle",
    "WorkerPool",
    "decode_submission",
]
