"""A supervised pool of persistent simulation worker processes.

This is the execution fleet behind :class:`~repro.serve.service.
SimulationService`.  Where the service used to fork one controlled child
per job, the pool keeps ``workers`` *persistent* processes alive — each
one imports the simulator once, then executes job after job over a duplex
pipe — so steady-state throughput scales with worker count instead of
paying a fork + import per simulation.

The moving parts:

* :func:`_pool_worker_main` — the worker-process loop: receive a spec and
  a wall-clock budget, probe the shared on-disk
  :class:`~repro.experiments.executor.ResultCache`, simulate on a miss
  (with event accounting), persist, reply.  With a cache directory the
  worker also holds a :class:`~repro.experiments.checkpoints.
  CheckpointStore`: a budgeted job that cannot finish in time is
  *checkpointed and preempted* — the worker snapshots the live
  :class:`~repro.system.world.SimWorld`, persists it, and replies
  ``preempted`` instead of being killed; the job requeues and its next
  slice resumes from the snapshot.
* :class:`WorkerHandle` — the supervisor's view of one worker slot:
  process, pipe, current job, deadline, restart/completion counters.
* :class:`WorkerPool` — the supervisor: shards queued jobs by spec digest,
  assigns them to idle workers (with work stealing so one hot shard cannot
  idle the fleet), enforces per-job deadlines and cancellation by killing
  the worker process, requeues jobs whose worker crashed mid-run, and
  respawns dead workers.  It reports everything that happens through three
  callbacks (``on_running``, ``on_outcome``, ``on_requeue``) so the
  service can keep its :class:`~repro.serve.jobs.JobBoard` authoritative.
* :class:`PoolOutcome` — one job's final verdict as the pool saw it.

Concurrency model: all pool state is guarded by one lock; a single
supervisor thread multiplexes every worker pipe (plus the process
sentinels and a wake pipe) through :func:`multiprocessing.connection.wait`.
Callbacks fire on the supervisor thread — the service bridges them onto
its event loop with ``run_coroutine_threadsafe``.

Shared-cache safety: every worker writes the same result/trace cache
directory.  Entry writes are atomic (write-then-rename) and byte-budget
eviction is serialized by the cache's single-evictor ``flock`` lease (see
:class:`~repro.experiments.executor.JsonFileCache`), so N workers can
evict concurrently without double-unlinking or corrupting entries.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.experiments import trace_cache
from repro.experiments.checkpoints import CheckpointStore, world_for_spec
from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    _fork_context,
    ResultCache,
    result_to_jsonable,
)
from repro.serve.jobs import Job

#: Kernel events between wall-clock budget checks while a budgeted job
#: runs — small enough that a slice overshoots its budget by milliseconds,
#: large enough that the check never shows up in a profile.
PREEMPT_SLICE_EVENTS = 20_000


def _simulate_sliced(spec, store, budget_s):
    """Run ``spec`` with event accounting, preempting at the wall budget.

    Resumes from the deepest usable snapshot in ``store`` when one exists.
    Returns ``(result, events, trace_hits, trace_misses, ckpt_hits,
    ckpt_misses)`` — ``result`` is None when the budget expired before the
    simulation finished, in which case the live world was checkpointed to
    ``store`` so the next slice can resume it.  Without a store or budget
    this degrades to a plain start-to-finish run.
    """
    from repro.sim.engine import Engine
    from repro.sim.profiling import EventAccountant

    accountant = EventAccountant()
    previous = Engine.default_instrument
    Engine.default_instrument = accountant
    hits_before, misses_before = trace_cache.counters()
    deadline = None if budget_s is None else time.perf_counter() + float(budget_s)
    try:
        world, forked_from = world_for_spec(spec, store)
        ckpt_hits, ckpt_misses = (0, 0)
        if store is not None:
            ckpt_hits, ckpt_misses = (1, 0) if forked_from else (0, 1)
        finished = False
        if deadline is None or store is None:
            world.run()
            finished = True
        else:
            while True:
                if world.run(stop_after_events=PREEMPT_SLICE_EVENTS):
                    finished = True
                    break
                if time.perf_counter() >= deadline:
                    try:
                        store.put(spec, world.snapshot())
                    except Exception:
                        continue  # cannot persist progress: keep simulating
                    break
    finally:
        Engine.default_instrument = previous
    hits_after, misses_after = trace_cache.counters()
    return (
        world.result() if finished else None,
        accountant.events,
        hits_after - hits_before,
        misses_after - misses_before,
        ckpt_hits,
        ckpt_misses,
    )


def _pool_worker_main(connection, worker_index, cache_dir, cache_bytes) -> None:
    """Entry point of one persistent worker process.

    Loops forever: receive ``("run", job_id, spec, budget_s)``, resolve it
    through the shared on-disk cache or a fresh simulation (with
    kernel-event and trace-cache accounting), persist a fresh result, and
    reply with one of::

        ("ok", job_id, source, result_json, wall_ms,
         events, trace_hits, trace_misses, ckpt_hits, ckpt_misses)
        ("preempted", job_id, events, wall_ms, ckpt_hits, ckpt_misses)
        ("error", job_id, message, wall_ms)

    ``preempted`` means the wall budget expired first: the worker
    checkpointed the live world to the shared store and stayed healthy —
    the supervisor requeues the job and a later slice resumes it.  A
    ``("stop",)`` message — or the pipe closing — ends the loop.  The
    worker never exits on a job failure: exceptions travel back as
    ``error`` replies.
    """
    trace_cache.sync(
        enabled=cache_dir is not None,
        directory=cache_dir or DEFAULT_CACHE_DIR,
        max_bytes=cache_bytes,
    )
    cache = None
    store = None
    if cache_dir is not None:
        cache = ResultCache(cache_dir, max_bytes=cache_bytes)
        store = CheckpointStore(cache_dir, max_bytes=cache_bytes)
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if not isinstance(message, tuple) or not message or message[0] == "stop":
            break
        _kind, job_id, spec, budget_s = message
        started = time.perf_counter()
        try:
            cached = None if cache is None else cache.get(spec)
            if cached is not None:
                wall_ms = (time.perf_counter() - started) * 1000.0
                payload = result_to_jsonable(cached)
                reply = ("ok", job_id, "disk", payload, wall_ms, 0, 0, 0, 0, 0)
            else:
                result, events, trace_hits, trace_misses, ckpt_hits, ckpt_misses = (
                    _simulate_sliced(spec, store, budget_s)
                )
                if result is None:
                    wall_ms = (time.perf_counter() - started) * 1000.0
                    reply = (
                        "preempted",
                        job_id,
                        events,
                        wall_ms,
                        ckpt_hits,
                        ckpt_misses,
                    )
                else:
                    if cache is not None:
                        cache.put(spec, result)
                    wall_ms = (time.perf_counter() - started) * 1000.0
                    reply = (
                        "ok",
                        job_id,
                        "simulated",
                        result_to_jsonable(result),
                        wall_ms,
                        events,
                        trace_hits,
                        trace_misses,
                        ckpt_hits,
                        ckpt_misses,
                    )
        except Exception as exc:
            wall_ms = (time.perf_counter() - started) * 1000.0
            reply = ("error", job_id, f"{type(exc).__name__}: {exc}", wall_ms)
        try:
            connection.send(reply)
        except (OSError, ValueError):
            break
    try:
        connection.close()
    except OSError:  # pragma: no cover - already closed
        pass


@dataclass(frozen=True)
class PoolOutcome:
    """One job's final verdict as reported by the pool.

    ``status`` is ``"ok"`` (``result_payload`` holds the result in its
    cache-JSON form and ``source`` says whether the worker simulated it or
    found it on disk), ``"timeout"``, ``"cancelled"`` or ``"failed"``
    (``error`` holds the reason).  Results travel as JSON payloads — the
    same round trip the cache performs — so a pooled result is
    bit-identical to a cached one.
    """

    status: str
    source: str | None = None
    result_payload: dict | None = None
    error: str | None = None
    wall_ms: float = 0.0
    sim_events: int = 0
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0
    #: Checkpoint-store probes by the finishing slice: 1/0 when the worker
    #: resumed from a stored snapshot, 0/1 when it had to start cold.
    checkpoint_hits: int = 0
    checkpoint_misses: int = 0
    worker: int | None = None


@dataclass
class WorkerHandle:
    """The supervisor's view of one worker slot.

    The *slot* (index) is stable; the process behind it is replaced
    whenever it dies — deliberately (timeout/cancel kill) or not (crash).
    """

    index: int
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    job: Job | None = None
    #: Monotonic deadline for the running job (None: no timeout).
    deadline: float | None = None
    #: Why the supervisor terminated this process ("timeout"/"cancelled"),
    #: or None while it is trusted to be healthy.
    kill_reason: str | None = None
    completed: int = 0
    restarts: int = 0
    started_at: float = field(default_factory=time.monotonic)

    def describe(self) -> dict:
        """This slot as a JSON-ready dict (one ``workers_detail`` row)."""
        return {
            "worker": self.index,
            "pid": self.process.pid,
            "alive": self.process.is_alive(),
            "state": "busy" if self.job is not None else "idle",
            "job": None if self.job is None else self.job.id,
            "completed": self.completed,
            "restarts": self.restarts,
        }


class WorkerPool:
    """Supervise N persistent worker processes executing sharded jobs.

    Jobs enter through :meth:`dispatch` into per-shard deques (shard =
    spec digest mod ``workers``), giving duplicate digests a deterministic
    home; an idle worker drains its own shard first and steals from the
    deepest backlog otherwise.  One supervisor thread multiplexes every
    worker pipe, enforces deadlines and cancellation (by killing the
    worker process), requeues jobs whose worker died mid-run (up to
    ``max_requeues`` times, then FAILs them) and respawns dead workers.

    Everything the pool decides is reported through callbacks, all fired
    on the supervisor thread:

    * ``on_running(job, worker_index)`` — the job was handed to a worker;
    * ``on_outcome(job, PoolOutcome)`` — the job finished, one way or
      another (including "cancelled while queued");
    * ``on_requeue(job)`` — the job's worker died and the job went back
      to the front of its shard (``job.attempts`` was incremented);
    * ``on_preempted(job, events, wall_ms, ckpt_hits, ckpt_misses)`` — the
      job's wall budget expired, the worker checkpointed it, and it went
      back to the front of its shard (``job.preemptions`` incremented).

    Preemption is active only when the pool has a ``cache_dir`` to hold
    checkpoints; without one, a job past its deadline is killed exactly as
    before.  With preemption, the supervisor's own deadline kill becomes a
    safety net at ``timeout_s + preempt_grace_s`` — it only fires when a
    worker fails to preempt itself.  A job preempted more than
    ``max_preemptions`` times resolves to a timeout outcome.
    """

    def __init__(
        self,
        workers: int,
        cache_dir=None,
        cache_bytes: int | None = None,
        *,
        on_running=None,
        on_outcome=None,
        on_requeue=None,
        on_preempted=None,
        max_requeues: int = 2,
        max_preemptions: int = 8,
        preempt_grace_s: float = 10.0,
        poll_s: float = 0.02,
    ):
        self.workers = max(1, int(workers))
        self.cache_dir = cache_dir
        self.cache_bytes = cache_bytes
        self.max_requeues = max(0, int(max_requeues))
        self.max_preemptions = max(0, int(max_preemptions))
        self.preempt_grace_s = max(0.0, float(preempt_grace_s))
        self.poll_s = max(0.001, float(poll_s))
        self._on_running = on_running or (lambda job, worker: None)
        self._on_outcome = on_outcome or (lambda job, outcome: None)
        self._on_requeue = on_requeue or (lambda job: None)
        self._on_preempted = on_preempted or (
            lambda job, events, wall_ms, hits, misses: None
        )
        self._context = _fork_context() or multiprocessing.get_context()
        self._lock = threading.Lock()
        self._shards: list[deque[Job]] = [deque() for _ in range(self.workers)]
        self._handles: list[WorkerHandle] = []
        self._started = False
        self._stopping = False
        self._crash_restarts = 0
        self._kills = 0
        self._requeues = 0
        self._preemptions = 0
        self._wake_r, self._wake_w = self._context.Pipe(duplex=False)
        self._thread = threading.Thread(
            target=self._supervise, name="repro-serve-pool", daemon=True
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn every worker process and the supervisor thread (once)."""
        with self._lock:
            if self._started:
                return self
            self._handles = [
                WorkerHandle(index, *self._spawn(index))
                for index in range(self.workers)
            ]
            self._started = True
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the supervisor and every worker; report leftovers cancelled.

        Idle workers are asked to exit and joined; workers still busy past
        a short grace are terminated.  Any job still queued or running is
        reported through ``on_outcome`` as cancelled — the pool never
        swallows an accepted job silently.
        """
        with self._lock:
            stopping_already = self._stopping
            self._stopping = True
        self._poke()
        if not stopping_already and self._started:
            self._thread.join(timeout=30.0)
        with self._lock:
            leftovers = [job for shard in self._shards for job in shard]
            for shard in self._shards:
                shard.clear()
            handles = list(self._handles)
        for job in leftovers:
            self._emit(job, PoolOutcome(status="cancelled", error="worker pool stopped"))
        for handle in handles:
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for handle in handles:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - terminate ignored
                handle.process.kill()
                handle.process.join(timeout=2.0)
            if handle.job is not None:
                job, handle.job = handle.job, None
                self._emit(
                    job,
                    PoolOutcome(
                        status="cancelled",
                        error="worker pool stopped",
                        worker=handle.index,
                    ),
                )
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for pipe_end in (self._wake_r, self._wake_w):
            try:
                pipe_end.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # -- submission-side API (any thread) ------------------------------------

    def dispatch(self, job: Job) -> None:
        """Queue one job on its digest's home shard and wake the supervisor."""
        with self._lock:
            if self._stopping:
                raise RuntimeError("worker pool is stopping")
            self._shards[self._shard_of(job.digest)].append(job)
        self._poke()

    def cancel(self, job: Job) -> str:
        """Take the job out of the pool; returns where it was found.

        ``"queued"``: removed from its shard before any worker saw it —
        the caller records the cancellation (no outcome will fire).
        ``"running"``: its worker process is being killed; the cancelled
        outcome follows through ``on_outcome``.  ``"missing"``: the pool
        no longer holds it (its outcome is already reported or in flight).
        """
        with self._lock:
            for shard in self._shards:
                if job in shard:
                    shard.remove(job)
                    return "queued"
            for handle in self._handles:
                if handle.job is job:
                    if handle.kill_reason is None:
                        self._kill(handle, "cancelled")
                    return "running"
        return "missing"

    def snapshot(self) -> dict:
        """Live fleet gauges for ``/metrics`` (thread-safe, JSON-ready)."""
        with self._lock:
            return {
                "queued": sum(len(shard) for shard in self._shards),
                "running": sum(1 for h in self._handles if h.job is not None),
                "workers_online": sum(
                    1 for h in self._handles if h.process.is_alive()
                ),
                "restarts_total": self._crash_restarts,
                "kills_total": self._kills,
                "requeues_total": self._requeues,
                "preemptions_total": self._preemptions,
                "workers": [handle.describe() for handle in self._handles],
            }

    # -- supervisor internals (hold self._lock) ------------------------------

    def _shard_of(self, digest: str) -> int:
        """A digest's home shard: stable, uniform over the worker count."""
        return int(digest[:8], 16) % self.workers

    def _spawn(self, index: int):
        """Fork one worker process; returns ``(process, parent_conn)``."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_pool_worker_main,
            args=(child_conn, index, self.cache_dir, self.cache_bytes),
            name=f"repro-pool-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    def _poke(self) -> None:
        """Wake the supervisor out of its poll wait immediately."""
        try:
            self._wake_w.send_bytes(b"!")
        except (OSError, ValueError):  # pragma: no cover - pool torn down
            pass

    def _emit(self, job: Job, outcome: PoolOutcome) -> None:
        """Report one outcome; a callback error must never kill the pool."""
        try:
            self._on_outcome(job, outcome)
        except Exception:  # pragma: no cover - defensive
            pass

    def _kill(self, handle: WorkerHandle, reason: str) -> None:
        """Terminate a busy worker deliberately (timeout or cancellation)."""
        handle.kill_reason = reason
        self._kills += 1
        try:
            handle.process.terminate()
        except OSError:  # pragma: no cover - already dead
            pass

    def _supervise(self) -> None:
        """The supervisor loop: collect, sweep, enforce, assign, wait."""
        while True:
            with self._lock:
                if self._stopping:
                    return
                self._collect()
                self._sweep_cancelled()
                self._enforce_deadlines()
                self._assign()
                waitables: list = [self._wake_r]
                for handle in self._handles:
                    waitables.append(handle.process.sentinel)
                    if handle.job is not None:
                        waitables.append(handle.conn)
            try:
                ready = multiprocessing.connection.wait(waitables, timeout=self.poll_s)
            except OSError:  # pragma: no cover - fd raced away at respawn
                ready = []
            if self._wake_r in ready:
                try:
                    while self._wake_r.poll(0):
                        self._wake_r.recv_bytes()
                except (EOFError, OSError):  # pragma: no cover - torn down
                    pass

    def _collect(self) -> None:
        """Harvest finished jobs and reap dead workers."""
        for handle in self._handles:
            if handle.job is not None:
                if handle.kill_reason is None and self._try_receive(handle):
                    continue
                if not handle.process.is_alive():
                    self._reap(handle)
            elif not handle.process.is_alive():
                # An idle worker died out of band: replace the process.
                self._respawn(handle, crashed=True)

    def _try_receive(self, handle: WorkerHandle) -> bool:
        """Pull one reply off a busy worker's pipe, if present."""
        job = handle.job
        try:
            if not handle.conn.poll(0):
                return False
            payload = handle.conn.recv()
        except (EOFError, OSError):
            return False  # died mid-send; the is_alive() check reaps it
        if not isinstance(payload, tuple) or len(payload) < 2 or payload[1] != job.id:
            return False  # stale or malformed reply: drop it
        if payload[0] == "ok":
            (
                _kind,
                _job_id,
                source,
                result_payload,
                wall_ms,
                events,
                hits,
                misses,
                ckpt_hits,
                ckpt_misses,
            ) = payload
            outcome = PoolOutcome(
                status="ok",
                source=str(source),
                result_payload=result_payload,
                wall_ms=float(wall_ms),
                sim_events=int(events),
                trace_cache_hits=int(hits),
                trace_cache_misses=int(misses),
                checkpoint_hits=int(ckpt_hits),
                checkpoint_misses=int(ckpt_misses),
                worker=handle.index,
            )
        elif payload[0] == "preempted":
            self._preempt(handle, payload)
            return True
        else:
            _kind, _job_id, message, wall_ms = payload
            outcome = PoolOutcome(
                status="failed",
                error=str(message),
                wall_ms=float(wall_ms),
                worker=handle.index,
            )
        handle.job = None
        handle.deadline = None
        handle.completed += 1
        self._emit(job, outcome)
        return True

    def _preempt(self, handle: WorkerHandle, payload: tuple) -> None:
        """A worker checkpointed its job at the budget: requeue, not kill.

        The job goes back to the *front* of its home shard so it resumes
        promptly; past ``max_preemptions`` slices it resolves to a timeout
        outcome (the worker stays alive either way).  A cancellation that
        raced the preemption resolves to cancelled here.
        """
        _kind, _job_id, events, wall_ms, ckpt_hits, ckpt_misses = payload
        job, handle.job = handle.job, None
        handle.deadline = None
        job.preemptions += 1
        self._preemptions += 1
        try:
            self._on_preempted(
                job, int(events), float(wall_ms), int(ckpt_hits), int(ckpt_misses)
            )
        except Exception:  # pragma: no cover - defensive
            pass
        if job.cancel.is_set():
            self._emit(
                job,
                PoolOutcome(
                    status="cancelled",
                    error="cancelled by request",
                    worker=handle.index,
                ),
            )
        elif job.preemptions > self.max_preemptions:
            self._emit(
                job,
                PoolOutcome(
                    status="timeout",
                    error=(
                        f"preempted {job.preemptions} times without finishing "
                        f"({float(job.timeout_s):.3f} s budget per slice)"
                    ),
                    worker=handle.index,
                ),
            )
        else:
            self._shards[self._shard_of(job.digest)].appendleft(job)

    def _reap(self, handle: WorkerHandle) -> None:
        """A busy worker died: resolve its job, then replace the process.

        A deliberate kill resolves to the timeout/cancelled outcome it was
        issued for.  An unexpected death requeues the job at the front of
        its home shard — bounded by ``max_requeues``, past which the job
        fails with the worker's exit code in the error.
        """
        job, handle.job = handle.job, None
        handle.deadline = None
        reason, handle.kill_reason = handle.kill_reason, None
        if reason == "timeout":
            self._emit(
                job,
                PoolOutcome(
                    status="timeout",
                    error=f"timed out after {float(job.timeout_s):.3f} s",
                    worker=handle.index,
                ),
            )
        elif reason == "cancelled":
            self._emit(
                job,
                PoolOutcome(
                    status="cancelled",
                    error="cancelled by request",
                    worker=handle.index,
                ),
            )
        elif job.attempts < self.max_requeues:
            job.attempts += 1
            self._requeues += 1
            self._shards[self._shard_of(job.digest)].appendleft(job)
            try:
                self._on_requeue(job)
            except Exception:  # pragma: no cover - defensive
                pass
        else:
            self._emit(
                job,
                PoolOutcome(
                    status="failed",
                    error=(
                        f"worker process died mid-job "
                        f"(exit code {handle.process.exitcode}) "
                        f"after {job.attempts + 1} attempt(s)"
                    ),
                    worker=handle.index,
                ),
            )
        self._respawn(handle, crashed=reason is None)

    def _respawn(self, handle: WorkerHandle, crashed: bool) -> None:
        """Replace a dead worker process behind its slot."""
        if self._stopping:
            return
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        handle.process.join(timeout=5.0)
        handle.process, handle.conn = self._spawn(handle.index)
        handle.kill_reason = None
        handle.started_at = time.monotonic()
        handle.restarts += 1
        if crashed:
            self._crash_restarts += 1

    def _sweep_cancelled(self) -> None:
        """Resolve cancelled queued jobs; kill workers on cancelled jobs."""
        for shard in self._shards:
            for job in [item for item in shard if item.cancel.is_set()]:
                shard.remove(job)
                self._emit(
                    job,
                    PoolOutcome(status="cancelled", error="cancelled while queued"),
                )
        for handle in self._handles:
            if (
                handle.job is not None
                and handle.kill_reason is None
                and handle.job.cancel.is_set()
            ):
                self._kill(handle, "cancelled")

    def _enforce_deadlines(self) -> None:
        """Kill workers whose job ran past its deadline."""
        now = time.monotonic()
        for handle in self._handles:
            if (
                handle.job is not None
                and handle.kill_reason is None
                and handle.deadline is not None
                and now >= handle.deadline
            ):
                self._kill(handle, "timeout")

    def _next_job(self, index: int) -> Job | None:
        """The next job for worker ``index``: own shard first, then steal."""
        shard = self._shards[index]
        if shard:
            return shard.popleft()
        richest = max(self._shards, key=len)
        if richest:
            return richest.popleft()
        return None

    def _assign(self) -> None:
        """Hand queued jobs to idle, healthy workers."""
        for handle in self._handles:
            if (
                handle.job is not None
                or handle.kill_reason is not None
                or not handle.process.is_alive()
            ):
                continue
            while True:
                job = self._next_job(handle.index)
                if job is None:
                    break
                if job.cancel.is_set():
                    self._emit(
                        job,
                        PoolOutcome(
                            status="cancelled", error="cancelled while queued"
                        ),
                    )
                    continue
                # With a checkpoint store the worker preempts itself at the
                # budget; the supervisor's kill becomes a grace-padded
                # safety net.  Without one, the old deadline kill applies.
                budget = (
                    None
                    if job.timeout_s is None or self.cache_dir is None
                    else float(job.timeout_s)
                )
                try:
                    handle.conn.send(("run", job.id, job.spec, budget))
                except (OSError, ValueError):
                    # The worker became unusable under us: put the job back
                    # (not the job's fault — no attempts charge) and respawn.
                    self._shards[self._shard_of(job.digest)].appendleft(job)
                    self._respawn(handle, crashed=True)
                    break
                handle.job = job
                if job.timeout_s is None:
                    handle.deadline = None
                else:
                    grace = 0.0 if budget is None else self.preempt_grace_s
                    handle.deadline = (
                        time.monotonic() + float(job.timeout_s) + grace
                    )
                try:
                    self._on_running(job, handle.index)
                except Exception:  # pragma: no cover - defensive
                    pass
                break
