"""An in-process server harness: the service on a background thread.

Tests, benchmarks and the CI smoke step all need a real server — real
sockets, real admission control — without a subprocess to babysit.
:class:`ServerThread` runs a :class:`~repro.serve.service.SimulationService`
plus its HTTP front end on a dedicated thread with its own event loop,
hands back the ephemeral port, and drains cleanly on :meth:`stop` (the
same code path SIGTERM takes in the CLI)::

    from repro.serve.harness import ServerThread
    from repro.serve.service import ServiceConfig

    with ServerThread(ServiceConfig(workers=2, queue_depth=8)) as server:
        client = server.client()
        client.healthz()

The context-manager exit performs a graceful drain: every accepted job
reaches a terminal state before the thread joins.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.client import ServeClient
from repro.serve.http import start_http_server
from repro.serve.service import ServiceConfig, SimulationService


class ServerThread:
    """Run service + HTTP API on a private thread/event loop."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        host: str = "127.0.0.1",
        drain_grace_s: float | None = None,
    ):
        self.config = config or ServiceConfig()
        self.host = host
        self.drain_grace_s = drain_grace_s
        self.service: SimulationService | None = None
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-harness", daemon=True
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServerThread":
        """Start the thread and block until the server is accepting."""
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("serve harness failed to start within 30 s")
        if self._startup_error is not None:
            raise RuntimeError("serve harness failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        """Drain the service and join the thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def client(self, **overrides) -> ServeClient:
        """A :class:`ServeClient` pointed at this server."""
        assert self.port is not None, "harness not started"
        return ServeClient(self.host, self.port, **overrides)

    # -- thread body ---------------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # pragma: no cover - surfaced in start()
            self._startup_error = error
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = SimulationService(self.config)
        await self.service.start()
        server = await start_http_server(self.service, host=self.host, port=0)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self.service.drain(grace_s=self.drain_grace_s)
