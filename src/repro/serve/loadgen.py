"""A small closed-loop load generator for the simulation service.

Two drive modes, both closed loop (each client waits for its response
before sending the next, so throughput is what the service actually
sustains, not what an open-loop generator wishes it would):

* **repeat mode** (``spec=``): ``threads`` clients each issue
  ``requests_per_thread`` submit-and-wait round trips of one spec —
  the cache/coalescing stress shape;
* **sweep mode** (``specs=``): the threads drain a shared work list of
  distinct specs, each submitted exactly once — the shape that exercises
  the worker pool's sharded scheduling, since distinct digests spread
  across the persistent workers.

This is the measurement half of ``benchmarks/test_serve_throughput.py``
and ``benchmarks/test_serve_pool_scaling.py``; it is also handy
interactively::

    from repro.serve.loadgen import LoadGenerator

    report = LoadGenerator("127.0.0.1", 8787,
                           spec={"benchmark": "mcf", "level": "obfusmem_auth"},
                           threads=4, requests_per_thread=25).run()
    print(report.to_jsonable())
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field

from repro.serve.client import ClientError, ServeClient


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    requests: int = 0
    completed: int = 0
    failed: int = 0
    wall_s: float = 0.0
    #: Per-request submit-to-result latencies, seconds, completion order.
    latencies_s: list[float] = field(default_factory=list)
    #: Aggregated client transport counters (attempts, 429/connect retries).
    client_stats: dict[str, int] = field(default_factory=dict)

    @property
    def requests_per_sec(self) -> float:
        """Completed requests per wall-clock second."""
        return self.completed / self.wall_s if self.wall_s else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean submit-to-result latency."""
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)

    def to_jsonable(self) -> dict:
        """The report as a JSON-ready summary (latencies collapsed)."""
        ordered = sorted(self.latencies_s)
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "wall_s": round(self.wall_s, 4),
            "requests_per_sec": round(self.requests_per_sec, 2),
            "latency_mean_s": round(self.mean_latency_s, 6),
            "latency_p50_s": round(_percentile(ordered, 0.50), 6),
            "latency_p95_s": round(_percentile(ordered, 0.95), 6),
            "latency_max_s": round(ordered[-1], 6) if ordered else 0.0,
            "client_stats": dict(self.client_stats),
        }


class LoadGenerator:
    """Closed-loop load: repeated single-spec rounds, or a distinct-spec sweep.

    Exactly one of ``spec`` (repeat mode: ``threads`` x
    ``requests_per_thread`` submissions of the same spec) or ``specs``
    (sweep mode: the threads share one work list, each spec submitted
    once) must be given.
    """

    def __init__(
        self,
        host: str,
        port: int,
        spec: dict | None = None,
        threads: int = 2,
        requests_per_thread: int = 10,
        timeout_s: float | None = None,
        deadline_s: float = 600.0,
        specs: list[dict] | None = None,
    ):
        if (spec is None) == (specs is None):
            raise ValueError("provide exactly one of spec= or specs=")
        self.host = host
        self.port = port
        self.spec = None if spec is None else dict(spec)
        self.specs = None if specs is None else [dict(item) for item in specs]
        self.threads = max(1, int(threads))
        self.requests_per_thread = max(1, int(requests_per_thread))
        self.timeout_s = timeout_s
        self.deadline_s = deadline_s

    def run(self) -> LoadReport:
        """Drive the full load and aggregate every thread's measurements."""
        report = LoadReport()
        lock = threading.Lock()
        clients = [
            ServeClient(self.host, self.port) for _ in range(self.threads)
        ]
        # Sweep mode drains this shared backlog; deque.popleft is atomic,
        # so the threads need no extra coordination to split the work.
        backlog = collections.deque(self.specs or ())

        def one_request(client: ServeClient, spec: dict) -> None:
            started = time.perf_counter()
            try:
                client.run(
                    spec,
                    timeout_s=self.timeout_s,
                    deadline_s=self.deadline_s,
                )
            except (ClientError, ConnectionError):
                with lock:
                    report.requests += 1
                    report.failed += 1
                return
            latency = time.perf_counter() - started
            with lock:
                report.requests += 1
                report.completed += 1
                report.latencies_s.append(latency)

        def worker(client: ServeClient) -> None:
            if self.spec is not None:
                for _ in range(self.requests_per_thread):
                    one_request(client, self.spec)
                return
            while True:
                try:
                    spec = backlog.popleft()
                except IndexError:
                    return
                one_request(client, spec)

        started = time.perf_counter()
        pool = [
            threading.Thread(target=worker, args=(client,), daemon=True)
            for client in clients
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        report.wall_s = time.perf_counter() - started
        for client in clients:
            for key, value in client.stats.items():
                report.client_stats[key] = report.client_stats.get(key, 0) + value
        return report
