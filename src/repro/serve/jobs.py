"""Job lifecycle: states, the job record, and the async job board.

A submitted simulation becomes a :class:`Job` — a job id, the decoded
:class:`~repro.experiments.executor.JobSpec`, a timeout, and a lifecycle
that only ever moves forward::

    QUEUED ──► RUNNING ──► DONE
       │          ├──────► FAILED
       │          ├──────► TIMEOUT
       │          ├──────► PREEMPTED ──► RUNNING … (resumed from checkpoint)
       └──────────┴──────► CANCELLED

A job that loses its worker mid-run (the process crashed) may be requeued:
the lifecycle then records RUNNING ──► QUEUED ──► RUNNING … with the
``attempts`` counter ticking once per requeue, until the job lands in a
terminal state or the supervisor gives up and FAILs it.

PREEMPTED is *not* terminal: when the pool runs with a persistent cache,
a job that reaches its per-slice deadline is checkpointed by its worker
and requeued rather than killed — the ``preemptions`` counter ticks, the
job goes back in queue, and the next slice resumes the simulation from
the stored checkpoint.  Long traces therefore complete across slices; a
job that exceeds ``max_preemptions`` slices lands in TIMEOUT.

The :class:`JobBoard` owns every job the service has accepted, allocates
ids, records state transitions (with timestamps, for the progress stream)
and wakes long-poll waiters through one :class:`asyncio.Condition`.  All
board mutation happens on the service's event loop; the only cross-thread
signal is each job's ``cancel`` event, which the pool supervisor checks
when deciding whether to dispatch or kill the job's worker process.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.experiments.executor import JobSpec, result_to_jsonable
from repro.schemes import scheme_name_of
from repro.system.simulator import RunResult


class JobState(enum.Enum):
    """Where a job is in its lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    #: Non-terminal: the worker checkpointed the job at its slice deadline
    #: and requeued it; the next RUNNING slice resumes from the snapshot.
    PREEMPTED = "preempted"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self in _TERMINAL_STATES


_TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.TIMEOUT, JobState.CANCELLED}
)


@dataclass
class Job:
    """One accepted simulation job and everything that happened to it."""

    id: str
    spec: JobSpec
    digest: str
    timeout_s: float | None = None
    state: JobState = JobState.QUEUED
    #: Which layer produced the result: "memory" | "disk" | "coalesced" |
    #: "simulated" (None until the job resolves).
    source: str | None = None
    result: RunResult | None = None
    error: str | None = None
    wall_ms: float = 0.0
    #: Simulation-kernel events executed (cold jobs only; the PR-3
    #: profiling hook surfaced per job).
    sim_events: int = 0
    #: How many times the job was requeued after its worker process died
    #: mid-run (0 for the overwhelming majority of jobs).
    attempts: int = 0
    #: How many deadline slices ended with a checkpoint-and-requeue instead
    #: of a kill (0 unless the pool runs with a persistent cache).
    preemptions: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: ``(wall-clock time, state value)`` per transition — the progress feed.
    transitions: list[tuple[float, str]] = field(default_factory=list)
    #: Set to interrupt a queued or running job; the pool supervisor
    #: observes it and terminates the worker process running the job.
    cancel: threading.Event = field(default_factory=threading.Event)

    def __post_init__(self) -> None:
        if not self.transitions:
            self.transitions.append((self.submitted_at, self.state.value))

    def to_jsonable(self, include_result: bool = True) -> dict:
        """The job as the JSON object ``GET /jobs/<id>`` serves."""
        payload = {
            "id": self.id,
            "state": self.state.value,
            "benchmark": self.spec.benchmark,
            "level": scheme_name_of(self.spec.level),
            "digest": self.digest,
            "spec": self.spec.to_jsonable(),
            "timeout_s": self.timeout_s,
            "source": self.source,
            "error": self.error,
            "wall_ms": round(self.wall_ms, 3),
            "sim_events": self.sim_events,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "transitions": [list(item) for item in self.transitions],
        }
        if include_result and self.result is not None:
            payload["result"] = result_to_jsonable(self.result)
        return payload


class JobBoard:
    """Every job the service has accepted, with async completion signalling."""

    def __init__(self):
        self._jobs: dict[str, Job] = {}
        self._sequence = itertools.count(1)
        self._condition = asyncio.Condition()
        self._active = 0

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def active(self) -> int:
        """How many accepted jobs have not yet reached a terminal state.

        This is the admission-control gauge: it counts queued *and*
        running jobs (including coalescing followers), so backpressure
        reflects total outstanding work, not just one queue's length.
        """
        return self._active

    def create(self, spec: JobSpec, timeout_s: float | None = None) -> Job:
        """Mint a new QUEUED job for ``spec`` and register it."""
        digest = spec.digest()
        job = Job(
            id=f"j{next(self._sequence):06d}-{digest[:8]}",
            spec=spec,
            digest=digest,
            timeout_s=timeout_s,
        )
        self._jobs[job.id] = job
        self._active += 1
        return job

    def get(self, job_id: str) -> Job | None:
        """The job with this id, or None."""
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, oldest first."""
        return list(self._jobs.values())

    def running_leader(self, digest: str) -> Job | None:
        """A non-terminal job already working on ``digest``, if any.

        Duplicate submissions coalesce onto this leader instead of
        simulating the same spec twice concurrently.
        """
        for job in self._jobs.values():
            if job.digest == digest and not job.state.terminal:
                return job
        return None

    async def advance(
        self,
        job: Job,
        state: JobState,
        *,
        source: str | None = None,
        result: RunResult | None = None,
        error: str | None = None,
        wall_ms: float | None = None,
        sim_events: int | None = None,
    ) -> None:
        """Move a job forward and wake every waiter.

        Terminal states are sticky: advancing an already-terminal job is a
        no-op, so a cancellation that races job completion cannot overwrite
        the recorded outcome.
        """
        if job.state.terminal:
            return
        now = time.time()
        job.state = state
        job.transitions.append((now, state.value))
        if state is JobState.RUNNING:
            job.started_at = now
        if source is not None:
            job.source = source
        if result is not None:
            job.result = result
        if error is not None:
            job.error = error
        if wall_ms is not None:
            job.wall_ms = wall_ms
        if sim_events is not None:
            job.sim_events = sim_events
        if state.terminal:
            job.finished_at = now
            self._active -= 1
        async with self._condition:
            self._condition.notify_all()

    async def wait(
        self,
        job: Job,
        timeout_s: float | None = None,
        seen_transitions: int | None = None,
    ) -> bool:
        """Block until the job finishes; False only on timeout.

        With ``seen_transitions`` set, also return as soon as the job
        records a transition past that count — the progress stream passes
        the number it has already emitted to wake on every intermediate
        state change, not just the terminal one.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s

        def ready() -> bool:
            if job.state.terminal:
                return True
            if seen_transitions is None:
                return False
            return len(job.transitions) > seen_transitions

        async with self._condition:
            while not ready():
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                try:
                    await asyncio.wait_for(self._condition.wait(), remaining)
                except asyncio.TimeoutError:
                    return False
        return True
