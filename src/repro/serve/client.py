"""A blocking, retrying client for the simulation service.

:class:`ServeClient` speaks the service's HTTP/JSON API over
``http.client`` (stdlib only) and absorbs the two transient failure modes
a well-behaved client must handle:

* **connection errors** (service restarting, socket races) retry with
  exponential backoff plus jitter;
* **429 Too Many Requests** (admission control) honours the server's
  ``Retry-After`` hint, clamped into the backoff schedule.

Anything else — 400s from malformed specs, 404s, 503 while draining —
raises immediately; retrying would not change the answer.

Usage::

    from repro.serve.client import ServeClient

    client = ServeClient("127.0.0.1", 8787)
    result = client.run({"benchmark": "mcf", "level": "obfusmem_auth"})
    print(result["execution_time_ns"])
"""

from __future__ import annotations

import http.client
import json
import random
import time

from repro.experiments.executor import JobSpec

#: States in which a job will never produce further progress.
TERMINAL_STATES = frozenset({"done", "failed", "timeout", "cancelled"})


class ClientError(Exception):
    """Base class for client-side failures."""


class ServerBusy(ClientError):
    """Admission control kept refusing (429) for the whole retry budget.

    Carries the final refusal's ``retry_after_s`` hint so callers that
    manage their own pacing can still honour the server's backpressure.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class RequestFailed(ClientError):
    """The server answered with a non-retryable error status."""

    def __init__(self, status: int, payload):
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class JobFailed(ClientError):
    """The submitted job finished in a non-DONE terminal state."""

    def __init__(self, job: dict):
        super().__init__(
            f"job {job.get('id')} ended {job.get('state')}: {job.get('error')}"
        )
        self.job = job


class ServeClient:
    """Blocking HTTP client with exponential-backoff retries.

    One instance per target service; instances keep no connection state
    (the API is connection-per-request), so they are cheap and reusable.
    ``stats`` counts attempts and retries for load-generation reports.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        timeout_s: float = 30.0,
        max_retries: int = 6,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        rng: random.Random | None = None,
    ):
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self.max_retries = max(0, int(max_retries))
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = rng or random.Random()
        self.stats = {"requests": 0, "retries_connect": 0, "retries_busy": 0}

    # -- transport -----------------------------------------------------------

    def _once(self, method: str, path: str, body: bytes | None):
        """One HTTP exchange: ``(status, headers, decoded JSON payload)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw) if raw else None
            except ValueError:
                payload = {"error": raw.decode("utf-8", "replace")}
            return response.status, dict(response.getheaders()), payload
        finally:
            connection.close()

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter, capped."""
        ceiling = min(self.backoff_cap_s, self.backoff_s * (2**attempt))
        return self._rng.uniform(0.0, ceiling) if ceiling > 0 else 0.0

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict, dict]:
        """Issue one API request, retrying connection failures and 429s.

        Returns ``(status, headers, json_payload)`` for any non-retryable
        response, raising :class:`ServerBusy` only when 429s exhaust the
        retry budget and ``ConnectionError`` when the service stays
        unreachable.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: Exception | None = None
        for attempt in range(self.max_retries + 1):
            self.stats["requests"] += 1
            try:
                status, headers, decoded = self._once(method, path, body)
            except (ConnectionError, OSError) as error:
                last_error = error
                self.stats["retries_connect"] += 1
                if attempt >= self.max_retries:
                    break
                time.sleep(self._backoff(attempt))
                continue
            if status == 429 and attempt < self.max_retries:
                self.stats["retries_busy"] += 1
                retry_after = self._retry_after(headers, decoded)
                time.sleep(max(retry_after, self._backoff(attempt)))
                continue
            if status == 429:
                raise ServerBusy(
                    f"server still saturated after {self.max_retries} retries",
                    retry_after_s=self._retry_after(headers, decoded),
                )
            return status, headers, decoded
        raise ConnectionError(
            f"could not reach {self.host}:{self.port} "
            f"after {self.max_retries + 1} attempts: {last_error}"
        )

    def _retry_after(self, headers: dict, payload) -> float:
        """The server's Retry-After hint (header first, then body), in seconds."""
        for source in (headers.get("Retry-After"),):
            try:
                return max(0.0, float(source))
            except (TypeError, ValueError):
                pass
        if isinstance(payload, dict):
            try:
                return max(0.0, float(payload.get("retry_after_s")))
            except (TypeError, ValueError):
                pass
        return self.backoff_s

    def _expect(self, statuses: tuple[int, ...], method: str, path: str, payload=None):
        status, _headers, decoded = self.request(method, path, payload)
        if status not in statuses:
            raise RequestFailed(status, decoded)
        return decoded

    # -- API surface ---------------------------------------------------------

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._expect((200,), "GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._expect((200,), "GET", "/metrics")

    def schemes(self) -> list[dict]:
        """``GET /schemes``: the registry's wire-format scheme descriptions."""
        return self._expect((200,), "GET", "/schemes")["schemes"]

    def submit(
        self, spec: JobSpec | dict, timeout_s: float | None = None
    ) -> dict:
        """``POST /jobs``: submit a spec (object or wire dict); the job JSON."""
        payload = spec.to_jsonable() if isinstance(spec, JobSpec) else dict(spec)
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self._expect((202,), "POST", "/jobs", payload)

    def job(self, job_id: str, wait_s: float | None = None) -> dict:
        """``GET /jobs/<id>`` (long-polling for completion with ``wait_s``)."""
        path = f"/jobs/{job_id}"
        if wait_s is not None:
            path += f"?wait_s={wait_s:g}"
        return self._expect((200,), "GET", path)

    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/<id>``; 409 (already finished) returns the job."""
        status, _headers, decoded = self.request("DELETE", f"/jobs/{job_id}")
        if status not in (202, 409):
            raise RequestFailed(status, decoded)
        return decoded

    def wait(self, job_id: str, poll_s: float = 10.0, deadline_s: float = 600.0) -> dict:
        """Long-poll until the job is terminal; returns the final job JSON."""
        deadline = time.monotonic() + deadline_s
        while True:
            job = self.job(job_id, wait_s=poll_s)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ClientError(f"job {job_id} still {job['state']} at deadline")

    def run(
        self,
        spec: JobSpec | dict,
        timeout_s: float | None = None,
        deadline_s: float = 600.0,
    ) -> dict:
        """Submit, wait, and return the result dict of a successful job.

        Raises :class:`JobFailed` when the job ends FAILED / TIMEOUT /
        CANCELLED, so callers can rely on the returned result being real.
        """
        job = self.submit(spec, timeout_s=timeout_s)
        final = self.wait(job["id"], deadline_s=deadline_s)
        if final["state"] != "done":
            raise JobFailed(final)
        return final["result"]
