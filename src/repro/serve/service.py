"""The simulation service: bounded queue, worker pool, metrics, drain.

:class:`SimulationService` is the serving core the HTTP layer fronts.  It
owns one :class:`~repro.experiments.executor.ParallelRunner` (shared
in-memory result dict + persistent
:class:`~repro.experiments.executor.ResultCache`), a bounded
``asyncio.Queue`` of accepted jobs, and ``workers`` async worker tasks.

Admission control is strict: :meth:`submit` either accepts a job — which
is then *never* dropped; it always reaches a terminal state — or raises
:class:`ServiceSaturated` (translated to HTTP 429 + ``Retry-After``) /
:class:`ServiceDraining` (503) without side effects.

Each worker resolves its job through the runner's cache layers first; a
miss runs in a forked child via
:func:`~repro.experiments.executor.run_spec_controlled`, so per-job
timeouts and mid-run cancellation terminate the simulation process instead
of abandoning it.  Duplicate in-flight submissions coalesce: the follower
waits for the leader's result and serves it from cache, so a thundering
herd of identical specs costs one simulation.

:meth:`drain` implements graceful shutdown (what SIGTERM triggers): stop
admitting, let queued and running jobs finish — or, past the grace
deadline, cancel them — and stop the workers.  Nothing accepted is ever
silently lost; every job ends DONE, FAILED, TIMEOUT or CANCELLED.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.experiments import trace_cache
from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    JobSpec,
    ParallelRunner,
    ResultCache,
    run_spec_controlled,
)
from repro.sim.statistics import StatRegistry
from repro.errors import ConfigurationError
from repro.serve.jobs import Job, JobBoard, JobState


class ServeError(Exception):
    """Base class for serving-layer failures."""


class ServiceSaturated(ServeError):
    """The job queue is full; retry after ``retry_after_s`` seconds."""

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"job queue is full; retry after {retry_after_s:.1f} s"
        )
        self.retry_after_s = retry_after_s


class ServiceDraining(ServeError):
    """The service is shutting down and no longer admits jobs."""

    def __init__(self):
        super().__init__("service is draining; submit to another instance")


@dataclass
class ServiceConfig:
    """Everything a service instance needs to know at start-up."""

    workers: int = 2
    queue_depth: int = 16
    cache_dir: Path | None = DEFAULT_CACHE_DIR
    #: LRU byte budget for the persistent cache (None: unbounded).
    cache_bytes: int | None = None
    #: Default per-job timeout when a submission does not carry one.
    default_timeout_s: float | None = 300.0
    #: What a 429 tells clients to wait (scaled by queue fullness).
    retry_after_s: float = 1.0
    #: How long :meth:`SimulationService.drain` waits before cancelling
    #: the jobs that are still queued or running.
    drain_grace_s: float = 30.0

    def __post_init__(self) -> None:
        self.workers = max(1, int(self.workers))
        self.queue_depth = max(1, int(self.queue_depth))
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)


class SimulationService:
    """Accepts JobSpecs, executes them through the cache layers, keeps score.

    Construct, then ``await start()`` on the serving event loop; every
    other method must be called on that same loop (the HTTP layer does).
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        cache = None
        if self.config.cache_dir is not None:
            cache = ResultCache(
                self.config.cache_dir, max_bytes=self.config.cache_bytes
            )
        # The front-end trace cache shares the result cache's directory and
        # byte budget; forked simulation children inherit this config, so
        # repeated jobs skip trace generation entirely.
        trace_cache.sync(
            enabled=self.config.cache_dir is not None,
            directory=self.config.cache_dir or DEFAULT_CACHE_DIR,
            max_bytes=self.config.cache_bytes,
        )
        self.runner = ParallelRunner(workers=1, cache=cache)
        self.board: JobBoard | None = None
        self.stats = StatRegistry()
        self.started_at: float | None = None
        self.draining = False
        self._queue: asyncio.Queue[Job] | None = None
        self._workers: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._inflight: dict[str, Job] = {}
        self._sim_events_total = 0
        self._sim_wall_ms_total = 0.0
        self._trace_cache_hits_total = 0
        self._trace_cache_misses_total = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Create the queue and spawn the worker pool (idempotent)."""
        if self._queue is not None:
            return
        self.board = JobBoard()
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        ]
        self.started_at = time.monotonic()

    async def drain(self, grace_s: float | None = None) -> None:
        """Graceful shutdown: stop admitting, finish (or cancel) every job.

        Waits up to ``grace_s`` (default: the config's ``drain_grace_s``)
        for the queue and in-flight jobs to finish.  Whatever is still
        alive past the deadline is cancelled — and therefore recorded as
        CANCELLED, not lost.  Finally the worker tasks are stopped.
        """
        if self._queue is None:
            return
        self.draining = True
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        try:
            await asyncio.wait_for(self._queue.join(), timeout=grace)
        except asyncio.TimeoutError:
            for job in self.board.jobs():
                if not job.state.terminal:
                    await self.cancel(job)
            try:
                await asyncio.wait_for(self._queue.join(), timeout=10.0)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._queue = None

    # -- admission -----------------------------------------------------------

    def submit(self, spec: JobSpec, timeout_s: float | None = None) -> Job:
        """Admit one spec as a new job, or refuse without side effects.

        Raises :class:`ServiceDraining` during shutdown and
        :class:`ServiceSaturated` when the queue is full (backpressure —
        the caller should retry after ``retry_after_s``).
        """
        if self._queue is None or self.board is None:
            raise ServeError("service is not started")
        if self.draining:
            raise ServiceDraining()
        serve = self.stats.group("serve")
        if self._queue.full():
            serve.add("rejected_saturated")
            raise ServiceSaturated(self._retry_after())
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        job = self.board.create(spec, timeout_s=timeout_s)
        # full() was checked above and admission runs on the event loop, so
        # put_nowait cannot raise; guard anyway to keep the invariant that
        # a raised submit() has no side effects.
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:  # pragma: no cover - single-threaded loop
            serve.add("rejected_saturated")
            raise ServiceSaturated(self._retry_after()) from None
        serve.add("submitted")
        return job

    def _retry_after(self) -> float:
        """Backpressure hint: one base interval per queued-plus-running job."""
        waiting = self._queue.qsize() if self._queue is not None else 0
        return round(
            self.config.retry_after_s * max(1, waiting + len(self._inflight)), 3
        )

    async def cancel(self, job: Job) -> bool:
        """Cancel a queued or running job; False when it already finished.

        Queued jobs flip straight to CANCELLED (the worker skips them on
        dequeue).  Running jobs get their cancel event set, which makes the
        executor thread terminate the simulation child; the worker then
        records the CANCELLED outcome.
        """
        if job.state.terminal:
            return False
        job.cancel.set()
        if job.state is JobState.QUEUED:
            await self.board.advance(
                job, JobState.CANCELLED, error="cancelled while queued"
            )
            self.stats.group("serve").add("cancelled")
        return True

    # -- execution -----------------------------------------------------------

    async def _worker_loop(self) -> None:
        """One worker: take jobs off the queue until cancelled at drain."""
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                await self._run_job(job)
            except Exception as error:  # pragma: no cover - defensive
                await self.board.advance(
                    job,
                    JobState.FAILED,
                    error=f"internal worker error: {error!r}",
                )
                self.stats.group("serve").add("failed")
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        """Resolve one job: skip if cancelled, coalesce, else cache/simulate."""
        serve = self.stats.group("serve")
        if job.state.terminal:
            return  # cancelled while queued
        if job.cancel.is_set():
            await self.board.advance(
                job, JobState.CANCELLED, error="cancelled while queued"
            )
            serve.add("cancelled")
            return
        await self.board.advance(job, JobState.RUNNING)

        leader = self._inflight.get(job.digest)
        if leader is not None:
            # Same digest already simulating: wait for it, then read the
            # cache instead of burning a second worker on the same spec.
            await self.board.wait(leader)
            result, source = self.runner.lookup(job.spec)
            if result is not None:
                await self.board.advance(
                    job, JobState.DONE, source="coalesced", result=result
                )
                serve.add("completed")
                serve.add("hits_coalesced")
                return
            # Leader failed or was cancelled; fall through and run it here.

        started = time.perf_counter()
        result, source = self.runner.lookup(job.spec)
        if result is not None:
            wall_ms = (time.perf_counter() - started) * 1000.0
            await self.board.advance(
                job, JobState.DONE, source=source, result=result, wall_ms=wall_ms
            )
            serve.add("completed")
            serve.add(f"hits_{source}")
            return

        self._inflight[job.digest] = job
        try:
            loop = asyncio.get_running_loop()
            outcome = await loop.run_in_executor(
                self._executor,
                run_spec_controlled,
                job.spec,
                job.timeout_s,
                job.cancel,
            )
        finally:
            self._inflight.pop(job.digest, None)

        if outcome.status == "ok":
            self.runner.store(job.spec, outcome.result)
            self._sim_events_total += outcome.sim_events
            self._sim_wall_ms_total += outcome.wall_ms
            self._trace_cache_hits_total += outcome.trace_cache_hits
            self._trace_cache_misses_total += outcome.trace_cache_misses
            await self.board.advance(
                job,
                JobState.DONE,
                source="simulated",
                result=outcome.result,
                wall_ms=outcome.wall_ms,
                sim_events=outcome.sim_events,
            )
            serve.add("completed")
            serve.add("simulations")
        elif outcome.status == "timeout":
            await self.board.advance(
                job, JobState.TIMEOUT, error=outcome.error, wall_ms=outcome.wall_ms
            )
            serve.add("timeouts")
        elif outcome.status == "cancelled":
            await self.board.advance(
                job, JobState.CANCELLED, error=outcome.error, wall_ms=outcome.wall_ms
            )
            serve.add("cancelled")
        else:
            await self.board.advance(
                job, JobState.FAILED, error=outcome.error, wall_ms=outcome.wall_ms
            )
            serve.add("failed")

    # -- observability -------------------------------------------------------

    def metrics(self) -> dict:
        """Live service metrics (what ``GET /metrics`` serves).

        Combines job counters, queue gauges, cache effectiveness and the
        simulation kernel's events/sec (from the per-job event accounting
        the profiling layer provides).
        """
        counters = self.stats.as_dict()
        completed = counters.get("serve.completed", 0.0)
        simulations = counters.get("serve.simulations", 0.0)
        hits = completed - simulations
        uptime = (
            0.0 if self.started_at is None else time.monotonic() - self.started_at
        )
        sim_wall_s = self._sim_wall_ms_total / 1000.0
        trace_lookups = self._trace_cache_hits_total + self._trace_cache_misses_total
        return {
            "state": "draining" if self.draining else "running",
            "uptime_s": round(uptime, 3),
            "workers": self.config.workers,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_capacity": self.config.queue_depth,
            "jobs_in_flight": len(self._inflight),
            "jobs_known": 0 if self.board is None else len(self.board),
            "counters": {key: value for key, value in sorted(counters.items())},
            "cache_hits": hits,
            "cache_hit_ratio": round(hits / completed, 4) if completed else 0.0,
            "sim_events_total": self._sim_events_total,
            "sim_wall_s_total": round(sim_wall_s, 3),
            "sim_events_per_sec": (
                round(self._sim_events_total / sim_wall_s, 1) if sim_wall_s else 0.0
            ),
            "trace_cache_hits": self._trace_cache_hits_total,
            "trace_cache_misses": self._trace_cache_misses_total,
            "trace_cache_hit_ratio": (
                round(self._trace_cache_hits_total / trace_lookups, 4)
                if trace_lookups
                else 0.0
            ),
        }


def decode_submission(payload: dict) -> tuple[JobSpec, float | None]:
    """Decode a ``POST /jobs`` body into ``(spec, timeout_s)``.

    The body is JobSpec-shaped (``benchmark``, ``level``, optional
    ``machine``/``num_requests``/``seed``/``cores``) with one service-level
    extra: ``timeout_s``.  Raises
    :class:`~repro.errors.ConfigurationError` on anything malformed.
    """
    from repro.experiments.executor import spec_from_jsonable

    if not isinstance(payload, dict):
        raise ConfigurationError("job submission must be a JSON object")
    payload = dict(payload)
    timeout_s = payload.pop("timeout_s", None)
    if timeout_s is not None:
        try:
            timeout_s = float(timeout_s)
        except (TypeError, ValueError):
            raise ConfigurationError("timeout_s must be a number") from None
        if timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
    return spec_from_jsonable(payload), timeout_s
