"""The simulation service: pooled workers, sharded admission, metrics, drain.

:class:`SimulationService` is the serving core the HTTP layer fronts.  It
owns a :class:`~repro.serve.pool.WorkerPool` of *persistent* simulation
worker processes (no fork-per-job: each worker imports the simulator once
and then executes job after job), a :class:`~repro.serve.jobs.JobBoard`
of every accepted job, and one
:class:`~repro.experiments.executor.ParallelRunner` used as the cache
front (shared in-memory result dict + persistent
:class:`~repro.experiments.executor.ResultCache`).

Admission queues with backpressure: :meth:`submit` accepts a job — which
is then *never* dropped; it always reaches a terminal state — until the
number of active (queued + running) jobs reaches ``queue_depth``; only
past that does it raise :class:`ServiceSaturated` (translated to HTTP 429
+ ``Retry-After``).  During shutdown it raises :class:`ServiceDraining`
(503).  A refused submission has no side effects.

Jobs are sharded across the pool by spec digest, and duplicate in-flight
submissions never reach a second worker: followers coalesce onto the
leader at admission and are completed with the leader's result
(``source == "coalesced"``), so a thundering herd of identical specs
costs one simulation.  Cache hits (in-memory or on-disk) complete on the
event loop without touching the pool at all.

The pool supervises its processes: a worker that dies mid-job is
respawned and the job requeued (up to ``max_requeues`` times) before it
is FAILED; mid-run cancellation kills the worker process (the slot
respawns), so a stuck simulation releases its CPU.  With a persistent
cache directory, a job that reaches its per-slice deadline is *preempted*
rather than killed: the worker checkpoints the live simulation into the
shared :class:`~repro.experiments.checkpoints.CheckpointStore`, the job
requeues (state PREEMPTED), and its next slice resumes from the snapshot
— long traces complete across as many slices as ``max_preemptions``
allows, in bounded memory, without ever restarting from zero.  Without a
cache directory the old deadline kill applies.  Worker health —
per-worker inflight/completed counters, restarts, preemptions — ships
through :meth:`metrics`.

:meth:`drain` implements graceful shutdown (what SIGTERM triggers): stop
admitting, let queued and running jobs finish — or, past the grace
deadline, cancel them — and stop the pool.  Nothing accepted is ever
silently lost; every job ends DONE, FAILED, TIMEOUT or CANCELLED.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments import trace_cache
from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    JobSpec,
    ParallelRunner,
    ResultCache,
    result_from_jsonable,
)
from repro.sim.statistics import StatRegistry
from repro.errors import ConfigurationError
from repro.serve.jobs import Job, JobBoard, JobState
from repro.serve.pool import PoolOutcome, WorkerPool


class ServeError(Exception):
    """Base class for serving-layer failures."""


class ServiceSaturated(ServeError):
    """The backlog is at capacity; retry after ``retry_after_s`` seconds."""

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"job backlog is at capacity; retry after {retry_after_s:.1f} s"
        )
        self.retry_after_s = retry_after_s


class ServiceDraining(ServeError):
    """The service is shutting down and no longer admits jobs."""

    def __init__(self):
        super().__init__("service is draining; submit to another instance")


@dataclass
class ServiceConfig:
    """Everything a service instance needs to know at start-up."""

    #: Persistent worker processes in the pool.
    workers: int = 2
    #: Max active (queued + running) jobs before admission answers 429.
    queue_depth: int = 16
    cache_dir: Path | None = DEFAULT_CACHE_DIR
    #: LRU byte budget for the persistent cache (None: unbounded).
    cache_bytes: int | None = None
    #: Default per-job timeout when a submission does not carry one.
    default_timeout_s: float | None = 300.0
    #: What a 429 tells clients to wait (scaled by backlog fullness).
    retry_after_s: float = 1.0
    #: How long :meth:`SimulationService.drain` waits before cancelling
    #: the jobs that are still queued or running.
    drain_grace_s: float = 30.0
    #: How many times a job is requeued after its worker process dies
    #: mid-run before the job is FAILED.
    max_requeues: int = 2
    #: How many checkpoint-and-requeue slices a job may consume before it
    #: resolves to TIMEOUT (only meaningful with a cache directory).
    max_preemptions: int = 8
    #: Safety-net padding past a preemptible job's budget before the
    #: supervisor falls back to killing the worker.
    preempt_grace_s: float = 10.0

    def __post_init__(self) -> None:
        self.workers = max(1, int(self.workers))
        self.queue_depth = max(1, int(self.queue_depth))
        self.max_requeues = max(0, int(self.max_requeues))
        self.max_preemptions = max(0, int(self.max_preemptions))
        self.preempt_grace_s = max(0.0, float(self.preempt_grace_s))
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)


class SimulationService:
    """Accepts JobSpecs, executes them through the pooled fleet, keeps score.

    Construct, then ``await start()`` on the serving event loop; every
    other method must be called on that same loop (the HTTP layer does).
    The pool's supervisor thread reports worker events back onto the loop
    through ``run_coroutine_threadsafe``, so the
    :class:`~repro.serve.jobs.JobBoard` only ever mutates on the loop.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        cache = None
        if self.config.cache_dir is not None:
            cache = ResultCache(
                self.config.cache_dir, max_bytes=self.config.cache_bytes
            )
        # The front-end trace cache shares the result cache's directory and
        # byte budget; worker processes configure the same cache, so
        # repeated jobs skip trace generation entirely.
        trace_cache.sync(
            enabled=self.config.cache_dir is not None,
            directory=self.config.cache_dir or DEFAULT_CACHE_DIR,
            max_bytes=self.config.cache_bytes,
        )
        self.runner = ParallelRunner(workers=1, cache=cache)
        self.board: JobBoard | None = None
        self.stats = StatRegistry()
        self.started_at: float | None = None
        self.draining = False
        self._pool: WorkerPool | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        #: digest -> the job a worker is (or will be) simulating.
        self._inflight: dict[str, Job] = {}
        #: digest -> jobs coalescing onto the in-flight leader.
        self._followers: dict[str, list[Job]] = {}
        self._sim_events_total = 0
        self._sim_wall_ms_total = 0.0
        self._trace_cache_hits_total = 0
        self._trace_cache_misses_total = 0
        self._checkpoint_hits_total = 0
        self._checkpoint_misses_total = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Create the board and spawn the worker pool (idempotent)."""
        if self._pool is not None:
            return
        self.board = JobBoard()
        self._loop = asyncio.get_running_loop()
        self._pool = WorkerPool(
            workers=self.config.workers,
            cache_dir=self.config.cache_dir,
            cache_bytes=self.config.cache_bytes,
            on_running=self._pool_running,
            on_outcome=self._pool_outcome,
            on_requeue=self._pool_requeue,
            on_preempted=self._pool_preempted,
            max_requeues=self.config.max_requeues,
            max_preemptions=self.config.max_preemptions,
            preempt_grace_s=self.config.preempt_grace_s,
        ).start()
        self.started_at = time.monotonic()

    async def drain(self, grace_s: float | None = None) -> None:
        """Graceful shutdown: stop admitting, finish (or cancel) every job.

        Waits up to ``grace_s`` (default: the config's ``drain_grace_s``)
        for the backlog and in-flight jobs to finish.  Whatever is still
        alive past the deadline is cancelled — and therefore recorded as
        CANCELLED, not lost.  Finally the worker pool is stopped and its
        processes joined.
        """
        if self._pool is None:
            self.draining = self.board is not None or self.draining
            return
        self.draining = True
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        await self._settle(grace)
        for job in self.board.jobs():
            if not job.state.terminal:
                await self.cancel(job)
        await self._settle(10.0)
        pool, self._pool = self._pool, None
        pool.stop()

    async def _settle(self, grace_s: float) -> bool:
        """Wait up to ``grace_s`` for every known job to reach terminal."""
        deadline = time.monotonic() + max(0.0, grace_s)
        for job in self.board.jobs():
            if job.state.terminal:
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            if not await self.board.wait(job, timeout_s=remaining):
                return False
        return True

    # -- admission -----------------------------------------------------------

    def submit(self, spec: JobSpec, timeout_s: float | None = None) -> Job:
        """Admit one spec as a new job, or refuse without side effects.

        Raises :class:`ServiceDraining` during shutdown and
        :class:`ServiceSaturated` when the active backlog (queued plus
        running jobs) is at ``queue_depth`` — backpressure; the caller
        should retry after ``retry_after_s``.
        """
        if self.draining:
            raise ServiceDraining()
        if self.board is None or self._pool is None:
            raise ServeError("service is not started")
        serve = self.stats.group("serve")
        if self.board.active >= self.config.queue_depth:
            serve.add("rejected_saturated")
            raise ServiceSaturated(self._retry_after())
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        job = self.board.create(spec, timeout_s=timeout_s)
        serve.add("submitted")
        self._route(job)
        return job

    def _retry_after(self) -> float:
        """Backpressure hint: one base interval per active job."""
        active = 0 if self.board is None else self.board.active
        return round(self.config.retry_after_s * max(1, active), 3)

    async def cancel(self, job: Job) -> bool:
        """Cancel a queued or running job; False when it already finished.

        Followers and pool-queued jobs flip straight to CANCELLED.  For a
        job already on a worker, the pool kills the worker process and the
        supervisor reports the CANCELLED outcome shortly after.
        """
        if job.state.terminal:
            return False
        serve = self.stats.group("serve")
        job.cancel.set()
        followers = self._followers.get(job.digest)
        if followers is not None and job in followers:
            followers.remove(job)
            await self.board.advance(
                job, JobState.CANCELLED, error="cancelled while queued"
            )
            serve.add("cancelled")
            return True
        if self._inflight.get(job.digest) is job and self._pool is not None:
            if self._pool.cancel(job) == "queued":
                self._inflight.pop(job.digest, None)
                await self.board.advance(
                    job, JobState.CANCELLED, error="cancelled while queued"
                )
                serve.add("cancelled")
                for follower in self._followers.pop(job.digest, []):
                    self._route(follower)
            # "running": the supervisor kills the worker and reports the
            # cancelled outcome; "missing": its outcome is already in
            # flight and the cancel event decides at completion time.
        return True

    # -- routing and completion ----------------------------------------------

    def _route(self, job: Job) -> None:
        """Send one accepted job down the cheapest path that resolves it.

        Follower (a leader is in flight for the digest) -> coalesce;
        cache hit -> complete on the loop; otherwise the job becomes the
        digest's leader and is dispatched to the pool.
        """
        if job.state.terminal:
            return
        if job.cancel.is_set():
            self._spawn_task(self._finish_cancelled_early(job))
            return
        leader = self._inflight.get(job.digest)
        if leader is not None:
            self._followers.setdefault(job.digest, []).append(job)
            return
        result, source = self.runner.lookup(job.spec)
        if result is not None:
            self._spawn_task(self._finish_cached(job, result, source))
            return
        if self._pool is None:
            self._spawn_task(
                self._finish_failed(job, "service stopped before execution")
            )
            return
        self._inflight[job.digest] = job
        try:
            self._pool.dispatch(job)
        except RuntimeError:
            self._inflight.pop(job.digest, None)
            self._spawn_task(
                self._finish_failed(job, "service stopped before execution")
            )

    def _spawn_task(self, coroutine) -> None:
        """Run a completion coroutine as a task on the serving loop."""
        asyncio.get_running_loop().create_task(coroutine)

    async def _finish_cancelled_early(self, job: Job) -> None:
        """Record a job cancelled before it ever reached a worker."""
        if job.state.terminal:
            return
        await self.board.advance(
            job, JobState.CANCELLED, error="cancelled while queued"
        )
        self.stats.group("serve").add("cancelled")

    async def _finish_failed(self, job: Job, error: str) -> None:
        """Record a job the service could not hand to the pool."""
        if job.state.terminal:
            return
        await self.board.advance(job, JobState.FAILED, error=error)
        self.stats.group("serve").add("failed")

    async def _finish_cached(self, job: Job, result, source: str) -> None:
        """Complete a cache hit on the loop (no worker involved)."""
        serve = self.stats.group("serve")
        if job.state.terminal:
            return
        if job.cancel.is_set():
            await self.board.advance(
                job, JobState.CANCELLED, error="cancelled while queued"
            )
            serve.add("cancelled")
            return
        await self.board.advance(job, JobState.RUNNING)
        await self.board.advance(job, JobState.DONE, source=source, result=result)
        serve.add("completed")
        serve.add(f"hits_{source}")

    async def _finish_pooled(self, job: Job, outcome: PoolOutcome) -> None:
        """Record a pool outcome for a leader; resolve its followers."""
        serve = self.stats.group("serve")
        if self._inflight.get(job.digest) is job:
            self._inflight.pop(job.digest, None)
        followers = self._followers.pop(job.digest, [])
        if outcome.status == "ok":
            result = result_from_jsonable(outcome.result_payload)
            # The worker already persisted the entry; only the in-process
            # memory layer needs feeding here.
            self.runner.memory[job.digest] = result
            if outcome.source == "simulated":
                self._sim_events_total += outcome.sim_events
                self._sim_wall_ms_total += outcome.wall_ms
                self._trace_cache_hits_total += outcome.trace_cache_hits
                self._trace_cache_misses_total += outcome.trace_cache_misses
                self._checkpoint_hits_total += outcome.checkpoint_hits
                self._checkpoint_misses_total += outcome.checkpoint_misses
            # Adding onto the job's own counters keeps a preempted job's
            # record cumulative across its slices (identity for the rest).
            await self.board.advance(
                job,
                JobState.DONE,
                source=outcome.source,
                result=result,
                wall_ms=job.wall_ms + outcome.wall_ms,
                sim_events=job.sim_events + outcome.sim_events,
            )
            serve.add("completed")
            if outcome.source == "simulated":
                serve.add("simulations")
            else:
                serve.add(f"hits_{outcome.source}")
            for follower in followers:
                if follower.state.terminal:
                    continue
                if follower.cancel.is_set():
                    await self.board.advance(
                        follower, JobState.CANCELLED, error="cancelled while queued"
                    )
                    serve.add("cancelled")
                    continue
                await self.board.advance(follower, JobState.RUNNING)
                await self.board.advance(
                    follower, JobState.DONE, source="coalesced", result=result
                )
                serve.add("completed")
                serve.add("hits_coalesced")
            return
        state = {
            "timeout": JobState.TIMEOUT,
            "cancelled": JobState.CANCELLED,
        }.get(outcome.status, JobState.FAILED)
        await self.board.advance(
            job, state, error=outcome.error, wall_ms=job.wall_ms + outcome.wall_ms
        )
        serve.add(
            {"timeout": "timeouts", "cancelled": "cancelled"}.get(
                outcome.status, "failed"
            )
        )
        # The leader never produced a result: re-route every follower so
        # one of them becomes the new leader (or hits the cache).
        for follower in followers:
            self._route(follower)

    # -- pool callbacks (supervisor thread -> event loop) ----------------------

    def _schedule(self, coroutine) -> None:
        """Bridge a pool-thread event onto the serving loop, tolerantly."""
        loop = self._loop
        if loop is None or loop.is_closed():
            coroutine.close()
            return
        try:
            asyncio.run_coroutine_threadsafe(coroutine, loop)
        except RuntimeError:  # pragma: no cover - loop shut down mid-call
            coroutine.close()

    def _pool_running(self, job: Job, worker_index: int) -> None:
        """Pool callback: a worker started simulating ``job``."""
        self._schedule(self.board.advance(job, JobState.RUNNING))

    def _pool_requeue(self, job: Job) -> None:
        """Pool callback: ``job`` lost its worker and went back in queue."""
        self._schedule(self._mark_requeued(job))

    async def _mark_requeued(self, job: Job) -> None:
        """Record a crash-requeue on the board and the counters."""
        self.stats.group("serve").add("requeued")
        await self.board.advance(job, JobState.QUEUED)

    def _pool_outcome(self, job: Job, outcome: PoolOutcome) -> None:
        """Pool callback: ``job`` finished (ok/failed/timeout/cancelled)."""
        self._schedule(self._finish_pooled(job, outcome))

    def _pool_preempted(
        self, job: Job, events: int, wall_ms: float, ckpt_hits: int, ckpt_misses: int
    ) -> None:
        """Pool callback: ``job`` was checkpointed at its budget, requeued."""
        self._schedule(
            self._mark_preempted(job, events, wall_ms, ckpt_hits, ckpt_misses)
        )

    async def _mark_preempted(
        self, job: Job, events: int, wall_ms: float, ckpt_hits: int, ckpt_misses: int
    ) -> None:
        """Record one preemption slice: counters plus the PREEMPTED state.

        The slice's kernel events and wall-clock fold into the simulation
        totals as they happen, so a long job's progress is visible in
        ``/metrics`` while it is still being resumed slice after slice.
        """
        self.stats.group("serve").add("preempted")
        self._sim_events_total += events
        self._sim_wall_ms_total += wall_ms
        self._checkpoint_hits_total += ckpt_hits
        self._checkpoint_misses_total += ckpt_misses
        job.sim_events += events
        job.wall_ms += wall_ms
        await self.board.advance(job, JobState.PREEMPTED)

    # -- observability -------------------------------------------------------

    def metrics(self) -> dict:
        """Live service metrics (what ``GET /metrics`` serves).

        Combines job counters, backlog gauges, worker-fleet health (per
        worker: pid, state, completed jobs, restarts), cache effectiveness
        and the simulation kernel's events/sec.  Every key is documented
        in ``docs/serving.md``.
        """
        counters = self.stats.as_dict()
        completed = counters.get("serve.completed", 0.0)
        simulations = counters.get("serve.simulations", 0.0)
        hits = completed - simulations
        uptime = (
            0.0 if self.started_at is None else time.monotonic() - self.started_at
        )
        sim_wall_s = self._sim_wall_ms_total / 1000.0
        trace_lookups = self._trace_cache_hits_total + self._trace_cache_misses_total
        if self._pool is not None:
            fleet = self._pool.snapshot()
        else:
            fleet = {
                "queued": 0,
                "running": 0,
                "workers_online": 0,
                "restarts_total": 0,
                "kills_total": 0,
                "requeues_total": 0,
                "preemptions_total": 0,
                "workers": [],
            }
        checkpoint_probes = self._checkpoint_hits_total + self._checkpoint_misses_total
        return {
            "state": "draining" if self.draining else "running",
            "uptime_s": round(uptime, 3),
            "workers": self.config.workers,
            "workers_online": fleet["workers_online"],
            "worker_restarts": fleet["restarts_total"],
            "worker_kills": fleet["kills_total"],
            "job_requeues": fleet["requeues_total"],
            "job_preemptions": fleet["preemptions_total"],
            "queue_depth": fleet["queued"],
            "queue_capacity": self.config.queue_depth,
            "jobs_active": 0 if self.board is None else self.board.active,
            "jobs_in_flight": fleet["running"],
            "jobs_coalescing": sum(len(jobs) for jobs in self._followers.values()),
            "jobs_known": 0 if self.board is None else len(self.board),
            "workers_detail": fleet["workers"],
            "counters": {key: value for key, value in sorted(counters.items())},
            "cache_hits": hits,
            "cache_hit_ratio": round(hits / completed, 4) if completed else 0.0,
            "sim_events_total": self._sim_events_total,
            "sim_wall_s_total": round(sim_wall_s, 3),
            "sim_events_per_sec": (
                round(self._sim_events_total / sim_wall_s, 1) if sim_wall_s else 0.0
            ),
            "trace_cache_hits": self._trace_cache_hits_total,
            "trace_cache_misses": self._trace_cache_misses_total,
            "trace_cache_hit_ratio": (
                round(self._trace_cache_hits_total / trace_lookups, 4)
                if trace_lookups
                else 0.0
            ),
            "checkpoint_hits": self._checkpoint_hits_total,
            "checkpoint_misses": self._checkpoint_misses_total,
            "checkpoint_hit_ratio": (
                round(self._checkpoint_hits_total / checkpoint_probes, 4)
                if checkpoint_probes
                else 0.0
            ),
        }


def decode_submission(payload: dict) -> tuple[JobSpec, float | None]:
    """Decode a ``POST /jobs`` body into ``(spec, timeout_s)``.

    The body is JobSpec-shaped (``benchmark``, ``level``, optional
    ``machine``/``num_requests``/``seed``/``cores``) with one service-level
    extra: ``timeout_s``.  Raises
    :class:`~repro.errors.ConfigurationError` on anything malformed.
    """
    from repro.experiments.executor import spec_from_jsonable

    if not isinstance(payload, dict):
        raise ConfigurationError("job submission must be a JSON object")
    payload = dict(payload)
    timeout_s = payload.pop("timeout_s", None)
    if timeout_s is not None:
        try:
            timeout_s = float(timeout_s)
        except (TypeError, ValueError):
            raise ConfigurationError("timeout_s must be a number") from None
        if timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
    return spec_from_jsonable(payload), timeout_s
