"""The ``python -m repro serve`` entry point: flags, signals, serve loop.

Runs the simulation service — a supervisor plus ``--workers`` persistent
simulation worker processes — in the foreground until SIGTERM/SIGINT,
then drains: admission stops (503), queued and running jobs finish (or
are cancelled past the grace period), the pool is stopped, and the
process exits 0.  Flags mirror the experiment runner's cache knobs so a
service and one-shot CLI runs can share one cache directory — a result
simulated for a remote client makes the next ``repro table3`` a cache
hit, and vice versa.  Worker processes share that same directory; their
concurrent LRU evictions are serialized by the cache's single-evictor
file lease.

See ``docs/serving.md`` for the operator's manual: worker sizing, the
full HTTP API, and what every ``/metrics`` key means.
"""

from __future__ import annotations

import argparse
import asyncio
import signal

from repro.experiments.executor import DEFAULT_CACHE_DIR
from repro.serve.http import start_http_server
from repro.serve.service import ServiceConfig, SimulationService


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the serve flags to a parser (shared with ``python -m repro``)."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8787, help="TCP port (0 picks an ephemeral one)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="persistent simulation worker processes (size to CPU cores)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="max active (queued + running) jobs before admission answers 429",
    )
    parser.add_argument(
        "--cache-dir",
        default=str(DEFAULT_CACHE_DIR),
        help="persistent result cache directory shared with the CLI sweeps",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without a persistent cache (in-memory hits only)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="byte budget for the persistent cache (LRU eviction on write)",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=300.0,
        help="default per-job timeout; jobs may override per submission",
    )
    parser.add_argument(
        "--drain-grace-s",
        type=float,
        default=30.0,
        help="how long shutdown waits for in-flight jobs before cancelling",
    )
    parser.add_argument(
        "--max-requeues",
        type=int,
        default=2,
        help="requeues allowed when a worker process dies mid-job",
    )
    parser.add_argument(
        "--max-preemptions",
        type=int,
        default=8,
        help=(
            "checkpoint-and-requeue slices a job may consume before it "
            "times out (needs the persistent cache)"
        ),
    )


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    """A :class:`ServiceConfig` from parsed :func:`add_serve_arguments` flags."""
    return ServiceConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_dir=None if args.no_cache else args.cache_dir,
        cache_bytes=args.cache_bytes,
        default_timeout_s=args.timeout_s,
        drain_grace_s=args.drain_grace_s,
        max_requeues=args.max_requeues,
        max_preemptions=args.max_preemptions,
    )


async def serve_until_signalled(
    config: ServiceConfig, host: str, port: int
) -> None:
    """Serve until SIGTERM/SIGINT, then drain gracefully."""
    service = SimulationService(config)
    await service.start()
    server = await start_http_server(service, host=host, port=port)
    bound_port = server.sockets[0].getsockname()[1]
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - win32
            pass
    cache = "disabled" if config.cache_dir is None else str(config.cache_dir)
    print(
        f"repro.serve listening on http://{host}:{bound_port} "
        f"(workers={config.workers}, queue-depth={config.queue_depth}, "
        f"cache={cache})",
        flush=True,
    )
    await stop.wait()
    print("repro.serve draining...", flush=True)
    server.close()
    await server.wait_closed()
    await service.drain()
    print("repro.serve stopped.", flush=True)


def run_from_args(args: argparse.Namespace) -> None:
    """Handler for the ``python -m repro serve`` subcommand."""
    asyncio.run(serve_until_signalled(config_from_args(args), args.host, args.port))


def main(argv: list[str] | None = None) -> None:
    """Stand-alone entry point (``python -m repro.serve.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro serve", description=__doc__
    )
    add_serve_arguments(parser)
    run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    main()
