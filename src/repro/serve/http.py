"""A stdlib-only asyncio HTTP/1.1 front end for the simulation service.

No framework: connections are ``asyncio.start_server`` streams, requests
are parsed with a small strict reader (request line, headers,
``Content-Length`` body, 1 MiB cap), and every response closes the
connection — the protocol surface a retrying client actually needs, and
nothing more.

Routes::

    GET    /healthz           liveness + drain state
    GET    /metrics           live service metrics (see SimulationService.metrics)
    GET    /schemes           the protection-scheme registry, wire-format
    GET    /attacks           the attacker registry, wire-format
    GET    /jobs              every known job (summaries, no result payloads)
    POST   /jobs              submit a JobSpec-shaped JSON body -> 202 + job
                              (429 + Retry-After when saturated, 503 draining)
    GET    /jobs/<id>         one job, result included when done
                              (?wait_s=N long-polls for completion)
    GET    /jobs/<id>/events  progress stream: one JSON line per transition
    DELETE /jobs/<id>         cancel a queued or running job

Error bodies are JSON: ``{"error": "..."}`` with the matching status code.

The front end is a thin shell: every route delegates to
:class:`~repro.serve.service.SimulationService`, which runs jobs on its
supervised pool of persistent worker processes.  ``docs/serving.md``
documents this surface for operators — every endpoint, status code,
``Retry-After`` semantics, and the full ``/metrics`` key table.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

from repro.attacks import available_attackers
from repro.errors import ConfigurationError
from repro.schemes import available_schemes
from repro.serve.service import (
    ServiceDraining,
    ServiceSaturated,
    SimulationService,
    decode_submission,
)

#: Largest request body the server will read.
MAX_BODY_BYTES = 1 << 20

#: HTTP reason phrases for the statuses this API emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes

    def json(self):
        """The body decoded as JSON (raises ``ConfigurationError`` politely)."""
        if not self.body:
            raise ConfigurationError("request body must be a JSON object")
        try:
            return json.loads(self.body)
        except ValueError:
            raise ConfigurationError("request body is not valid JSON") from None

    def query_float(self, name: str) -> float | None:
        """A float query parameter, or None when absent/malformed."""
        values = self.query.get(name)
        if not values:
            return None
        try:
            return float(values[0])
        except ValueError:
            return None


@dataclass
class Response:
    """One JSON response: status, payload, extra headers."""

    status: int
    payload: dict | list
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        """The full HTTP/1.1 wire form of this response."""
        body = (json.dumps(self.payload, indent=1) + "\n").encode("utf-8")
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines += [f"{name}: {value}" for name, value in self.headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


class BadRequest(Exception):
    """A request the parser refuses to interpret."""


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; None on a cleanly closed socket."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise BadRequest("malformed header line")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequest("malformed Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise BadRequest(f"body larger than {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return Request(
        method=method,
        path=split.path.rstrip("/") or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


class HttpApi:
    """Routes HTTP requests onto a :class:`SimulationService`."""

    def __init__(self, service: SimulationService):
        self.service = service

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: one request, one response, close."""
        try:
            try:
                request = await _read_request(reader)
            except (BadRequest, asyncio.IncompleteReadError) as error:
                await self._write(writer, Response(400, {"error": str(error)}))
                return
            if request is None:
                return
            if request.method == "GET" and self._is_events_path(request.path):
                await self._stream_events(request, writer)
                return
            try:
                response = await self.dispatch(request)
            except ConfigurationError as error:
                response = Response(400, {"error": str(error)})
            except ServiceSaturated as error:
                response = Response(
                    429,
                    {"error": str(error), "retry_after_s": error.retry_after_s},
                    headers={"Retry-After": f"{error.retry_after_s:g}"},
                )
            except ServiceDraining as error:
                response = Response(503, {"error": str(error)})
            except Exception as error:  # pragma: no cover - defensive
                response = Response(500, {"error": f"internal error: {error!r}"})
            await self._write(writer, response)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _write(self, writer: asyncio.StreamWriter, response: Response) -> None:
        try:
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass

    # -- routing -------------------------------------------------------------

    @staticmethod
    def _is_events_path(path: str) -> bool:
        parts = path.strip("/").split("/")
        return len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events"

    async def dispatch(self, request: Request) -> Response:
        """Route one parsed request; exceptions map to error responses."""
        parts = [part for part in request.path.strip("/").split("/") if part]
        if request.path == "/healthz":
            return self._healthz(request)
        if request.path == "/metrics":
            return self._metrics(request)
        if request.path == "/schemes":
            return self._schemes(request)
        if request.path == "/attacks":
            return self._attacks(request)
        if parts[:1] == ["jobs"]:
            if len(parts) == 1:
                if request.method == "POST":
                    return self._submit(request)
                if request.method == "GET":
                    return self._list_jobs(request)
                return Response(405, {"error": "use GET or POST on /jobs"})
            if len(parts) == 2:
                if request.method == "GET":
                    return await self._get_job(request, parts[1])
                if request.method == "DELETE":
                    return await self._cancel_job(request, parts[1])
                return Response(405, {"error": "use GET or DELETE on /jobs/<id>"})
        return Response(404, {"error": f"no route for {request.path}"})

    def _require_get(self, request: Request) -> Response | None:
        if request.method != "GET":
            return Response(405, {"error": f"{request.path} only supports GET"})
        return None

    def _healthz(self, request: Request) -> Response:
        """Liveness: 200 while serving, 503 once draining."""
        refusal = self._require_get(request)
        if refusal is not None:
            return refusal
        if self.service.draining:
            return Response(503, {"status": "draining"})
        return Response(200, {"status": "ok"})

    def _metrics(self, request: Request) -> Response:
        refusal = self._require_get(request)
        if refusal is not None:
            return refusal
        return Response(200, self.service.metrics())

    def _schemes(self, request: Request) -> Response:
        refusal = self._require_get(request)
        if refusal is not None:
            return refusal
        return Response(
            200, {"schemes": [scheme.to_jsonable() for scheme in available_schemes()]}
        )

    def _attacks(self, request: Request) -> Response:
        refusal = self._require_get(request)
        if refusal is not None:
            return refusal
        return Response(
            200,
            {"attacks": [attacker.to_jsonable() for attacker in available_attackers()]},
        )

    def _submit(self, request: Request) -> Response:
        spec, timeout_s = decode_submission(request.json())
        job = self.service.submit(spec, timeout_s=timeout_s)
        return Response(202, job.to_jsonable(include_result=False))

    def _list_jobs(self, request: Request) -> Response:
        jobs = [
            job.to_jsonable(include_result=False) for job in self.service.board.jobs()
        ]
        return Response(200, {"jobs": jobs})

    async def _get_job(self, request: Request, job_id: str) -> Response:
        job = self.service.board.get(job_id)
        if job is None:
            return Response(404, {"error": f"unknown job {job_id!r}"})
        wait_s = request.query_float("wait_s")
        if wait_s is not None and not job.state.terminal:
            await self.service.board.wait(job, timeout_s=min(wait_s, 300.0))
        return Response(200, job.to_jsonable())

    async def _cancel_job(self, request: Request, job_id: str) -> Response:
        job = self.service.board.get(job_id)
        if job is None:
            return Response(404, {"error": f"unknown job {job_id!r}"})
        cancelled = await self.service.cancel(job)
        if not cancelled:
            return Response(
                409,
                {
                    "error": f"job already {job.state.value}",
                    "job": job.to_jsonable(include_result=False),
                },
            )
        return Response(202, job.to_jsonable(include_result=False))

    # -- progress streaming ----------------------------------------------------

    async def _stream_events(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /jobs/<id>/events``: newline-delimited JSON state stream.

        Emits every recorded transition immediately, then one line per new
        transition until the job is terminal.  The body is close-delimited
        (``Connection: close``), so any HTTP/1.1 client can consume it
        line by line.
        """
        job_id = request.path.strip("/").split("/")[1]
        job = self.service.board.get(job_id)
        if job is None:
            response = Response(404, {"error": f"unknown job {job_id!r}"})
            await self._write(writer, response)
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii"))
            emitted = 0
            while True:
                transitions = list(job.transitions)
                for when, state in transitions[emitted:]:
                    line = {"id": job.id, "t": when, "state": state}
                    if state == job.state.value and job.state.terminal:
                        line["source"] = job.source
                        line["error"] = job.error
                    writer.write((json.dumps(line) + "\n").encode("utf-8"))
                emitted = len(transitions)
                await writer.drain()
                if job.state.terminal:
                    return
                await self.service.board.wait(
                    job, timeout_s=30.0, seen_transitions=emitted
                )
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass


async def start_http_server(
    service: SimulationService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Start serving ``service`` over HTTP; returns the asyncio server.

    ``port=0`` binds an ephemeral port; read the real one off
    ``server.sockets[0].getsockname()[1]``.
    """
    api = HttpApi(service)
    return await asyncio.start_server(api.handle_connection, host=host, port=port)
