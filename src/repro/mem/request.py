"""Memory request types shared across the whole stack.

A :class:`MemoryRequest` is the unit of work below the LLC: a 64-byte block
read or write.  The same object flows from the core model, through the
optional ObfusMem controller (which wraps it in encrypted bus packets), into
the channel scheduler and PCM device.  Timestamps are filled in along the
way so latency is measurable at every boundary.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

BLOCK_SIZE_BYTES = 64
BLOCK_OFFSET_BITS = 6

_request_ids = itertools.count()


def _next_request_id() -> int:
    """Allocate the next process-wide request id.

    A function (not the bound ``__next__`` of one counter object) so that
    :func:`ensure_request_ids_above` can swap the counter out when a
    checkpointed simulation is restored in another process.
    """
    return next(_request_ids)


def request_id_watermark() -> int:
    """An id strictly greater than every request id allocated so far.

    Checkpoints record this so a restore in a *different* process — whose
    own counter may be far behind — can call
    :func:`ensure_request_ids_above` and never mint an id that collides
    with one carried inside the checkpoint (cores track dependent reads by
    request id; a collision could wake the wrong stall).
    """
    return next(_request_ids)


def ensure_request_ids_above(watermark: int) -> None:
    """Advance the process-wide id counter to at least ``watermark``."""
    global _request_ids
    current = next(_request_ids)
    _request_ids = itertools.count(max(current, int(watermark)) + 1)


class RequestType(enum.Enum):
    """Block-level request type as seen below the LLC."""

    READ = "read"
    WRITE = "write"

    @property
    def opposite(self) -> "RequestType":
        return RequestType.WRITE if self is RequestType.READ else RequestType.READ


@dataclass(slots=True)
class MemoryRequest:
    """A 64-byte block request.

    Attributes
    ----------
    address:
        Byte address, block aligned (low 6 bits zero).
    request_type:
        READ or WRITE.
    payload:
        Optional 64-byte data for writes / filled on read completion.  The
        timing-only experiment path leaves this ``None``; the functional
        full-stack path carries real bytes end to end.
    is_dummy:
        True for obfuscation dummies injected by ObfusMem.  Dummies are
        indistinguishable on the wire; this flag exists only inside the
        trusted perimeter (and for accounting).
    droppable:
        For dummies only: True when the memory side may drop the request on
        arrival (the FIXED dummy-address design).  The RANDOM/ORIGINAL
        ablation policies generate non-droppable dummies that really touch
        the array — that cost is exactly what the ablation measures.
    core_id:
        Issuing core, for multi-core traces.
    issue_time_ps / complete_time_ps:
        Filled by the simulator for latency accounting.
    """

    address: int
    request_type: RequestType
    payload: bytes | None = None
    is_dummy: bool = False
    droppable: bool = True
    core_id: int = 0
    request_id: int = field(default_factory=_next_request_id)
    issue_time_ps: int | None = None
    complete_time_ps: int | None = None

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ConfigurationError(f"negative address {self.address:#x}")
        if self.address % BLOCK_SIZE_BYTES:
            raise ConfigurationError(
                f"address {self.address:#x} is not {BLOCK_SIZE_BYTES}-byte aligned"
            )
        if self.payload is not None and len(self.payload) != BLOCK_SIZE_BYTES:
            raise ConfigurationError(
                f"payload must be {BLOCK_SIZE_BYTES} bytes, got {len(self.payload)}"
            )

    @property
    def is_read(self) -> bool:
        return self.request_type is RequestType.READ

    @property
    def is_write(self) -> bool:
        return self.request_type is RequestType.WRITE

    @property
    def block_index(self) -> int:
        """Block number (address without the intra-block offset)."""
        return self.address >> BLOCK_OFFSET_BITS

    @property
    def latency_ps(self) -> int:
        """End-to-end latency once completed."""
        if self.issue_time_ps is None or self.complete_time_ps is None:
            raise ConfigurationError("request has not completed yet")
        return self.complete_time_ps - self.issue_time_ps


def block_aligned(address: int) -> int:
    """Round a byte address down to its containing block."""
    return address & ~(BLOCK_SIZE_BYTES - 1)
