"""Start-Gap wear leveling (Qureshi et al., MICRO 2009).

§2.2 motivates ObfusMem with the trend toward smart NVM modules whose
logic layers already host wear-leveling, scheduling and remapping logic —
Figure 1's PCM DIMM controller.  This module implements the canonical
Start-Gap scheme at row granularity so the PCM device can spread writes:

* the region has N logical rows over N+1 physical rows, one of which is the
  *gap*;
* every ``gap_write_interval`` row writes, the gap moves down by one
  position (copying its neighbour, which costs one extra row write);
* once the gap has traversed the whole region, ``start`` advances, and over
  time every logical row visits every physical row.

The algebraic mapping means no translation table is needed — exactly why
the scheme fits in a DIMM's logic layer.  Interaction with ObfusMem is a
non-event by design: dummy requests are dropped before the array, so they
never advance the gap (the wear-leveling test suite pins this down).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.statistics import StatGroup


class StartGapWearLeveler:
    """Start-Gap remapping over ``num_rows`` logical rows."""

    def __init__(
        self,
        num_rows: int,
        stats: StatGroup,
        gap_write_interval: int = 16,
    ):
        if num_rows < 2:
            raise ConfigurationError("wear leveling needs at least two rows")
        if gap_write_interval < 1:
            raise ConfigurationError("gap write interval must be >= 1")
        self.num_rows = num_rows
        self.num_physical_rows = num_rows + 1
        self.gap_write_interval = gap_write_interval
        self.stats = stats
        # Gap starts below the region (position N); start at 0.
        self._start = 0
        self._gap = num_rows
        self._writes_since_move = 0

    @property
    def start(self) -> int:
        return self._start

    @property
    def gap(self) -> int:
        return self._gap

    def physical_row(self, logical_row: int) -> int:
        """Translate a logical row to its current physical row.

        Qureshi et al.'s algebra: rotate by ``start`` modulo N, then skip
        the gap — the result ranges over the N+1 physical rows minus the
        gap, and is injective for every (start, gap) state.
        """
        if not 0 <= logical_row < self.num_rows:
            raise ConfigurationError(
                f"logical row {logical_row} out of range [0, {self.num_rows})"
            )
        physical = (logical_row + self._start) % self.num_rows
        if physical >= self._gap:
            physical += 1
        return physical

    def note_row_write(self) -> int:
        """Record one row write; returns extra row writes caused by gap
        movement (0 or 1)."""
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_write_interval:
            return 0
        self._writes_since_move = 0
        self._move_gap()
        return 1

    def _move_gap(self) -> None:
        """Move the gap one position (copying the displaced row)."""
        self.stats.add("gap_moves")
        if self._gap == 0:
            # Gap wrapped: one full rotation completed; advance start.
            self._gap = self.num_rows
            self._start = (self._start + 1) % self.num_rows
            self.stats.add("rotations")
        else:
            self._gap -= 1

    @property
    def write_overhead(self) -> float:
        """Fraction of extra writes the leveler itself causes (1/interval)."""
        return 1.0 / self.gap_write_interval


def wear_metrics(row_write_counts: dict, num_rows: int) -> tuple[int, float]:
    """(max writes to any row, normalized imbalance).

    Imbalance is max/mean; 1.0 means perfectly even wear.  Used by the
    wear-leveling tests and the lifetime example.
    """
    if not row_write_counts:
        return 0, 1.0
    total = sum(row_write_counts.values())
    maximum = max(row_write_counts.values())
    mean = total / num_rows
    return maximum, (maximum / mean if mean else 1.0)
