"""Per-channel memory controller: queues, FR-FCFS-style scheduling, bus.

The controller models the three resources whose contention drives the
paper's performance results:

* the **command/address slot** (one request header per ``command_ps``),
* the shared **data bus** (one 64-byte burst per ``t_burst_ps``),
* the **banks** (row activation / dirty write-back serialization).

Real requests touch all three.  ObfusMem dummy requests — once decrypted
inside the trusted memory perimeter — are *dropped before the array*
(paper Observation 2): they occupy command and data bus slots (that is the
whole point: to an observer they are indistinguishable from real traffic)
but never touch a bank, never write a cell, and never wear PCM.

Scheduling is first-ready / first-come-first-served: row-buffer hits are
preferred among reads, reads are prioritized over writes, and writes drain
in batches when their queue crosses a high-water mark, matching common
memory-controller practice and the paper's open-adaptive page policy.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import partial

from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping, DecodedAddress
from repro.mem.bus import BusTransfer, Direction, MemoryBus, TransferKind
from repro.mem.dram_timing import PcmEnergy, PcmTiming
from repro.mem.pcm import PcmDevice
from repro.mem.request import BLOCK_SIZE_BYTES, MemoryRequest, RequestType
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

CompletionCallback = Callable[[MemoryRequest], None]


@dataclass(slots=True)
class _QueuedRequest:
    request: MemoryRequest
    callback: CompletionCallback | None
    enqueue_time_ps: int
    wire_command: bytes | None = None
    wire_data: bytes | None = None
    command_slots: int = 1
    bus_extra_ps: int = 0
    # Enqueue-time caches for the FR-FCFS arbitration loops: decoded device
    # coordinates and the owning bank (non-dummy only — the row-hit scan
    # skips dummies and droppable dummies never touch a bank), plus the
    # direction this request's data burst crosses the bus.
    decoded: DecodedAddress | None = None
    bank: object | None = None
    direction: Direction = Direction.TO_MEMORY


def _plain_wire_command(request: MemoryRequest) -> bytes:
    """Wire encoding of an unprotected command: type byte + address."""
    type_byte = b"\x01" if request.is_write else b"\x00"
    return type_byte + request.address.to_bytes(8, "big")


class ChannelController:
    """Scheduler for one memory channel."""

    def __init__(
        self,
        engine: Engine,
        mapping: AddressMapping,
        channel: int,
        device: PcmDevice,
        timing: PcmTiming,
        stats: StatRegistry,
        bus: MemoryBus | None = None,
        write_queue_high: int = 8,
        write_queue_low: int = 2,
    ):
        if write_queue_low > write_queue_high:
            raise ConfigurationError("write drain low watermark above high watermark")
        self.engine = engine
        self.mapping = mapping
        self.channel = channel
        self.device = device
        self.timing = timing
        self.stats = stats.group(f"channel{channel}")
        self.bus = bus
        # Hot-path bindings: the live counter dict (plain `dict[k] += 1`
        # beats a method call per sample) and lazily-bound histograms.
        self._counters = self.stats.counters()
        self._queue_delay_hist = None
        self._read_latency_hist = None
        self._observed = bus is not None
        self._read_queue: list[_QueuedRequest] = []
        self._write_queue: list[_QueuedRequest] = []
        self._write_queue_high = write_queue_high
        self._write_queue_low = write_queue_low
        self._draining_writes = False
        self._cmd_free_ps = 0
        self._bus_free_ps = 0
        # Wake-on-state-change scheduling: at most one pending wakeup, armed
        # for the earliest time an issue could possibly succeed.
        self._wakeup = None
        self._horizon_ps = self._ISSUE_HORIZON_BURSTS * timing.t_burst_ps
        # Per-issue timing constants, hoisted out of the issue loop.
        self._command_ps = timing.command_ps
        self._t_burst_ps = timing.t_burst_ps
        self._t_turnaround_ps = timing.t_turnaround_ps
        self._t_cl_ps = timing.t_cl_ps
        self._functional = device.is_functional
        self._pending_real_reads = 0
        self._pending_real_writes = 0
        self._last_bus_direction: Direction | None = None

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def enqueue(
        self,
        request: MemoryRequest,
        callback: CompletionCallback | None = None,
        wire_command: bytes | None = None,
        wire_data: bytes | None = None,
        command_slots: int = 1,
        bus_extra_ps: int = 0,
    ) -> None:
        """Accept a request for this channel.

        ``wire_command`` / ``wire_data`` are the bytes a wire observer sees
        (ciphertext when a protection layer sits above); when None, the
        plaintext encoding is used, modelling an unprotected bus.
        ``command_slots`` widens the command transfer (e.g. an appended MAC
        tag occupies a second slot); ``bus_extra_ps`` charges additional
        data-bus occupancy (e.g. a 128-bit tag riding the burst).
        """
        is_dummy = request.is_dummy
        is_read = request.request_type is RequestType.READ
        decoded = None
        if not is_dummy:
            decoded = self.mapping.decode(request.address)
            if decoded.channel != self.channel:
                raise ConfigurationError(
                    f"request {request.address:#x} routed to wrong channel {self.channel}"
                )
        queued = _QueuedRequest(
            request,
            callback,
            self.engine._now_ps,
            wire_command,
            wire_data,
            command_slots,
            bus_extra_ps,
            decoded,
            self.device.bank_state(decoded) if decoded is not None else None,
            Direction.TO_PROCESSOR if is_read else Direction.TO_MEMORY,
        )
        # Dummies must issue promptly, temporally paired with the access
        # they escort — that adjacency is what hides the request type from
        # a timing observer — so they share the priority (read) queue even
        # when they are writes.  Real writes drain lazily as usual.
        if is_read or is_dummy:
            self._read_queue.append(queued)
        else:
            self._write_queue.append(queued)
        counters = self._counters
        if is_dummy:
            counters["dummy_reads" if is_read else "dummy_writes"] += 1
        elif is_read:
            counters["reads"] += 1
            self._pending_real_reads += 1
        else:
            counters["writes"] += 1
            self._pending_real_writes += 1
        self._arm_pump()

    @property
    def pending(self) -> int:
        """Requests currently queued (not yet issued)."""
        return len(self._read_queue) + len(self._write_queue)

    @property
    def pending_real_reads(self) -> int:
        """Queued non-dummy reads — the §3.3 substitution signal."""
        return self._pending_real_reads

    @property
    def pending_real_writes(self) -> int:
        """Queued non-dummy writes — the §3.3 substitution signal."""
        return self._pending_real_writes

    def promote_oldest_write(self) -> bool:
        """Move the oldest queued real write into the priority queue.

        Used by the §3.3 substitution optimization: the promoted write
        becomes the write half of a read-then-write pair, issuing adjacent
        to the read it escorts instead of waiting for a drain batch.
        """
        for index, queued in enumerate(self._write_queue):
            if not queued.request.is_dummy:
                self._read_queue.append(self._write_queue.pop(index))
                self.stats.add("writes_promoted")
                return True
        return False

    @property
    def busy(self) -> bool:
        """True if the channel has queued work or in-flight bus activity.

        This is the signal the ObfusMem-OPT inter-channel injector polls: an
        idle channel needs a dummy, a busy one does not (Observation 3).
        """
        return self.pending > 0 or self._bus_free_ps > self.engine.now_ps

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    # Issue horizon, in data bursts: a real controller keeps only a few
    # transactions in flight; without this bound, the queues would drain
    # instantly into far-future resource reservations and every
    # queue-occupancy policy (write drain, FR-FCFS arbitration, §3.3
    # substitution) would observe empty queues.
    _ISSUE_HORIZON_BURSTS = 8

    def _earliest_issue_ps(self, now: int) -> int:
        """Earliest time an issue could succeed given current reservations.

        An issue needs the command slot free and the data bus within the
        issue horizon; both `_cmd_free_ps` and `_bus_free_ps` only move
        forward, so this bound is exact — waking any earlier could never
        issue, waking exactly here always re-evaluates with fresh queues.
        """
        at = self._cmd_free_ps
        gate = self._bus_free_ps - self._horizon_ps
        if gate > at:
            at = gate
        return at if at > now else now

    def _arm_pump(self) -> None:
        """Arm (at most) one wakeup at the earliest possible issue time.

        Called on every state change that could unblock an issue: a new
        request arriving, or (from :meth:`_pump` itself) the command slot /
        data bus becoming free.  A wakeup already armed at or before the
        target time is left alone; a later one is lazily cancelled.
        """
        engine = self.engine
        now = engine._now_ps
        at = self._cmd_free_ps
        gate = self._bus_free_ps - self._horizon_ps
        if gate > at:
            at = gate
        if at < now:
            at = now
        wakeup = self._wakeup
        if wakeup is not None:
            if wakeup[0] <= at:
                return
            engine.cancel_entry(wakeup)
        self._wakeup = engine.post_entry(at - now, self._pump)

    def _pump(self) -> None:
        self._wakeup = None
        read_queue = self._read_queue
        write_queue = self._write_queue
        engine = self.engine
        horizon = self._horizon_ps
        while read_queue or write_queue:
            now = engine._now_ps
            at = self._cmd_free_ps
            gate = self._bus_free_ps - horizon
            if gate > at:
                at = gate
            if at > now:
                self._wakeup = engine.post_entry(at - now, self._pump)
                return
            queued = self._pick_next()
            if queued is None:
                return
            self._issue(queued)

    # FR-FCFS scan depth: real controllers arbitrate over a bounded window
    # of queue entries, not the whole (potentially deep) queue.
    _ROW_HIT_LOOKAHEAD = 16

    def _row_hit_index(self, queue: list[_QueuedRequest]) -> int | None:
        limit = self._ROW_HIT_LOOKAHEAD
        if len(queue) < limit:
            limit = len(queue)
        for index in range(limit):
            queued = queue[index]
            decoded = queued.decoded
            if decoded is None:  # dummy: no bank, no row to hit
                continue
            if queued.bank.open_row == decoded.row:
                return index
        return None

    def _burst_direction(self, request: MemoryRequest) -> Direction:
        """Which way this request's data burst crosses the bus."""
        return Direction.TO_PROCESSOR if request.is_read else Direction.TO_MEMORY

    def _direction_match_index(
        self, queue: list[_QueuedRequest], lookahead: int = 4
    ) -> int | None:
        """Prefer a request whose burst continues the current bus direction.

        FR-FCFS controllers group same-direction bursts to amortize the
        read/write turnaround; the small lookahead keeps the reordering
        window realistic (and keeps dummy pairing temporally tight).
        """
        last = self._last_bus_direction
        if last is None:
            return None
        if len(queue) < lookahead:
            lookahead = len(queue)
        for index in range(lookahead):
            if queue[index].direction is last:
                return index
        return None

    def _pick_next(self) -> _QueuedRequest | None:
        write_depth = len(self._write_queue)
        if write_depth >= self._write_queue_high:
            self._draining_writes = True
        elif write_depth <= self._write_queue_low:
            self._draining_writes = False
        if self._draining_writes or not self._read_queue:
            queue = self._write_queue or self._read_queue
        else:
            queue = self._read_queue
        if not queue:
            return None
        if len(queue) == 1:
            # Every arbitration rule picks the sole entry.
            return queue.pop()
        hit_index = self._row_hit_index(queue)
        if hit_index is not None:
            return queue.pop(hit_index)
        match_index = self._direction_match_index(queue)
        return queue.pop(match_index if match_index is not None else 0)

    def _emit(
        self,
        time_ps: int,
        kind: TransferKind,
        direction: Direction,
        wire_bytes: bytes,
        request: MemoryRequest,
    ) -> None:
        if self.bus is None:
            return
        self.bus.emit(
            BusTransfer(
                time_ps=time_ps,
                channel=self.channel,
                kind=kind,
                direction=direction,
                wire_bytes=wire_bytes,
                plaintext_address=request.address,
                plaintext_is_write=request.is_write,
                is_dummy=request.is_dummy,
            )
        )

    def _issue(self, queued: _QueuedRequest) -> None:
        request = queued.request
        is_dummy = request.is_dummy
        if not is_dummy:
            if queued.direction is Direction.TO_PROCESSOR:  # read burst
                self._pending_real_reads -= 1
            else:
                self._pending_real_writes -= 1
        engine = self.engine
        now = engine._now_ps
        cmd_free = self._cmd_free_ps
        cmd_start = now if now > cmd_free else cmd_free
        cmd_end = cmd_start + queued.command_slots * self._command_ps
        self._cmd_free_ps = cmd_end
        if self._observed:
            wire_command = queued.wire_command or _plain_wire_command(request)
            self._emit(
                cmd_start, TransferKind.COMMAND, Direction.TO_MEMORY, wire_command, request
            )
        hist = self._queue_delay_hist
        if hist is None:
            hist = self._queue_delay_hist = self.stats.live_histogram("queue_delay_ns")
        hist.record((cmd_start - queued.enqueue_time_ps) / 1000.0)

        if is_dummy and request.droppable:
            complete_ps = self._issue_dummy(queued, cmd_end)
        elif queued.direction is Direction.TO_PROCESSOR:  # read
            complete_ps = self._issue_read(queued, cmd_end)
        else:
            complete_ps = self._issue_write(queued, cmd_end)

        # Picklable completion event (bound-method partial, not a closure):
        # it may sit in the heap across a checkpoint.
        engine.post_at(complete_ps, partial(self._finish, queued.callback, request))
        self._counters["requests_serviced"] += 1

    def _finish(
        self, callback: CompletionCallback | None, request: MemoryRequest
    ) -> None:
        """Completion event: stamp the finish time, notify the issuer."""
        request.complete_time_ps = self.engine._now_ps
        if callback is not None:
            callback(request)

    def _reserve_bus(
        self, earliest_ps: int, direction: Direction, extra_ps: int = 0
    ) -> tuple[int, int]:
        """Reserve one data burst starting no earlier than ``earliest_ps``.

        A direction change relative to the previous burst pays the bus
        turnaround penalty (tRTW/tWTR).
        """
        available = self._bus_free_ps
        last = self._last_bus_direction
        if last is not None and last is not direction:
            available += self._t_turnaround_ps
            self._counters["bus_turnarounds"] += 1
        start = earliest_ps if earliest_ps > available else available
        end = start + self._t_burst_ps + extra_ps
        self._bus_free_ps = end
        self._last_bus_direction = direction
        self._counters["bus_bytes"] += BLOCK_SIZE_BYTES
        return start, end

    def _wire_data(self, queued: _QueuedRequest) -> bytes:
        if queued.wire_data is not None:
            return queued.wire_data
        payload = queued.request.payload
        return payload if payload is not None else b"\x00" * BLOCK_SIZE_BYTES

    def _issue_dummy(self, queued: _QueuedRequest, cmd_end_ps: int) -> int:
        """Dummies occupy the bus like real traffic, then are dropped.

        A dummy write carries a data burst to memory that is discarded on
        arrival (no row buffer, no cells).  A dummy read is answered with a
        garbage burst without touching the array.
        """
        request = queued.request
        if queued.direction is Direction.TO_MEMORY:  # dummy write
            burst_start, burst_end = self._reserve_bus(
                cmd_end_ps, Direction.TO_MEMORY, queued.bus_extra_ps
            )
            if self._observed:
                self._emit(
                    burst_start,
                    TransferKind.DATA,
                    Direction.TO_MEMORY,
                    self._wire_data(queued),
                    request,
                )
            self._counters["dummy_writes_dropped"] += 1
        else:
            # Response after the command decodes; no bank access needed.
            burst_start, burst_end = self._reserve_bus(
                cmd_end_ps + self._t_cl_ps,
                Direction.TO_PROCESSOR,
                queued.bus_extra_ps,
            )
            if self._observed:
                self._emit(
                    burst_start,
                    TransferKind.DATA,
                    Direction.TO_PROCESSOR,
                    self._wire_data(queued),
                    request,
                )
            self._counters["dummy_reads_answered"] += 1
        return burst_end

    def _issue_read(self, queued: _QueuedRequest, cmd_end_ps: int) -> int:
        request = queued.request
        # Non-droppable dummies (ORIGINAL/RANDOM policies) reach the array
        # too but skip the enqueue-time decode, so decode lazily here.
        decoded = queued.decoded or self.mapping.decode(request.address)
        bank = queued.bank or self.device.bank_state(decoded)
        access = self.device.access(decoded, is_write=False, bank=bank)
        prep_start = max(cmd_end_ps, bank.busy_until_ps)
        data_ready = prep_start + access.preparation_ps + self._t_cl_ps
        burst_start, burst_end = self._reserve_bus(
            data_ready, Direction.TO_PROCESSOR, queued.bus_extra_ps
        )
        bank.busy_until_ps = burst_end
        if self._functional:
            request.payload = self.device.read_block(request.address)
        if self._observed:
            self._emit(
                burst_start,
                TransferKind.DATA,
                Direction.TO_PROCESSOR,
                self._wire_data(queued),
                request,
            )
        hist = self._read_latency_hist
        if hist is None:
            hist = self._read_latency_hist = self.stats.live_histogram("read_latency_ns")
        hist.record((burst_end - queued.enqueue_time_ps) / 1000.0)
        return burst_end

    def _issue_write(self, queued: _QueuedRequest, cmd_end_ps: int) -> int:
        request = queued.request
        decoded = queued.decoded or self.mapping.decode(request.address)
        bank = queued.bank or self.device.bank_state(decoded)
        access = self.device.access(decoded, is_write=True, bank=bank)
        burst_start, burst_end = self._reserve_bus(
            cmd_end_ps, Direction.TO_MEMORY, queued.bus_extra_ps
        )
        if self._observed:
            self._emit(
                burst_start,
                TransferKind.DATA,
                Direction.TO_MEMORY,
                self._wire_data(queued),
                request,
            )
        prep_start = max(burst_end, bank.busy_until_ps)
        row_ready = prep_start + access.preparation_ps
        bank.busy_until_ps = row_ready
        if self._functional and request.payload is not None:
            self.device.write_block(request.address, request.payload)
        return max(burst_end, row_ready)


class MemorySystem:
    """Multi-channel memory front end: routes requests to channels."""

    def __init__(
        self,
        engine: Engine,
        mapping: AddressMapping,
        stats: StatRegistry,
        timing: PcmTiming | None = None,
        energy: PcmEnergy | None = None,
        bus: MemoryBus | None = None,
        functional: bool = False,
        wear_leveling: bool = False,
        gap_write_interval: int = 16,
    ):
        self.engine = engine
        self.mapping = mapping
        self.timing = timing or PcmTiming()
        self.energy = energy or PcmEnergy()
        self.bus = bus
        self.devices = [
            PcmDevice(
                mapping,
                channel,
                self.timing,
                self.energy,
                stats.group(f"pcm{channel}"),
                functional=functional,
                wear_leveling=wear_leveling,
                gap_write_interval=gap_write_interval,
            )
            for channel in range(mapping.channels)
        ]
        self.channels = [
            ChannelController(
                engine, mapping, channel, self.devices[channel], self.timing, stats, bus
            )
            for channel in range(mapping.channels)
        ]

    def enqueue(
        self,
        request: MemoryRequest,
        callback: CompletionCallback | None = None,
        wire_command: bytes | None = None,
        wire_data: bytes | None = None,
        command_slots: int = 1,
        bus_extra_ps: int = 0,
    ) -> None:
        """Route a request to its channel's controller."""
        channel = self.mapping.channel_of(request.address)
        self.channels[channel].enqueue(
            request, callback, wire_command, wire_data, command_slots, bus_extra_ps
        )

    # Port-compatibility alias: protection layers call ``issue``.
    def issue(
        self,
        request: MemoryRequest,
        callback: CompletionCallback | None = None,
    ) -> None:
        """Port-protocol alias of :meth:`enqueue`."""
        self.enqueue(request, callback)

    def channel_for(self, address: int) -> ChannelController:
        """Controller serving the channel this address maps to."""
        return self.channels[self.mapping.channel_of(address)]

    @property
    def total_cell_writes(self) -> int:
        return sum(device.total_cell_writes for device in self.devices)

    def flush(self) -> int:
        """Flush dirty rows on every device (end-of-run wear accounting)."""
        flushed = 0
        for device in self.devices:
            flushed += device.flush_dirty_rows()
            device.stats.set("max_row_writes", device.max_row_writes)
        return flushed
