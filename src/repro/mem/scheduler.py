"""Per-channel memory controller: queues, FR-FCFS-style scheduling, bus.

The controller models the three resources whose contention drives the
paper's performance results:

* the **command/address slot** (one request header per ``command_ps``),
* the shared **data bus** (one 64-byte burst per ``t_burst_ps``),
* the **banks** (row activation / dirty write-back serialization).

Real requests touch all three.  ObfusMem dummy requests — once decrypted
inside the trusted memory perimeter — are *dropped before the array*
(paper Observation 2): they occupy command and data bus slots (that is the
whole point: to an observer they are indistinguishable from real traffic)
but never touch a bank, never write a cell, and never wear PCM.

Scheduling is first-ready / first-come-first-served: row-buffer hits are
preferred among reads, reads are prioritized over writes, and writes drain
in batches when their queue crosses a high-water mark, matching common
memory-controller practice and the paper's open-adaptive page policy.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import BusTransfer, Direction, MemoryBus, TransferKind
from repro.mem.dram_timing import PcmEnergy, PcmTiming
from repro.mem.pcm import PcmDevice
from repro.mem.request import BLOCK_SIZE_BYTES, MemoryRequest
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

CompletionCallback = Callable[[MemoryRequest], None]


@dataclass
class _QueuedRequest:
    request: MemoryRequest
    callback: CompletionCallback | None
    enqueue_time_ps: int
    wire_command: bytes | None = None
    wire_data: bytes | None = None
    command_slots: int = 1
    bus_extra_ps: int = 0
    sequence: int = 0


def _plain_wire_command(request: MemoryRequest) -> bytes:
    """Wire encoding of an unprotected command: type byte + address."""
    type_byte = b"\x01" if request.is_write else b"\x00"
    return type_byte + request.address.to_bytes(8, "big")


class ChannelController:
    """Scheduler for one memory channel."""

    def __init__(
        self,
        engine: Engine,
        mapping: AddressMapping,
        channel: int,
        device: PcmDevice,
        timing: PcmTiming,
        stats: StatRegistry,
        bus: MemoryBus | None = None,
        write_queue_high: int = 8,
        write_queue_low: int = 2,
    ):
        if write_queue_low > write_queue_high:
            raise ConfigurationError("write drain low watermark above high watermark")
        self.engine = engine
        self.mapping = mapping
        self.channel = channel
        self.device = device
        self.timing = timing
        self.stats = stats.group(f"channel{channel}")
        self.bus = bus
        self._read_queue: list[_QueuedRequest] = []
        self._write_queue: list[_QueuedRequest] = []
        self._write_queue_high = write_queue_high
        self._write_queue_low = write_queue_low
        self._draining_writes = False
        self._cmd_free_ps = 0
        self._bus_free_ps = 0
        self._pump_scheduled = False
        self._sequence = 0
        self._pending_real_reads = 0
        self._pending_real_writes = 0
        self._last_bus_direction: Direction | None = None

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def enqueue(
        self,
        request: MemoryRequest,
        callback: CompletionCallback | None = None,
        wire_command: bytes | None = None,
        wire_data: bytes | None = None,
        command_slots: int = 1,
        bus_extra_ps: int = 0,
    ) -> None:
        """Accept a request for this channel.

        ``wire_command`` / ``wire_data`` are the bytes a wire observer sees
        (ciphertext when a protection layer sits above); when None, the
        plaintext encoding is used, modelling an unprotected bus.
        ``command_slots`` widens the command transfer (e.g. an appended MAC
        tag occupies a second slot); ``bus_extra_ps`` charges additional
        data-bus occupancy (e.g. a 128-bit tag riding the burst).
        """
        if self.mapping.channel_of(request.address) != self.channel and not request.is_dummy:
            raise ConfigurationError(
                f"request {request.address:#x} routed to wrong channel {self.channel}"
            )
        queued = _QueuedRequest(
            request=request,
            callback=callback,
            enqueue_time_ps=self.engine.now_ps,
            wire_command=wire_command,
            wire_data=wire_data,
            command_slots=command_slots,
            bus_extra_ps=bus_extra_ps,
            sequence=self._sequence,
        )
        self._sequence += 1
        # Dummies must issue promptly, temporally paired with the access
        # they escort — that adjacency is what hides the request type from
        # a timing observer — so they share the priority (read) queue even
        # when they are writes.  Real writes drain lazily as usual.
        if request.is_read or request.is_dummy:
            self._read_queue.append(queued)
        else:
            self._write_queue.append(queued)
        if request.is_dummy:
            self.stats.add("dummy_reads" if request.is_read else "dummy_writes")
        elif request.is_read:
            self.stats.add("reads")
            self._pending_real_reads += 1
        else:
            self.stats.add("writes")
            self._pending_real_writes += 1
        self._schedule_pump(0)

    @property
    def pending(self) -> int:
        """Requests currently queued (not yet issued)."""
        return len(self._read_queue) + len(self._write_queue)

    @property
    def pending_real_reads(self) -> int:
        """Queued non-dummy reads — the §3.3 substitution signal."""
        return self._pending_real_reads

    @property
    def pending_real_writes(self) -> int:
        """Queued non-dummy writes — the §3.3 substitution signal."""
        return self._pending_real_writes

    def promote_oldest_write(self) -> bool:
        """Move the oldest queued real write into the priority queue.

        Used by the §3.3 substitution optimization: the promoted write
        becomes the write half of a read-then-write pair, issuing adjacent
        to the read it escorts instead of waiting for a drain batch.
        """
        for index, queued in enumerate(self._write_queue):
            if not queued.request.is_dummy:
                self._read_queue.append(self._write_queue.pop(index))
                self.stats.add("writes_promoted")
                return True
        return False

    @property
    def busy(self) -> bool:
        """True if the channel has queued work or in-flight bus activity.

        This is the signal the ObfusMem-OPT inter-channel injector polls: an
        idle channel needs a dummy, a busy one does not (Observation 3).
        """
        return self.pending > 0 or self._bus_free_ps > self.engine.now_ps

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _schedule_pump(self, delay_ps: int) -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.engine.schedule(delay_ps, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        while True:
            now = self.engine.now_ps
            if self._cmd_free_ps > now:
                self._schedule_pump(self._cmd_free_ps - now)
                return
            # Bound the issue horizon: a real controller keeps only a few
            # transactions in flight; without this, the queues would drain
            # instantly into far-future resource reservations and every
            # queue-occupancy policy (write drain, FR-FCFS arbitration,
            # §3.3 substitution) would observe empty queues.
            horizon_ps = 8 * self.timing.t_burst_ps
            if self._bus_free_ps > now + horizon_ps:
                self._schedule_pump(self._bus_free_ps - now - horizon_ps)
                return
            queued = self._pick_next()
            if queued is None:
                return
            self._issue(queued)

    def _update_drain_mode(self) -> None:
        if len(self._write_queue) >= self._write_queue_high:
            self._draining_writes = True
        elif len(self._write_queue) <= self._write_queue_low:
            self._draining_writes = False

    # FR-FCFS scan depth: real controllers arbitrate over a bounded window
    # of queue entries, not the whole (potentially deep) queue.
    _ROW_HIT_LOOKAHEAD = 16

    def _row_hit_index(self, queue: list[_QueuedRequest]) -> int | None:
        for index, queued in enumerate(queue[: self._ROW_HIT_LOOKAHEAD]):
            if queued.request.is_dummy:
                continue
            decoded = self.mapping.decode(queued.request.address)
            if self.device.bank_state(decoded).open_row == decoded.row:
                return index
        return None

    def _burst_direction(self, request: MemoryRequest) -> Direction:
        """Which way this request's data burst crosses the bus."""
        return Direction.TO_PROCESSOR if request.is_read else Direction.TO_MEMORY

    def _direction_match_index(
        self, queue: list[_QueuedRequest], lookahead: int = 4
    ) -> int | None:
        """Prefer a request whose burst continues the current bus direction.

        FR-FCFS controllers group same-direction bursts to amortize the
        read/write turnaround; the small lookahead keeps the reordering
        window realistic (and keeps dummy pairing temporally tight).
        """
        if self._last_bus_direction is None:
            return None
        for index, queued in enumerate(queue[:lookahead]):
            if self._burst_direction(queued.request) is self._last_bus_direction:
                return index
        return None

    def _pick_next(self) -> _QueuedRequest | None:
        self._update_drain_mode()
        prefer_writes = self._draining_writes or not self._read_queue
        primary, secondary = (
            (self._write_queue, self._read_queue)
            if prefer_writes
            else (self._read_queue, self._write_queue)
        )
        for queue in (primary, secondary):
            if queue:
                hit_index = self._row_hit_index(queue)
                if hit_index is not None:
                    return queue.pop(hit_index)
                match_index = self._direction_match_index(queue)
                return queue.pop(match_index if match_index is not None else 0)
        return None

    def _emit(
        self,
        time_ps: int,
        kind: TransferKind,
        direction: Direction,
        wire_bytes: bytes,
        request: MemoryRequest,
    ) -> None:
        if self.bus is None:
            return
        self.bus.emit(
            BusTransfer(
                time_ps=time_ps,
                channel=self.channel,
                kind=kind,
                direction=direction,
                wire_bytes=wire_bytes,
                plaintext_address=request.address,
                plaintext_is_write=request.is_write,
                is_dummy=request.is_dummy,
            )
        )

    def _issue(self, queued: _QueuedRequest) -> None:
        request = queued.request
        if not request.is_dummy:
            if request.is_read:
                self._pending_real_reads -= 1
            else:
                self._pending_real_writes -= 1
        now = self.engine.now_ps
        cmd_start = max(now, self._cmd_free_ps)
        cmd_end = cmd_start + queued.command_slots * self.timing.command_ps
        self._cmd_free_ps = cmd_end
        wire_command = queued.wire_command or _plain_wire_command(request)
        self._emit(cmd_start, TransferKind.COMMAND, Direction.TO_MEMORY, wire_command, request)
        self.stats.record(
            "queue_delay_ns", (cmd_start - queued.enqueue_time_ps) / 1000.0
        )

        if request.is_dummy and request.droppable:
            complete_ps = self._issue_dummy(queued, cmd_end)
        elif request.is_read:
            complete_ps = self._issue_read(queued, cmd_end)
        else:
            complete_ps = self._issue_write(queued, cmd_end)

        def finish() -> None:
            request.complete_time_ps = self.engine.now_ps
            if queued.callback is not None:
                queued.callback(request)

        self.engine.schedule_at(complete_ps, finish)
        self.stats.add("requests_serviced")

    def _reserve_bus(
        self, earliest_ps: int, direction: Direction, extra_ps: int = 0
    ) -> tuple[int, int]:
        """Reserve one data burst starting no earlier than ``earliest_ps``.

        A direction change relative to the previous burst pays the bus
        turnaround penalty (tRTW/tWTR).
        """
        available = self._bus_free_ps
        if (
            self._last_bus_direction is not None
            and self._last_bus_direction is not direction
        ):
            available += self.timing.t_turnaround_ps
            self.stats.add("bus_turnarounds")
        start = max(earliest_ps, available)
        end = start + self.timing.t_burst_ps + extra_ps
        self._bus_free_ps = end
        self._last_bus_direction = direction
        self.stats.add("bus_bytes", BLOCK_SIZE_BYTES)
        return start, end

    def _wire_data(self, queued: _QueuedRequest) -> bytes:
        if queued.wire_data is not None:
            return queued.wire_data
        payload = queued.request.payload
        return payload if payload is not None else b"\x00" * BLOCK_SIZE_BYTES

    def _issue_dummy(self, queued: _QueuedRequest, cmd_end_ps: int) -> int:
        """Dummies occupy the bus like real traffic, then are dropped.

        A dummy write carries a data burst to memory that is discarded on
        arrival (no row buffer, no cells).  A dummy read is answered with a
        garbage burst without touching the array.
        """
        request = queued.request
        if request.is_write:
            burst_start, burst_end = self._reserve_bus(
                cmd_end_ps, Direction.TO_MEMORY, queued.bus_extra_ps
            )
            self._emit(
                burst_start,
                TransferKind.DATA,
                Direction.TO_MEMORY,
                self._wire_data(queued),
                request,
            )
            self.stats.add("dummy_writes_dropped")
        else:
            # Response after the command decodes; no bank access needed.
            burst_start, burst_end = self._reserve_bus(
                cmd_end_ps + self.timing.t_cl_ps,
                Direction.TO_PROCESSOR,
                queued.bus_extra_ps,
            )
            self._emit(
                burst_start,
                TransferKind.DATA,
                Direction.TO_PROCESSOR,
                self._wire_data(queued),
                request,
            )
            self.stats.add("dummy_reads_answered")
        return burst_end

    def _issue_read(self, queued: _QueuedRequest, cmd_end_ps: int) -> int:
        request = queued.request
        decoded = self.mapping.decode(request.address)
        bank = self.device.bank_state(decoded)
        access = self.device.access(decoded, is_write=False)
        prep_start = max(cmd_end_ps, bank.busy_until_ps)
        data_ready = prep_start + access.preparation_ps + self.timing.t_cl_ps
        burst_start, burst_end = self._reserve_bus(
            data_ready, Direction.TO_PROCESSOR, queued.bus_extra_ps
        )
        bank.busy_until_ps = burst_end
        if self.device.is_functional:
            request.payload = self.device.read_block(request.address)
        self._emit(
            burst_start,
            TransferKind.DATA,
            Direction.TO_PROCESSOR,
            self._wire_data(queued),
            request,
        )
        self.stats.record("read_latency_ns", (burst_end - queued.enqueue_time_ps) / 1000.0)
        return burst_end

    def _issue_write(self, queued: _QueuedRequest, cmd_end_ps: int) -> int:
        request = queued.request
        decoded = self.mapping.decode(request.address)
        bank = self.device.bank_state(decoded)
        access = self.device.access(decoded, is_write=True)
        burst_start, burst_end = self._reserve_bus(
            cmd_end_ps, Direction.TO_MEMORY, queued.bus_extra_ps
        )
        self._emit(
            burst_start,
            TransferKind.DATA,
            Direction.TO_MEMORY,
            self._wire_data(queued),
            request,
        )
        prep_start = max(burst_end, bank.busy_until_ps)
        row_ready = prep_start + access.preparation_ps
        bank.busy_until_ps = row_ready
        if self.device.is_functional and request.payload is not None:
            self.device.write_block(request.address, request.payload)
        return max(burst_end, row_ready)


class MemorySystem:
    """Multi-channel memory front end: routes requests to channels."""

    def __init__(
        self,
        engine: Engine,
        mapping: AddressMapping,
        stats: StatRegistry,
        timing: PcmTiming | None = None,
        energy: PcmEnergy | None = None,
        bus: MemoryBus | None = None,
        functional: bool = False,
        wear_leveling: bool = False,
        gap_write_interval: int = 16,
    ):
        self.engine = engine
        self.mapping = mapping
        self.timing = timing or PcmTiming()
        self.energy = energy or PcmEnergy()
        self.bus = bus
        self.devices = [
            PcmDevice(
                mapping,
                channel,
                self.timing,
                self.energy,
                stats.group(f"pcm{channel}"),
                functional=functional,
                wear_leveling=wear_leveling,
                gap_write_interval=gap_write_interval,
            )
            for channel in range(mapping.channels)
        ]
        self.channels = [
            ChannelController(
                engine, mapping, channel, self.devices[channel], self.timing, stats, bus
            )
            for channel in range(mapping.channels)
        ]

    def enqueue(
        self,
        request: MemoryRequest,
        callback: CompletionCallback | None = None,
        wire_command: bytes | None = None,
        wire_data: bytes | None = None,
        command_slots: int = 1,
        bus_extra_ps: int = 0,
    ) -> None:
        """Route a request to its channel's controller."""
        channel = self.mapping.channel_of(request.address)
        self.channels[channel].enqueue(
            request, callback, wire_command, wire_data, command_slots, bus_extra_ps
        )

    # Port-compatibility alias: protection layers call ``issue``.
    def issue(
        self,
        request: MemoryRequest,
        callback: CompletionCallback | None = None,
    ) -> None:
        """Port-protocol alias of :meth:`enqueue`."""
        self.enqueue(request, callback)

    def channel_for(self, address: int) -> ChannelController:
        """Controller serving the channel this address maps to."""
        return self.channels[self.mapping.channel_of(address)]

    @property
    def total_cell_writes(self) -> int:
        return sum(device.total_cell_writes for device in self.devices)

    def flush(self) -> int:
        """Flush dirty rows on every device (end-of-run wear accounting)."""
        flushed = 0
        for device in self.devices:
            flushed += device.flush_dirty_rows()
            device.stats.set("max_row_writes", device.max_row_writes)
        return flushed
