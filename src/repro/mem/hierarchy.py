"""Three-level cache hierarchy with MESI coherence (Table 2 configuration).

Private L1/L2 per core, shared inclusive L3 with a directory tracking which
cores hold each block.  The hierarchy is functional-with-latency: an access
returns the hit level, the accumulated lookup latency in cycles, and the
memory traffic (miss fill + any dirty write-backs) it generated below the
LLC.  That traffic is exactly what ObfusMem or ORAM must protect.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.mem.cache import MesiState, SetAssociativeCache
from repro.mem.request import (
    BLOCK_OFFSET_BITS,
    BLOCK_SIZE_BYTES,
    MemoryRequest,
    RequestType,
)
from repro.sim.statistics import StatRegistry


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes/latencies of Table 2."""

    cores: int = 4
    l1_size: int = 32 << 10
    l1_assoc: int = 8
    l1_latency: int = 2
    l2_size: int = 512 << 10
    l2_assoc: int = 8
    l2_latency: int = 8
    l3_size: int = 8 << 20
    l3_assoc: int = 8
    l3_latency: int = 17

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("need at least one core")


@dataclass
class AccessResult:
    """Outcome of one CPU-level load/store."""

    hit_level: str  # "L1", "L2", "L3" or "memory"
    latency_cycles: int
    memory_requests: list[MemoryRequest] = field(default_factory=list)

    @property
    def llc_miss(self) -> bool:
        return self.hit_level == "memory"


class CacheHierarchy:
    """Private L1/L2 per core + shared inclusive L3 with MESI directory."""

    def __init__(self, config: HierarchyConfig, stats: StatRegistry):
        self.config = config
        self.stats = stats.group("hierarchy")
        self.l1 = [
            SetAssociativeCache(
                f"l1.{core}",
                config.l1_size,
                config.l1_assoc,
                config.l1_latency,
                stats.group(f"l1.{core}"),
            )
            for core in range(config.cores)
        ]
        self.l2 = [
            SetAssociativeCache(
                f"l2.{core}",
                config.l2_size,
                config.l2_assoc,
                config.l2_latency,
                stats.group(f"l2.{core}"),
            )
            for core in range(config.cores)
        ]
        self.l3 = SetAssociativeCache(
            "l3", config.l3_size, config.l3_assoc, config.l3_latency, stats.group("l3")
        )
        # L3 directory: block -> set of cores with the block in L1/L2.
        self._sharers: dict[int, set[int]] = defaultdict(set)
        self.instructions: int = 0

    # ------------------------------------------------------------------

    def access(self, core_id: int, address: int, is_write: bool) -> AccessResult:
        """Perform one load/store; returns hit level, latency and traffic."""
        if not 0 <= core_id < self.config.cores:
            raise ConfigurationError(f"core {core_id} out of range")
        block = address >> BLOCK_OFFSET_BITS
        block_address = block << BLOCK_OFFSET_BITS
        latency = self.config.l1_latency
        self.stats.add("accesses")

        line = self.l1[core_id].lookup(block)
        if line is not None:
            if is_write:
                self._upgrade_for_write(core_id, block, line.state)
                self.l1[core_id].set_state(block, MesiState.MODIFIED)
            self.stats.add("l1_hits")
            return AccessResult("L1", latency)

        latency += self.config.l2_latency
        line = self.l2[core_id].lookup(block)
        if line is not None:
            self.stats.add("l2_hits")
            state = line.state
            if is_write:
                self._upgrade_for_write(core_id, block, state)
                state = MesiState.MODIFIED
                self.l2[core_id].set_state(block, state)
            requests = self._fill_l1(core_id, block, state)
            return AccessResult("L2", latency, requests)

        latency += self.config.l3_latency
        requests: list[MemoryRequest] = []
        l3_line = self.l3.lookup(block)
        if l3_line is not None:
            self.stats.add("l3_hits")
            requests += self._snoop_other_cores(core_id, block, is_write)
            state = MesiState.MODIFIED if is_write else self._fill_state(core_id, block)
            requests += self._fill_private(core_id, block, state)
            return AccessResult("L3", latency, requests)

        # LLC miss: fetch the block from memory.
        self.stats.add("llc_misses")
        requests.append(MemoryRequest(block_address, RequestType.READ, core_id=core_id))
        requests += self._insert_l3(block)
        state = MesiState.MODIFIED if is_write else MesiState.EXCLUSIVE
        requests += self._fill_private(core_id, block, state)
        return AccessResult("memory", latency, requests)

    # ------------------------------------------------------------------

    def _fill_state(self, core_id: int, block: int) -> MesiState:
        others = self._sharers[block] - {core_id}
        return MesiState.SHARED if others else MesiState.EXCLUSIVE

    def _upgrade_for_write(self, core_id: int, block: int, state: MesiState) -> None:
        if state is not MesiState.MODIFIED:
            # Invalidate other sharers (MESI upgrade / invalidation).
            for other in list(self._sharers[block] - {core_id}):
                self.l1[other].invalidate(block)
                self.l2[other].invalidate(block)
                self._sharers[block].discard(other)
                self.stats.add("coherence_invalidations")

    def _snoop_other_cores(
        self, core_id: int, block: int, is_write: bool
    ) -> list[MemoryRequest]:
        """MESI snoop: downgrade (read) or invalidate (write) remote copies."""
        requests: list[MemoryRequest] = []
        for other in list(self._sharers[block] - {core_id}):
            if is_write:
                dirty = self.l1[other].invalidate(block)
                dirty |= self.l2[other].invalidate(block)
                self._sharers[block].discard(other)
                self.stats.add("coherence_invalidations")
            else:
                dirty = self.l1[other].downgrade(block)
                dirty |= self.l2[other].downgrade(block)
            if dirty:
                # Dirty data is forwarded core-to-core through L3; mark the
                # L3 copy modified rather than writing memory immediately.
                if self.l3.contains(block):
                    self.l3.set_state(block, MesiState.MODIFIED)
                self.stats.add("dirty_forwards")
        return requests

    def _fill_l1(self, core_id: int, block: int, state: MesiState) -> list[MemoryRequest]:
        eviction = self.l1[core_id].insert(block, state)
        requests: list[MemoryRequest] = []
        if eviction is not None and eviction.dirty:
            # Dirty L1 victims are absorbed by L2 (write-back hierarchy).
            self.l2[core_id].insert(eviction.block, MesiState.MODIFIED)
        self._sharers[block].add(core_id)
        return requests

    def _fill_private(self, core_id: int, block: int, state: MesiState) -> list[MemoryRequest]:
        requests: list[MemoryRequest] = []
        eviction = self.l2[core_id].insert(block, state)
        if eviction is not None:
            self.l1[core_id].invalidate(eviction.block)
            self._sharers[eviction.block].discard(core_id)
            if eviction.dirty and self.l3.contains(eviction.block):
                self.l3.set_state(eviction.block, MesiState.MODIFIED)
        requests += self._fill_l1(core_id, block, state)
        return requests

    def _insert_l3(self, block: int) -> list[MemoryRequest]:
        requests: list[MemoryRequest] = []
        eviction = self.l3.insert(block, MesiState.EXCLUSIVE)
        if eviction is not None:
            dirty = eviction.dirty
            # Inclusive L3: back-invalidate private copies of the victim.
            for core in list(self._sharers[eviction.block]):
                dirty |= self.l1[core].invalidate(eviction.block)
                dirty |= self.l2[core].invalidate(eviction.block)
                self._sharers[eviction.block].discard(core)
                self.stats.add("back_invalidations")
            if dirty:
                requests.append(
                    MemoryRequest(
                        eviction.block << BLOCK_OFFSET_BITS, RequestType.WRITE
                    )
                )
                self.stats.add("writebacks")
        return requests

    # ------------------------------------------------------------------

    def mpki(self) -> float:
        """LLC misses per kilo-instruction over the instructions recorded."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.stats.get("llc_misses") / self.instructions


BLOCK_BYTES = BLOCK_SIZE_BYTES
