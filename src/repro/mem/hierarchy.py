"""Three-level cache hierarchy with MESI coherence (Table 2 configuration).

Private L1/L2 per core, shared inclusive L3 with a directory tracking which
cores hold each block.  The hierarchy is functional-with-latency: an access
returns the hit level, the accumulated lookup latency in cycles, and the
memory traffic (miss fill + any dirty write-backs) it generated below the
LLC.  That traffic is exactly what ObfusMem or ORAM must protect.

Two entry points share one set of slot-array caches
(:mod:`repro.mem.cache`):

* :meth:`CacheHierarchy.access` — the per-access interface: one
  load/store in, an :class:`AccessResult` (hit level, latency,
  :class:`~repro.mem.request.MemoryRequest` traffic) out.
* :meth:`CacheHierarchy.access_batch` — the front-end fast path: a chunk
  of ``(address, is_write)`` pairs in, bare ``(block_address, is_write)``
  traffic tuples appended to a caller-owned list out.  The L1 hit path is
  inlined in the loop and touches no allocator; only L1 misses fall into
  :meth:`_miss_path`.  Statistics accumulate in integer fields and flush
  into the :class:`~repro.sim.statistics.StatGroup` once per batch.

Both paths are bit-identical to the preserved original implementation in
:mod:`repro.mem.reference` (same traces, same stat snapshots) — the
front-end equivalence tests enforce that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.mem.cache import (
    ST_EXCLUSIVE,
    ST_MODIFIED,
    ST_SHARED,
    SetAssociativeCache,
)
from repro.mem.request import (
    BLOCK_OFFSET_BITS,
    BLOCK_SIZE_BYTES,
    MemoryRequest,
    RequestType,
)
from repro.sim.statistics import StatRegistry


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes/latencies of Table 2."""

    cores: int = 4
    l1_size: int = 32 << 10
    l1_assoc: int = 8
    l1_latency: int = 2
    l2_size: int = 512 << 10
    l2_assoc: int = 8
    l2_latency: int = 8
    l3_size: int = 8 << 20
    l3_assoc: int = 8
    l3_latency: int = 17

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("need at least one core")


@dataclass
class AccessResult:
    """Outcome of one CPU-level load/store."""

    hit_level: str  # "L1", "L2", "L3" or "memory"
    latency_cycles: int
    memory_requests: list[MemoryRequest] = field(default_factory=list)

    @property
    def llc_miss(self) -> bool:
        return self.hit_level == "memory"


class CacheHierarchy:
    """Private L1/L2 per core + shared inclusive L3 with MESI directory."""

    def __init__(self, config: HierarchyConfig, stats: StatRegistry):
        self.config = config
        self.stats = stats.group("hierarchy")
        self.l1 = [
            SetAssociativeCache(
                f"l1.{core}",
                config.l1_size,
                config.l1_assoc,
                config.l1_latency,
                stats.group(f"l1.{core}"),
            )
            for core in range(config.cores)
        ]
        self.l2 = [
            SetAssociativeCache(
                f"l2.{core}",
                config.l2_size,
                config.l2_assoc,
                config.l2_latency,
                stats.group(f"l2.{core}"),
            )
            for core in range(config.cores)
        ]
        self.l3 = SetAssociativeCache(
            "l3", config.l3_size, config.l3_assoc, config.l3_latency, stats.group("l3")
        )
        # L3 directory: block -> set of cores with the block in L1/L2.
        self._sharers: dict[int, set[int]] = {}
        self.instructions: int = 0
        # Batched stat accumulation: plain integer pendings, flushed into
        # the stat group at checkpoint boundaries (end of access/batch).
        self._p_accesses = 0
        self._p_l1_hits = 0
        self._p_l2_hits = 0
        self._p_l3_hits = 0
        self._p_llc_misses = 0
        self._p_coherence_invalidations = 0
        self._p_dirty_forwards = 0
        self._p_back_invalidations = 0
        self._p_writebacks = 0

    # ------------------------------------------------------------------

    def access(self, core_id: int, address: int, is_write: bool) -> AccessResult:
        """Perform one load/store; returns hit level, latency and traffic."""
        if not 0 <= core_id < self.config.cores:
            raise ConfigurationError(f"core {core_id} out of range")
        block = address >> BLOCK_OFFSET_BITS
        self._p_accesses += 1

        traffic: list[tuple[int, bool]] = []
        state = self.l1[core_id]._lookup_touch(block)
        if state is not None:
            if is_write:
                if state != ST_MODIFIED:
                    self._upgrade_for_write(core_id, block, state)
                self.l1[core_id]._set_state_slot(block, ST_MODIFIED)
            self._p_l1_hits += 1
            level = "L1"
        else:
            level = self._miss_path(core_id, block, is_write, traffic)
        self.flush_stats()

        config = self.config
        latency = config.l1_latency
        if level != "L1":
            latency += config.l2_latency
            if level != "L2":
                latency += config.l3_latency
        requests = [
            MemoryRequest(request_address, RequestType.WRITE)
            if request_is_write
            else MemoryRequest(request_address, RequestType.READ, core_id=core_id)
            for request_address, request_is_write in traffic
        ]
        return AccessResult(level, latency, requests)

    def access_batch(
        self,
        core_id: int,
        accesses,
        traffic: list[tuple[int, bool]] | None = None,
    ) -> list[tuple[int, bool]]:
        """Run many ``(address, is_write)`` accesses through one core's slice.

        This is the front end's hot loop: the L1 hit path is inlined (a
        C-level membership probe on the set's slot array plus an LRU
        reorder; repeated hits to the MRU block skip even that) and
        allocates nothing.  Below-LLC traffic is appended to ``traffic`` as
        bare ``(block_address, is_write)`` tuples, in exactly the order the
        per-access interface would emit the equivalent
        :class:`~repro.mem.request.MemoryRequest` objects.  Statistics are
        accumulated in integers and flushed once at the end of the batch.

        Returns the ``traffic`` list (created when not supplied).
        """
        if not 0 <= core_id < self.config.cores:
            raise ConfigurationError(f"core {core_id} out of range")
        if traffic is None:
            traffic = []
        l1 = self.l1[core_id]
        set_blocks = l1._set_blocks
        set_states = l1._set_states
        mask = l1._set_mask
        shift = BLOCK_OFFSET_BITS
        modified = ST_MODIFIED
        upgrade = self._upgrade_for_write
        miss_path = self._miss_path
        processed = 0
        hits = 0
        for address, is_write in accesses:
            processed += 1
            block = address >> shift
            slot = set_blocks[block & mask]
            if slot and slot[-1] == block:
                # MRU hit (spatial locality's common case): LRU order is
                # already correct, so only a write can need any work.
                if is_write:
                    states = set_states[block & mask]
                    state = states[-1]
                    if state != modified:
                        upgrade(core_id, block, state)
                        states[-1] = modified
                hits += 1
            elif block in slot:
                i = slot.index(block)
                states = set_states[block & mask]
                state = states.pop(i)
                slot.append(slot.pop(i))
                if is_write and state != modified:
                    upgrade(core_id, block, state)
                    state = modified
                states.append(state)
                hits += 1
            else:
                miss_path(core_id, block, is_write, traffic)
        self._p_accesses += processed
        self._p_l1_hits += hits
        self.flush_stats()
        return traffic

    def flush_stats(self) -> None:
        """Checkpoint boundary: fold pending counters into the stat groups."""
        group = self.stats
        if self._p_accesses:
            group.add("accesses", self._p_accesses)
            self._p_accesses = 0
        if self._p_l1_hits:
            group.add("l1_hits", self._p_l1_hits)
            self._p_l1_hits = 0
        if self._p_l2_hits:
            group.add("l2_hits", self._p_l2_hits)
            self._p_l2_hits = 0
        if self._p_l3_hits:
            group.add("l3_hits", self._p_l3_hits)
            self._p_l3_hits = 0
        if self._p_llc_misses:
            group.add("llc_misses", self._p_llc_misses)
            self._p_llc_misses = 0
        if self._p_coherence_invalidations:
            group.add("coherence_invalidations", self._p_coherence_invalidations)
            self._p_coherence_invalidations = 0
        if self._p_dirty_forwards:
            group.add("dirty_forwards", self._p_dirty_forwards)
            self._p_dirty_forwards = 0
        if self._p_back_invalidations:
            group.add("back_invalidations", self._p_back_invalidations)
            self._p_back_invalidations = 0
        if self._p_writebacks:
            group.add("writebacks", self._p_writebacks)
            self._p_writebacks = 0
        for cache in self.l1:
            cache.flush_stats()
        for cache in self.l2:
            cache.flush_stats()
        self.l3.flush_stats()

    # ------------------------------------------------------------------

    def _miss_path(
        self, core_id: int, block: int, is_write: bool, traffic: list[tuple[int, bool]]
    ) -> str:
        """L1 missed: walk L2 / L3 / memory; returns the hit level.

        Mirrors the reference implementation's operation order exactly so
        LRU state, coherence actions and traffic tuples stay bit-identical.
        The slot operations of :meth:`_fill_l1` / :meth:`_fill_private` /
        :meth:`_insert_l3` are inlined here (this is the second-hottest
        loop after the L1 probe); ``block`` is known absent from L1 and L2
        at each insertion point, so the membership probes those helpers
        would re-run are skipped.  Rare coherence branches (remote sharers,
        dirty-victim absorption) stay as helper calls.
        """
        modified = ST_MODIFIED
        sharers_map = self._sharers
        l1 = self.l1[core_id]
        l2 = self.l2[core_id]
        index2 = block & l2._set_mask
        slot2 = l2._set_blocks[index2]
        if block in slot2:
            # L2 hit: touch LRU, upgrade on write, then fill L1 below.
            self._p_l2_hits += 1
            states2 = l2._set_states[index2]
            i = slot2.index(block)
            state = states2.pop(i)
            slot2.append(slot2.pop(i))
            if is_write and state != modified:
                self._upgrade_for_write(core_id, block, state)
                state = modified
            states2.append(state)
            level = "L2"
        else:
            l3 = self.l3
            index3 = block & l3._set_mask
            slot3 = l3._set_blocks[index3]
            states3 = l3._set_states[index3]
            if block in slot3:
                # L3 hit: touch LRU, snoop remote copies, pick fill state.
                self._p_l3_hits += 1
                i = slot3.index(block)
                state3 = states3.pop(i)
                slot3.append(slot3.pop(i))
                states3.append(state3)
                sharers = sharers_map.get(block)
                if sharers and (len(sharers) > 1 or core_id not in sharers):
                    self._snoop_other_cores(core_id, block, is_write)
                    state = modified if is_write else ST_SHARED
                else:
                    state = modified if is_write else ST_EXCLUSIVE
                level = "L3"
            else:
                # LLC miss: fetch the block from memory, install in L3.
                self._p_llc_misses += 1
                traffic.append((block << BLOCK_OFFSET_BITS, False))
                if len(slot3) >= l3.associativity:
                    victim_block = slot3.pop(0)
                    victim_state = states3.pop(0)
                    l3._pend_evictions += 1
                    dirty = victim_state == modified
                    if dirty:
                        l3._pend_dirty_evictions += 1
                    # Inclusive L3: back-invalidate private copies.
                    sharers = sharers_map.get(victim_block)
                    if sharers:
                        for core in list(sharers):
                            dirty |= self.l1[core]._invalidate_slot(victim_block)
                            dirty |= self.l2[core]._invalidate_slot(victim_block)
                            sharers.discard(core)
                            self._p_back_invalidations += 1
                    if dirty:
                        traffic.append((victim_block << BLOCK_OFFSET_BITS, True))
                        self._p_writebacks += 1
                slot3.append(block)
                states3.append(ST_EXCLUSIVE)
                state = modified if is_write else ST_EXCLUSIVE
                level = "memory"

            # Fill L2 (block is absent: the probe above missed, and nothing
            # since can have inserted it).
            states2 = l2._set_states[index2]
            if len(slot2) >= l2.associativity:
                victim_block = slot2.pop(0)
                victim_state = states2.pop(0)
                l2._pend_evictions += 1
                if victim_state == modified:
                    l2._pend_dirty_evictions += 1
                slot2.append(block)
                states2.append(state)
                self.l1[core_id]._invalidate_slot(victim_block)
                sharers = sharers_map.get(victim_block)
                if sharers is not None:
                    sharers.discard(core_id)
                if victim_state == modified and l3._peek(victim_block) is not None:
                    l3._set_state_slot(victim_block, modified)
            else:
                slot2.append(block)
                states2.append(state)

        # Fill L1 (block is absent: this is the L1 miss path, and nothing
        # since can have inserted it).  Dirty victims are absorbed by L2.
        index1 = block & l1._set_mask
        slot1 = l1._set_blocks[index1]
        states1 = l1._set_states[index1]
        if len(slot1) >= l1.associativity:
            victim_block = slot1.pop(0)
            victim_state = states1.pop(0)
            l1._pend_evictions += 1
            if victim_state == modified:
                l1._pend_dirty_evictions += 1
                slot1.append(block)
                states1.append(state)
                l2._insert_slot(victim_block, modified)
            else:
                slot1.append(block)
                states1.append(state)
        else:
            slot1.append(block)
            states1.append(state)
        sharers = sharers_map.get(block)
        if sharers is None:
            sharers = sharers_map[block] = set()
        sharers.add(core_id)
        return level

    def _fill_state(self, core_id: int, block: int) -> int:
        sharers = self._sharers.get(block)
        if sharers and (len(sharers) > 1 or core_id not in sharers):
            return ST_SHARED
        return ST_EXCLUSIVE

    def _upgrade_for_write(self, core_id: int, block: int, state: int) -> None:
        if state != ST_MODIFIED:
            # Invalidate other sharers (MESI upgrade / invalidation).
            sharers = self._sharers.get(block)
            if not sharers:
                return
            for other in [core for core in sharers if core != core_id]:
                self.l1[other]._invalidate_slot(block)
                self.l2[other]._invalidate_slot(block)
                sharers.discard(other)
                self._p_coherence_invalidations += 1

    def _snoop_other_cores(self, core_id: int, block: int, is_write: bool) -> None:
        """MESI snoop: downgrade (read) or invalidate (write) remote copies."""
        sharers = self._sharers.get(block)
        if not sharers:
            return
        for other in [core for core in sharers if core != core_id]:
            if is_write:
                dirty = self.l1[other]._invalidate_slot(block)
                dirty |= self.l2[other]._invalidate_slot(block)
                sharers.discard(other)
                self._p_coherence_invalidations += 1
            else:
                dirty = self.l1[other]._downgrade_slot(block)
                dirty |= self.l2[other]._downgrade_slot(block)
            if dirty:
                # Dirty data is forwarded core-to-core through L3; mark the
                # L3 copy modified rather than writing memory immediately.
                if self.l3._peek(block) is not None:
                    self.l3._set_state_slot(block, ST_MODIFIED)
                self._p_dirty_forwards += 1

    def _fill_l1(self, core_id: int, block: int, state: int) -> None:
        victim = self.l1[core_id]._insert_slot(block, state)
        if victim is not None and victim[1] == ST_MODIFIED:
            # Dirty L1 victims are absorbed by L2 (write-back hierarchy).
            self.l2[core_id]._insert_slot(victim[0], ST_MODIFIED)
        sharers = self._sharers.get(block)
        if sharers is None:
            sharers = self._sharers[block] = set()
        sharers.add(core_id)

    def _fill_private(self, core_id: int, block: int, state: int) -> None:
        victim = self.l2[core_id]._insert_slot(block, state)
        if victim is not None:
            victim_block, victim_state = victim
            self.l1[core_id]._invalidate_slot(victim_block)
            sharers = self._sharers.get(victim_block)
            if sharers is not None:
                sharers.discard(core_id)
            if victim_state == ST_MODIFIED and self.l3._peek(victim_block) is not None:
                self.l3._set_state_slot(victim_block, ST_MODIFIED)
        self._fill_l1(core_id, block, state)

    def _insert_l3(self, block: int, traffic: list[tuple[int, bool]]) -> None:
        victim = self.l3._insert_slot(block, ST_EXCLUSIVE)
        if victim is not None:
            victim_block, victim_state = victim
            dirty = victim_state == ST_MODIFIED
            # Inclusive L3: back-invalidate private copies of the victim.
            sharers = self._sharers.get(victim_block)
            if sharers:
                for core in list(sharers):
                    dirty |= self.l1[core]._invalidate_slot(victim_block)
                    dirty |= self.l2[core]._invalidate_slot(victim_block)
                    sharers.discard(core)
                    self._p_back_invalidations += 1
            if dirty:
                traffic.append((victim_block << BLOCK_OFFSET_BITS, True))
                self._p_writebacks += 1

    # ------------------------------------------------------------------

    def mpki(self) -> float:
        """LLC misses per kilo-instruction over the instructions recorded."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.stats.get("llc_misses") / self.instructions


BLOCK_BYTES = BLOCK_SIZE_BYTES
