"""Memory substrate: requests, caches, PCM devices, channels and the bus."""

from repro.mem.address_mapping import AddressMapping, DecodedAddress
from repro.mem.bus import (
    BusObserver,
    BusTransfer,
    Direction,
    MemoryBus,
    TransferKind,
)
from repro.mem.cache import CacheLine, Eviction, MesiState, SetAssociativeCache
from repro.mem.dram_timing import (
    DEFAULT_ENERGY,
    DEFAULT_ENGINES,
    DEFAULT_TIMING,
    EngineTiming,
    PcmEnergy,
    PcmTiming,
)
from repro.mem.hierarchy import AccessResult, CacheHierarchy, HierarchyConfig
from repro.mem.pcm import PcmDevice
from repro.mem.reference import ReferenceCacheHierarchy, ReferenceSetAssociativeCache
from repro.mem.request import (
    BLOCK_OFFSET_BITS,
    BLOCK_SIZE_BYTES,
    MemoryRequest,
    RequestType,
    block_aligned,
)
from repro.mem.scheduler import ChannelController, MemorySystem
from repro.mem.wear_leveling import StartGapWearLeveler, wear_metrics

__all__ = [
    "AddressMapping",
    "DecodedAddress",
    "BusObserver",
    "BusTransfer",
    "Direction",
    "MemoryBus",
    "TransferKind",
    "CacheLine",
    "Eviction",
    "MesiState",
    "SetAssociativeCache",
    "DEFAULT_ENERGY",
    "DEFAULT_ENGINES",
    "DEFAULT_TIMING",
    "EngineTiming",
    "PcmEnergy",
    "PcmTiming",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyConfig",
    "PcmDevice",
    "ReferenceCacheHierarchy",
    "ReferenceSetAssociativeCache",
    "BLOCK_OFFSET_BITS",
    "BLOCK_SIZE_BYTES",
    "MemoryRequest",
    "RequestType",
    "block_aligned",
    "ChannelController",
    "MemorySystem",
    "StartGapWearLeveler",
    "wear_metrics",
]
