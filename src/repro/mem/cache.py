"""Set-associative cache with LRU replacement and MESI line states.

Used to build the three-level hierarchy of Table 2 (32KB L1 / 512KB L2
private, 8MB L3 shared, all 8-way with 64-byte blocks).  The cache is a
functional model with per-access latency accounting: the experiments drive
the memory system with LLC-miss traces directly, while the full-stack
examples and integration tests run CPU-level address streams through this
hierarchy to produce those misses.

Because the front end performs 10-100 cache accesses per simulated memory
event, this module is organised around *flat slot arrays* rather than
per-line objects:

* each set is a pair of parallel ``list``s (``block`` numbers and
  integer-coded MESI states), indexed arithmetically by ``block & mask`` —
  no per-line dataclass, no per-set dict;
* LRU is the *order* of those lists (index 0 is the victim, the tail is
  most recently used), so a touch is a C-level ``pop``/``append`` and
  eviction never scans for a minimum;
* MESI states are the integers :data:`ST_MODIFIED` / :data:`ST_EXCLUSIVE`
  / :data:`ST_SHARED`; the :class:`MesiState` enum remains the public
  vocabulary and is translated only at the API boundary;
* eviction statistics accumulate in plain integer fields and are flushed
  into the :class:`~repro.sim.statistics.StatGroup` at checkpoint
  boundaries (every public call; end of batch on the hierarchy's batched
  path), keeping the stats API the observable interface.

The original dict-and-dataclass implementation survives as
:mod:`repro.mem.reference`; the front-end equivalence tests prove the two
produce bit-identical traces and statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.request import BLOCK_OFFSET_BITS
from repro.sim.statistics import StatGroup

#: Integer-coded MESI states used on the hot path (INVALID lines are simply
#: absent from the slot arrays).  :data:`ST_MODIFIED` is the only state that
#: makes an eviction or invalidation dirty.
ST_MODIFIED = 1
ST_EXCLUSIVE = 2
ST_SHARED = 3


class MesiState(enum.Enum):
    """MESI coherence states; INVALID lines are absent from the cache."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"


#: Enum -> hot-path integer code.
STATE_CODE = {
    MesiState.MODIFIED: ST_MODIFIED,
    MesiState.EXCLUSIVE: ST_EXCLUSIVE,
    MesiState.SHARED: ST_SHARED,
}
#: Hot-path integer code -> enum (the API-boundary translation).
STATE_ENUM = {code: state for state, code in STATE_CODE.items()}


@dataclass
class CacheLine:
    """A point-in-time view of one resident line (API-boundary object).

    The slot arrays do not store these; :meth:`SetAssociativeCache.lookup`
    materialises one per call.  Treat it as a snapshot — mutating it does
    not write back into the cache (use :meth:`SetAssociativeCache.set_state`
    to change a resident line's state).
    """

    block: int
    state: MesiState
    last_use: int = 0


@dataclass(frozen=True)
class Eviction:
    """A victim pushed out by an insertion."""

    block: int
    dirty: bool


class SetAssociativeCache:
    """One cache level: lookup / insert / invalidate with LRU replacement.

    The public methods translate to and from :class:`MesiState` and flush
    statistics eagerly, preserving the original per-call interface.  The
    underscore-prefixed slot operations work on integer states and pending
    counters; :class:`~repro.mem.hierarchy.CacheHierarchy` drives those
    directly on its batched fast path and flushes at batch boundaries.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "associativity",
        "latency_cycles",
        "block_bytes",
        "num_sets",
        "stats",
        "_set_mask",
        "_set_blocks",
        "_set_states",
        "_pend_evictions",
        "_pend_dirty_evictions",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        latency_cycles: int,
        stats: StatGroup,
        block_bytes: int = 64,
    ):
        if size_bytes % (associativity * block_bytes):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible into "
                f"{associativity}-way sets of {block_bytes}B blocks"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.latency_cycles = latency_cycles
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // (associativity * block_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError(f"{name}: set count must be a power of two")
        self.stats = stats
        self._set_mask = self.num_sets - 1
        # Parallel per-set slot arrays in LRU order: index 0 is the next
        # victim, the tail is the most recently used way.
        self._set_blocks: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._set_states: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._pend_evictions = 0
        self._pend_dirty_evictions = 0

    # -- slot operations (integer states, deferred stats) -------------------

    def _peek(self, block: int) -> int | None:
        """State code of a resident block without touching LRU, else None."""
        slot = self._set_blocks[block & self._set_mask]
        if block in slot:
            return self._set_states[block & self._set_mask][slot.index(block)]
        return None

    def _lookup_touch(self, block: int) -> int | None:
        """State code of a resident block, moving it to MRU; None on miss."""
        index = block & self._set_mask
        slot = self._set_blocks[index]
        if block not in slot:
            return None
        states = self._set_states[index]
        i = slot.index(block)
        state = states[i]
        if i != len(slot) - 1:
            slot.append(slot.pop(i))
            states.append(states.pop(i))
        return state

    def _insert_slot(self, block: int, state: int) -> tuple[int, int] | None:
        """Insert/update a block as MRU; returns ``(victim, state)`` or None.

        Evicting counts into the pending eviction counters — callers flush
        them into the stat group at their checkpoint boundary.
        """
        index = block & self._set_mask
        slot = self._set_blocks[index]
        states = self._set_states[index]
        if block in slot:
            i = slot.index(block)
            del slot[i]
            del states[i]
            slot.append(block)
            states.append(state)
            return None
        victim = None
        if len(slot) >= self.associativity:
            victim_block = slot.pop(0)
            victim_state = states.pop(0)
            victim = (victim_block, victim_state)
            self._pend_evictions += 1
            if victim_state == ST_MODIFIED:
                self._pend_dirty_evictions += 1
        slot.append(block)
        states.append(state)
        return victim

    def _invalidate_slot(self, block: int) -> bool:
        """Drop a block if resident; returns True when it was dirty."""
        index = block & self._set_mask
        slot = self._set_blocks[index]
        if block not in slot:
            return False
        i = slot.index(block)
        states = self._set_states[index]
        state = states[i]
        del slot[i]
        del states[i]
        return state == ST_MODIFIED

    def _downgrade_slot(self, block: int) -> bool:
        """M/E -> S without touching LRU; returns True if data was dirty."""
        index = block & self._set_mask
        slot = self._set_blocks[index]
        if block not in slot:
            return False
        states = self._set_states[index]
        i = slot.index(block)
        was_dirty = states[i] == ST_MODIFIED
        states[i] = ST_SHARED
        return was_dirty

    def _set_state_slot(self, block: int, state: int) -> None:
        """Overwrite a resident block's state code without touching LRU."""
        index = block & self._set_mask
        slot = self._set_blocks[index]
        if block not in slot:
            raise ConfigurationError(f"{self.name}: block {block:#x} not resident")
        self._set_states[index][slot.index(block)] = state

    def flush_stats(self) -> None:
        """Fold pending eviction counts into the stat group (checkpoint)."""
        if self._pend_evictions:
            self.stats.add("evictions", self._pend_evictions)
            self._pend_evictions = 0
        if self._pend_dirty_evictions:
            self.stats.add("dirty_evictions", self._pend_dirty_evictions)
            self._pend_dirty_evictions = 0

    # -- public per-call interface (MesiState vocabulary, eager stats) -------

    def lookup(self, block: int, update_lru: bool = True) -> CacheLine | None:
        """Find a block; returns a :class:`CacheLine` snapshot or None."""
        state = self._lookup_touch(block) if update_lru else self._peek(block)
        if state is None:
            return None
        return CacheLine(block=block, state=STATE_ENUM[state])

    def insert(self, block: int, state: MesiState) -> Eviction | None:
        """Insert a block, evicting LRU if the set is full.

        Returns the eviction (with dirtiness) so callers can generate the
        write-back request; None when no victim was displaced.
        """
        victim = self._insert_slot(block, STATE_CODE[state])
        self.flush_stats()
        if victim is None:
            return None
        return Eviction(block=victim[0], dirty=victim[1] == ST_MODIFIED)

    def invalidate(self, block: int) -> bool:
        """Drop a block (coherence invalidation); returns True if present
        and dirty (caller must write back)."""
        return self._invalidate_slot(block)

    def downgrade(self, block: int) -> bool:
        """M/E -> S on a remote read; returns True if data was dirty."""
        return self._downgrade_slot(block)

    def set_state(self, block: int, state: MesiState) -> None:
        """Overwrite the MESI state of a resident block."""
        self._set_state_slot(block, STATE_CODE[state])

    def contains(self, block: int) -> bool:
        """Residency check without touching LRU state."""
        return self._peek(block) is not None

    def resident_blocks(self) -> list[int]:
        """All blocks currently resident (any state)."""
        return [block for slot in self._set_blocks for block in slot]

    @staticmethod
    def block_of(address: int) -> int:
        """The block number covering a byte address."""
        return address >> BLOCK_OFFSET_BITS
