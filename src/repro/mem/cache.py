"""Set-associative cache with LRU replacement and MESI line states.

Used to build the three-level hierarchy of Table 2 (32KB L1 / 512KB L2
private, 8MB L3 shared, all 8-way with 64-byte blocks).  The cache is a
functional model with per-access latency accounting: the experiments drive
the memory system with LLC-miss traces directly, while the full-stack
examples and integration tests run CPU-level address streams through this
hierarchy to produce those misses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.request import BLOCK_OFFSET_BITS
from repro.sim.statistics import StatGroup


class MesiState(enum.Enum):
    """MESI coherence states; INVALID lines are absent from the cache."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"


@dataclass
class CacheLine:
    block: int
    state: MesiState
    last_use: int


@dataclass(frozen=True)
class Eviction:
    """A victim pushed out by an insertion."""

    block: int
    dirty: bool


class SetAssociativeCache:
    """One cache level: lookup / insert / invalidate with LRU replacement."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        latency_cycles: int,
        stats: StatGroup,
        block_bytes: int = 64,
    ):
        if size_bytes % (associativity * block_bytes):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible into "
                f"{associativity}-way sets of {block_bytes}B blocks"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.latency_cycles = latency_cycles
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // (associativity * block_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError(f"{name}: set count must be a power of two")
        self.stats = stats
        self._sets: list[dict[int, CacheLine]] = [{} for _ in range(self.num_sets)]
        self._use_clock = 0

    def _set_index(self, block: int) -> int:
        return block & (self.num_sets - 1)

    def _touch(self, line: CacheLine) -> None:
        self._use_clock += 1
        line.last_use = self._use_clock

    def lookup(self, block: int, update_lru: bool = True) -> CacheLine | None:
        """Find a block; returns the line (any MESI state) or None."""
        line = self._sets[self._set_index(block)].get(block)
        if line is not None and update_lru:
            self._touch(line)
        return line

    def insert(self, block: int, state: MesiState) -> Eviction | None:
        """Insert a block, evicting LRU if the set is full.

        Returns the eviction (with dirtiness) so callers can generate the
        write-back request; None when no victim was displaced.
        """
        cache_set = self._sets[self._set_index(block)]
        existing = cache_set.get(block)
        if existing is not None:
            existing.state = state
            self._touch(existing)
            return None
        eviction = None
        if len(cache_set) >= self.associativity:
            victim_block = min(cache_set, key=lambda b: cache_set[b].last_use)
            victim = cache_set.pop(victim_block)
            eviction = Eviction(
                block=victim_block, dirty=victim.state is MesiState.MODIFIED
            )
            self.stats.add("evictions")
            if eviction.dirty:
                self.stats.add("dirty_evictions")
        self._use_clock += 1
        cache_set[block] = CacheLine(block=block, state=state, last_use=self._use_clock)
        return eviction

    def invalidate(self, block: int) -> bool:
        """Drop a block (coherence invalidation); returns True if present
        and dirty (caller must write back)."""
        cache_set = self._sets[self._set_index(block)]
        line = cache_set.pop(block, None)
        return line is not None and line.state is MesiState.MODIFIED

    def downgrade(self, block: int) -> bool:
        """M/E -> S on a remote read; returns True if data was dirty."""
        line = self.lookup(block, update_lru=False)
        if line is None:
            return False
        was_dirty = line.state is MesiState.MODIFIED
        line.state = MesiState.SHARED
        return was_dirty

    def set_state(self, block: int, state: MesiState) -> None:
        """Overwrite the MESI state of a resident block."""
        line = self.lookup(block, update_lru=False)
        if line is None:
            raise ConfigurationError(f"{self.name}: block {block:#x} not resident")
        line.state = state

    def contains(self, block: int) -> bool:
        """Residency check without touching LRU state."""
        return self.lookup(block, update_lru=False) is not None

    def resident_blocks(self) -> list[int]:
        """All blocks currently resident (any state)."""
        return [block for cache_set in self._sets for block in cache_set]

    @staticmethod
    def block_of(address: int) -> int:
        return address >> BLOCK_OFFSET_BITS
