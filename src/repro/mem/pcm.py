"""PCM device model: banks, row buffers, endurance and functional storage.

Follows the Lee et al. (ISCA 2009) organization the paper simulates: each
bank has a 1KB row buffer; reads activate a row (a PCM array read, tRCD);
writes land in the row buffer; PCM *cells* are written only when a dirty row
buffer is evicted (tRP).  The device tracks per-row write counts so the
experiments can report wear/endurance, and can optionally hold real data
bytes for the functional end-to-end path.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping, DecodedAddress
from repro.mem.dram_timing import PcmEnergy, PcmTiming
from repro.mem.request import BLOCK_SIZE_BYTES, block_aligned
from repro.mem.wear_leveling import StartGapWearLeveler
from repro.sim.statistics import StatGroup


@dataclass
class _BankState:
    open_row: int | None = None
    dirty: bool = False
    busy_until_ps: int = 0


@dataclass(frozen=True)
class AccessTiming:
    """Timing decomposition of one bank access."""

    preparation_ps: int  # precharge (dirty write-back) + activation
    row_hit: bool
    wrote_cells: bool  # a PCM array (cell) write happened


class PcmDevice:
    """All banks of one memory *channel* plus wear and energy accounting."""

    def __init__(
        self,
        mapping: AddressMapping,
        channel: int,
        timing: PcmTiming,
        energy: PcmEnergy,
        stats: StatGroup,
        functional: bool = False,
        wear_leveling: bool = False,
        gap_write_interval: int = 16,
    ):
        if not 0 <= channel < mapping.channels:
            raise ConfigurationError(f"channel {channel} out of range")
        self.mapping = mapping
        self.channel = channel
        self.timing = timing
        self.energy = energy
        self.stats = stats
        # Hot-path binding: `access` runs per issued request, so counter
        # updates go through the live dict rather than StatGroup.add.
        self._counters = stats.counters()
        self._banks: dict[tuple[int, int], _BankState] = {
            (rank, bank): _BankState()
            for rank in range(mapping.ranks_per_channel)
            for bank in range(mapping.banks_per_rank)
        }
        self._row_write_counts: dict[tuple[int, int, int], int] = defaultdict(int)
        self._store: dict[int, bytes] | None = {} if functional else None
        # §2.2: smart NVM modules host wear-leveling logic in the DIMM.
        # One Start-Gap leveler per bank remaps rows; the row-buffer state
        # then tracks *physical* rows.  (Gap moves are rare; their
        # interaction with an open row buffer is simplified away.)
        self._levelers: dict[tuple[int, int], StartGapWearLeveler] | None = (
            {
                key: StartGapWearLeveler(
                    mapping.rows_per_bank, stats, gap_write_interval
                )
                for key in self._banks
            }
            if wear_leveling
            else None
        )

    def bank_state(self, decoded: DecodedAddress) -> _BankState:
        """Row-buffer state of the bank holding this address."""
        return self._banks[(decoded.rank, decoded.bank)]

    def _physical_row(self, decoded: DecodedAddress) -> int:
        if self._levelers is None:
            return decoded.row
        return self._levelers[(decoded.rank, decoded.bank)].physical_row(decoded.row)

    def access(
        self, decoded: DecodedAddress, is_write: bool, bank: _BankState | None = None
    ) -> AccessTiming:
        """Update row-buffer state for one access and return its timing.

        The scheduler decides *when* the access happens; this method decides
        *how long* the bank-side part takes and does the bookkeeping.
        Callers that already hold the bank's state (the scheduler caches it
        per queued request) pass it as ``bank`` to skip the lookup.
        """
        if bank is None:
            bank = self.bank_state(decoded)
        row = self._physical_row(decoded)
        row_hit = bank.open_row == row
        preparation = 0
        wrote_cells = False
        counters = self._counters
        if not row_hit:
            if bank.open_row is not None and bank.dirty:
                # Dirty row eviction: the whole row is written back to the
                # PCM array. This is the only point PCM cells are written.
                preparation += self.timing.t_rp_ps
                wrote_cells = True
                self._record_cell_write(decoded.rank, decoded.bank, bank.open_row)
            # Activate the new row: a PCM array read.
            preparation += self.timing.t_rcd_ps
            counters["array_reads"] += 1
            counters["energy_pj"] += self.energy.array_read_pj
            bank.open_row = row
            bank.dirty = False
        else:
            counters["row_buffer_hits"] += 1
        counters["row_buffer_accesses"] += 1
        counters["energy_pj"] += self.energy.row_buffer_access_pj
        if is_write:
            bank.dirty = True
        return AccessTiming(
            preparation_ps=preparation, row_hit=row_hit, wrote_cells=wrote_cells
        )

    def _record_cell_write(self, rank: int, bank: int, row: int) -> None:
        self._row_write_counts[(rank, bank, row)] += 1
        self.stats.add("array_writes")
        self.stats.add("energy_pj", self.energy.array_write_pj)
        if self._levelers is not None:
            leveler = self._levelers[(rank, bank)]
            if leveler.note_row_write():
                # Gap movement copies a displaced row: one extra cell write
                # landing at the (new) gap position.
                self._row_write_counts[(rank, bank, leveler.gap)] += 1
                self.stats.add("array_writes")
                self.stats.add("wear_level_writes")
                self.stats.add("energy_pj", self.energy.array_write_pj)

    def flush_dirty_rows(self) -> int:
        """Write back every dirty open row (end-of-simulation accounting)."""
        flushed = 0
        for (rank, bank), state in self._banks.items():
            if state.open_row is not None and state.dirty:
                self._record_cell_write(rank, bank, state.open_row)
                state.dirty = False
                flushed += 1
        return flushed

    # --- wear accounting -------------------------------------------------

    @property
    def total_cell_writes(self) -> int:
        return sum(self._row_write_counts.values())

    @property
    def max_row_writes(self) -> int:
        """Worst-case wear across rows (lifetime is limited by the max)."""
        return max(self._row_write_counts.values(), default=0)

    # --- functional storage ----------------------------------------------

    @property
    def is_functional(self) -> bool:
        return self._store is not None

    def read_block(self, address: int) -> bytes:
        """Functional read; unwritten blocks return deterministic zeros."""
        if self._store is None:
            raise ConfigurationError("device was built without functional storage")
        return self._store.get(block_aligned(address), b"\x00" * BLOCK_SIZE_BYTES)

    def write_block(self, address: int, data: bytes) -> None:
        """Functional write of one 64-byte block."""
        if self._store is None:
            raise ConfigurationError("device was built without functional storage")
        if len(data) != BLOCK_SIZE_BYTES:
            raise ConfigurationError(f"block must be {BLOCK_SIZE_BYTES} bytes")
        self._store[block_aligned(address)] = bytes(data)
