"""DDR-interface PCM timing and energy parameters (Table 2, Lee et al.).

The paper models a DDR-interfaced PCM main memory: reads activate a row into
the row buffer in tRCD = 60 ns (the PCM array read), row-buffer hits pay only
tCL + tBURST, and dirty row-buffer evictions write the row back to PCM cells
in tRP = 150 ns (the PCM array write).  Writes land in the row buffer; PCM
*cells* are written only on dirty-row eviction — exactly the Lee et al.
design the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.engine import ns_to_ps


@dataclass(frozen=True)
class PcmTiming:
    """All timing in picoseconds; defaults are Table 2 values."""

    t_rcd_ps: int = ns_to_ps(60.0)  # row activate = PCM array read
    t_rp_ps: int = ns_to_ps(150.0)  # dirty-row write-back = PCM array write
    t_cl_ps: int = ns_to_ps(13.75)  # column access latency
    t_burst_ps: int = ns_to_ps(5.0)  # 64B over a 64-bit 800MHz DDR bus
    command_ps: int = ns_to_ps(1.25)  # command/address slot on the bus
    # Bus turnaround between read and write bursts (tRTW / tWTR): the data
    # bus must idle while drivers flip direction.  This is the dominant cost
    # of ObfusMem's read-then-write pairing, which interleaves directions on
    # every access where an unprotected controller batches them.
    t_turnaround_ps: int = ns_to_ps(7.5)
    channel_bandwidth_gbps: float = 12.8

    def __post_init__(self) -> None:
        for name in ("t_rcd_ps", "t_rp_ps", "t_cl_ps", "t_burst_ps", "command_ps"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def row_hit_read_ps(self) -> int:
        """Service time of a read that hits the open row."""
        return self.t_cl_ps + self.t_burst_ps

    @property
    def row_miss_clean_read_ps(self) -> int:
        """Read needing activation of a new row over a clean open row."""
        return self.t_rcd_ps + self.t_cl_ps + self.t_burst_ps

    @property
    def row_miss_dirty_read_ps(self) -> int:
        """Read that must first write back a dirty row, then activate."""
        return self.t_rp_ps + self.t_rcd_ps + self.t_cl_ps + self.t_burst_ps


@dataclass(frozen=True)
class PcmEnergy:
    """Per-operation PCM energy model (relative units, Lee et al. ratios).

    The paper's §5.2 analysis only needs the *ratio* write:read = 6.8; we
    keep picojoule-flavoured absolute numbers so totals are readable.
    """

    array_read_pj: float = 2.0
    array_write_pj: float = 13.6  # 6.8x the read energy
    row_buffer_access_pj: float = 0.93
    bus_transfer_pj_per_byte: float = 0.1

    @property
    def write_to_read_ratio(self) -> float:
        return self.array_write_pj / self.array_read_pj


@dataclass(frozen=True)
class EngineTiming:
    """Latency/energy/area of the crypto engines, from the paper's synthesis.

    AES: publicly available pipelined AES-128 @ 45nm — 24-cycle latency at a
    4 ns cycle, one 128-bit pad per cycle, 15.1 mW, 0.204 mm².
    MD5: 64-stage pipelined implementation — 12.5 mW, 0.214 mm².  One stage
    is a single MD5 round (a handful of adders and a rotate), so the stage
    clock is much faster than the AES unit's; we model 1 ns per stage, giving
    a 64 ns fill latency that overlaps almost entirely with the PCM array
    access (tRCD + tCL ~= 74 ns), consistent with the paper's observation
    that authentication costs only ~2% extra.
    """

    aes_cycle_ps: int = ns_to_ps(4.0)
    aes_pipeline_depth: int = 24
    aes_power_mw: float = 15.1
    aes_area_mm2: float = 0.204
    md5_pipeline_depth: int = 64
    md5_cycle_ps: int = ns_to_ps(1.0)
    md5_power_mw: float = 12.5
    md5_area_mm2: float = 0.214
    xor_ps: int = ns_to_ps(0.5)  # pad XOR on the critical path
    # Portion of the LLC-miss path not modelled at memory level (L2/L3
    # lookups, on-chip network, controller front end) that pad generation
    # overlaps with.  This implements the paper's §2.4 claim that decryption
    # overlaps the LLC miss and "only the XOR latency is added": the 24-cycle
    # AES fill runs concurrently with this window plus the memory access.
    pad_overlap_ps: int = ns_to_ps(40.0)

    @property
    def aes_latency_ps(self) -> int:
        """Fill latency of one pad through the pipeline (24 x 4 ns)."""
        return self.aes_pipeline_depth * self.aes_cycle_ps

    @property
    def md5_latency_ps(self) -> int:
        """Fill latency of one digest through the pipeline (64 x 4 ns)."""
        return self.md5_pipeline_depth * self.md5_cycle_ps


DEFAULT_TIMING = PcmTiming()
DEFAULT_ENERGY = PcmEnergy()
DEFAULT_ENGINES = EngineTiming()
