"""The observable memory bus: what an attacker's probes can see.

The threat model (paper §2.1) gives the attacker full visibility of the
exposed wires between processor and memory: command/address transfers, data
transfers, their timing, and *which channel's pins* they appear on.  This
module records exactly that and nothing more — the analysis package computes
leakage metrics purely from :class:`BusTransfer` records, so a protection
scheme is evaluated against what it actually puts on the wire.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field


class TransferKind(enum.Enum):
    """What crossed the bus: a command/address slot, data burst, or pulse."""

    COMMAND = "command"  # command + address slot
    DATA = "data"  # 64-byte data burst
    #: Wire-less activity observable only as timing (power/EM side channel):
    #: maintenance bursts of an opaque ORAM package.  ``wire_bytes`` is
    #: empty — a pulse carries *when*, never *what*.
    PULSE = "pulse"


class Direction(enum.Enum):
    """Which way the transfer travelled."""

    TO_MEMORY = "to_memory"
    TO_PROCESSOR = "to_processor"


@dataclass(frozen=True)
class BusTransfer:
    """One wire-level observable event.

    ``wire_bytes`` is what the attacker reads off the pins.  For an
    unprotected system this encodes the plaintext command and address; for
    ObfusMem it is ciphertext.  ``plaintext_address`` / ``plaintext_is_write``
    are ground-truth annotations for *evaluating* leakage metrics — an
    attacker model must never read them, and the observer API separates the
    two views.
    """

    time_ps: int
    channel: int
    kind: TransferKind
    direction: Direction
    wire_bytes: bytes
    plaintext_address: int | None = None
    plaintext_is_write: bool | None = None
    is_dummy: bool = False

    def attacker_view(self) -> tuple[int, int, TransferKind, Direction, bytes]:
        """The fields an attacker can actually observe."""
        return (self.time_ps, self.channel, self.kind, self.direction, self.wire_bytes)


class BusObserver:
    """Passive snooper attached to the memory bus; collects transfers.

    ``max_transfers`` bounds the capture as a ring buffer: once full, each
    new transfer evicts the oldest and bumps :attr:`dropped`, so long
    traces never hold every :class:`BusTransfer` alive.  The default is
    unbounded (full-trace captures for the leakage metrics).
    """

    def __init__(self, name: str = "observer", max_transfers: int | None = None):
        if max_transfers is not None and max_transfers < 1:
            raise ValueError("max_transfers must be positive when set")
        self.name = name
        self.max_transfers = max_transfers
        self._transfers: deque[BusTransfer] = deque(maxlen=max_transfers)
        #: Transfers evicted by the ring buffer since the last clear().
        self.dropped = 0

    @property
    def transfers(self) -> list[BusTransfer]:
        """Retained transfers, oldest first (a fresh list each call)."""
        return list(self._transfers)

    def record(self, transfer: BusTransfer) -> None:
        """Store one observed transfer (evicting the oldest when capped)."""
        if (
            self.max_transfers is not None
            and len(self._transfers) == self.max_transfers
        ):
            self.dropped += 1
        self._transfers.append(transfer)

    def command_transfers(self) -> list[BusTransfer]:
        """Only the command/address transfers seen."""
        return [t for t in self._transfers if t.kind is TransferKind.COMMAND]

    def data_transfers(self) -> list[BusTransfer]:
        """Only the data bursts seen."""
        return [t for t in self._transfers if t.kind is TransferKind.DATA]

    def channels_seen(self) -> set[int]:
        """Set of channel indices with any observed traffic."""
        return {t.channel for t in self._transfers}

    def clear(self) -> None:
        """Forget everything observed so far (resets the dropped counter)."""
        self._transfers.clear()
        self.dropped = 0


@dataclass
class MemoryBus:
    """Fan-out point: every emitted transfer reaches every observer."""

    observers: list[BusObserver] = field(default_factory=list)

    def attach(self, observer: BusObserver) -> None:
        """Register an observer for all future transfers."""
        self.observers.append(observer)

    def emit(self, transfer: BusTransfer) -> None:
        """Deliver one transfer to every attached observer."""
        for observer in self.observers:
            observer.record(transfer)
