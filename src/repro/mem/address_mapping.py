"""Physical address interleaving: the RoRaBaChCo mapping of Table 2.

``RoRaBaChCo`` reads most-significant to least-significant:
Row | Rank | Bank | Channel | Column.  With 64-byte blocks and 1KB row
buffers, consecutive blocks walk through the columns of a row first, then
across channels, banks and ranks — the standard layout the paper simulates,
and the one that makes *inter-channel* spatial leakage real: sequential
addresses visibly stripe across channel pins (paper §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mem.request import BLOCK_OFFSET_BITS, BLOCK_SIZE_BYTES


def _log2_exact(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class DecodedAddress:
    """Channel/rank/bank/row/column coordinates of one block."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """RoRaBaChCo decoder for a multi-channel PCM memory.

    Parameters mirror Table 2: 2 ranks/channel, 8 banks/rank, 1KB row
    buffers, 64B blocks; channels configurable (1/2/4/8 in the sweep).
    """

    def __init__(
        self,
        capacity_bytes: int = 8 << 30,
        channels: int = 1,
        ranks_per_channel: int = 2,
        banks_per_rank: int = 8,
        row_buffer_bytes: int = 1024,
    ):
        self.capacity_bytes = capacity_bytes
        self.channels = channels
        self.ranks_per_channel = ranks_per_channel
        self.banks_per_rank = banks_per_rank
        self.row_buffer_bytes = row_buffer_bytes

        self._channel_bits = _log2_exact(channels, "channels")
        self._rank_bits = _log2_exact(ranks_per_channel, "ranks per channel")
        self._bank_bits = _log2_exact(banks_per_rank, "banks per rank")
        if row_buffer_bytes % BLOCK_SIZE_BYTES:
            raise ConfigurationError("row buffer must hold whole blocks")
        self.blocks_per_row = row_buffer_bytes // BLOCK_SIZE_BYTES
        self._column_bits = _log2_exact(self.blocks_per_row, "blocks per row")
        _log2_exact(capacity_bytes, "capacity")

        fixed_bits = (
            BLOCK_OFFSET_BITS
            + self._column_bits
            + self._channel_bits
            + self._bank_bits
            + self._rank_bits
        )
        total_bits = _log2_exact(capacity_bytes, "capacity")
        self._row_bits = total_bits - fixed_bits
        if self._row_bits <= 0:
            raise ConfigurationError("capacity too small for this organization")
        self.rows_per_bank = 1 << self._row_bits
        self.num_blocks = capacity_bytes // BLOCK_SIZE_BYTES
        # Decode memo: coordinates are pure functions of the address and
        # :class:`DecodedAddress` is frozen, so instances are shared.  The
        # cache is bounded by the number of distinct blocks a run touches.
        self._decode_cache: dict[int, DecodedAddress] = {}
        # One reserved dummy block per channel (paper §3.3), precomputed:
        # the FIXED dummy policy asks for it on every escort pair.
        self._dummy_blocks = [
            self.encode(
                DecodedAddress(
                    channel=channel,
                    rank=0,
                    bank=0,
                    row=self.rows_per_bank - 1,
                    column=0,
                )
            )
            for channel in range(channels)
        ]

    def __getstate__(self) -> dict:
        """Pickle without the decode memo.

        The memo is a pure function of the address and grows with every
        distinct block a run touches — under address randomization that is
        most of the snapshot payload of a checkpointed world.  Dropping it
        is invisible to resumed runs (entries regenerate on demand,
        bit-identically) and keeps checkpoint size O(machine), not
        O(footprint).
        """
        state = self.__dict__.copy()
        state["_decode_cache"] = {}
        return state

    def decode(self, address: int) -> DecodedAddress:
        """Split a block-aligned byte address into device coordinates."""
        cached = self._decode_cache.get(address)
        if cached is not None:
            return cached
        if not 0 <= address < self.capacity_bytes:
            raise ConfigurationError(
                f"address {address:#x} outside capacity {self.capacity_bytes:#x}"
            )
        bits = address >> BLOCK_OFFSET_BITS
        column = bits & (self.blocks_per_row - 1)
        bits >>= self._column_bits
        channel = bits & ((1 << self._channel_bits) - 1)
        bits >>= self._channel_bits
        bank = bits & ((1 << self._bank_bits) - 1)
        bits >>= self._bank_bits
        rank = bits & ((1 << self._rank_bits) - 1)
        bits >>= self._rank_bits
        row = bits
        decoded = self._decode_cache[address] = DecodedAddress(
            channel=channel, rank=rank, bank=bank, row=row, column=column
        )
        return decoded

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode`; used by tests and the dummy reserver."""
        bits = decoded.row
        bits = (bits << self._rank_bits) | decoded.rank
        bits = (bits << self._bank_bits) | decoded.bank
        bits = (bits << self._channel_bits) | decoded.channel
        bits = (bits << self._column_bits) | decoded.column
        return bits << BLOCK_OFFSET_BITS

    def channel_of(self, address: int) -> int:
        """Fast path: just the channel index of a block address."""
        return (address >> (BLOCK_OFFSET_BITS + self._column_bits)) & (
            (1 << self._channel_bits) - 1
        )

    def dummy_block_address(self, channel: int) -> int:
        """The reserved fixed dummy block for a channel (paper §3.3).

        Each memory module reserves one 64-byte block; we place it at the
        highest row of bank 0, rank 0 of the channel so it never collides
        with low-address workloads.
        """
        if not 0 <= channel < self.channels:
            raise ConfigurationError(f"channel {channel} out of range")
        return self._dummy_blocks[channel]
