"""Reference cache hierarchy: the original dict-and-dataclass front end.

This module preserves, verbatim, the pre-slot-array implementation of
:class:`~repro.mem.cache.SetAssociativeCache` and
:class:`~repro.mem.hierarchy.CacheHierarchy` — per-set ``dict`` lines,
per-line ``CacheLine`` dataclasses, :class:`~repro.mem.cache.MesiState`
enum comparisons and eager per-access stat updates.  It is the *semantic
oracle* for the rebuilt fast path:

* :func:`repro.cpu.kernels.trace_through_hierarchy` runs it when called
  with ``reference=True``;
* the front-end equivalence suite (``tests/cpu/test_frontend_equivalence``)
  asserts record-for-record identical traces and identical stat snapshots
  between this implementation and the slot-array one;
* ``benchmarks/test_frontend_throughput.py`` measures it as the speedup
  baseline.

It is deliberately *slow but obvious*; do not optimise it.  Behavioural
changes to the memory model must land in both implementations, with the
equivalence suite proving they still agree.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ConfigurationError
from repro.mem.cache import CacheLine, Eviction, MesiState
from repro.mem.hierarchy import AccessResult, HierarchyConfig
from repro.mem.request import BLOCK_OFFSET_BITS, MemoryRequest, RequestType
from repro.sim.statistics import StatGroup, StatRegistry


class ReferenceSetAssociativeCache:
    """One cache level, dict-of-dataclass edition (the original code)."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        latency_cycles: int,
        stats: StatGroup,
        block_bytes: int = 64,
    ):
        if size_bytes % (associativity * block_bytes):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible into "
                f"{associativity}-way sets of {block_bytes}B blocks"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.latency_cycles = latency_cycles
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // (associativity * block_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError(f"{name}: set count must be a power of two")
        self.stats = stats
        self._sets: list[dict[int, CacheLine]] = [{} for _ in range(self.num_sets)]
        self._use_clock = 0

    def _set_index(self, block: int) -> int:
        return block & (self.num_sets - 1)

    def _touch(self, line: CacheLine) -> None:
        self._use_clock += 1
        line.last_use = self._use_clock

    def lookup(self, block: int, update_lru: bool = True) -> CacheLine | None:
        """Find a block; returns the line (any MESI state) or None."""
        line = self._sets[self._set_index(block)].get(block)
        if line is not None and update_lru:
            self._touch(line)
        return line

    def insert(self, block: int, state: MesiState) -> Eviction | None:
        """Insert a block, evicting the LRU line if the set is full."""
        cache_set = self._sets[self._set_index(block)]
        existing = cache_set.get(block)
        if existing is not None:
            existing.state = state
            self._touch(existing)
            return None
        eviction = None
        if len(cache_set) >= self.associativity:
            victim_block = min(cache_set, key=lambda b: cache_set[b].last_use)
            victim = cache_set.pop(victim_block)
            eviction = Eviction(
                block=victim_block, dirty=victim.state is MesiState.MODIFIED
            )
            self.stats.add("evictions")
            if eviction.dirty:
                self.stats.add("dirty_evictions")
        self._use_clock += 1
        cache_set[block] = CacheLine(block=block, state=state, last_use=self._use_clock)
        return eviction

    def invalidate(self, block: int) -> bool:
        """Drop a block; returns True if it was present and dirty."""
        cache_set = self._sets[self._set_index(block)]
        line = cache_set.pop(block, None)
        return line is not None and line.state is MesiState.MODIFIED

    def downgrade(self, block: int) -> bool:
        """M/E -> S on a remote read; returns True if data was dirty."""
        line = self.lookup(block, update_lru=False)
        if line is None:
            return False
        was_dirty = line.state is MesiState.MODIFIED
        line.state = MesiState.SHARED
        return was_dirty

    def set_state(self, block: int, state: MesiState) -> None:
        """Overwrite the MESI state of a resident block."""
        line = self.lookup(block, update_lru=False)
        if line is None:
            raise ConfigurationError(f"{self.name}: block {block:#x} not resident")
        line.state = state

    def contains(self, block: int) -> bool:
        """Residency check without touching LRU state."""
        return self.lookup(block, update_lru=False) is not None


class ReferenceCacheHierarchy:
    """Private L1/L2 per core + shared inclusive L3 (the original code)."""

    def __init__(self, config: HierarchyConfig, stats: StatRegistry):
        self.config = config
        self.stats = stats.group("hierarchy")
        self.l1 = [
            ReferenceSetAssociativeCache(
                f"l1.{core}",
                config.l1_size,
                config.l1_assoc,
                config.l1_latency,
                stats.group(f"l1.{core}"),
            )
            for core in range(config.cores)
        ]
        self.l2 = [
            ReferenceSetAssociativeCache(
                f"l2.{core}",
                config.l2_size,
                config.l2_assoc,
                config.l2_latency,
                stats.group(f"l2.{core}"),
            )
            for core in range(config.cores)
        ]
        self.l3 = ReferenceSetAssociativeCache(
            "l3", config.l3_size, config.l3_assoc, config.l3_latency, stats.group("l3")
        )
        self._sharers: dict[int, set[int]] = defaultdict(set)
        self.instructions: int = 0

    def access(self, core_id: int, address: int, is_write: bool) -> AccessResult:
        """Perform one load/store; returns hit level, latency and traffic."""
        if not 0 <= core_id < self.config.cores:
            raise ConfigurationError(f"core {core_id} out of range")
        block = address >> BLOCK_OFFSET_BITS
        block_address = block << BLOCK_OFFSET_BITS
        latency = self.config.l1_latency
        self.stats.add("accesses")

        line = self.l1[core_id].lookup(block)
        if line is not None:
            if is_write:
                self._upgrade_for_write(core_id, block, line.state)
                self.l1[core_id].set_state(block, MesiState.MODIFIED)
            self.stats.add("l1_hits")
            return AccessResult("L1", latency)

        latency += self.config.l2_latency
        line = self.l2[core_id].lookup(block)
        if line is not None:
            self.stats.add("l2_hits")
            state = line.state
            if is_write:
                self._upgrade_for_write(core_id, block, state)
                state = MesiState.MODIFIED
                self.l2[core_id].set_state(block, state)
            requests = self._fill_l1(core_id, block, state)
            return AccessResult("L2", latency, requests)

        latency += self.config.l3_latency
        requests: list[MemoryRequest] = []
        l3_line = self.l3.lookup(block)
        if l3_line is not None:
            self.stats.add("l3_hits")
            requests += self._snoop_other_cores(core_id, block, is_write)
            state = MesiState.MODIFIED if is_write else self._fill_state(core_id, block)
            requests += self._fill_private(core_id, block, state)
            return AccessResult("L3", latency, requests)

        self.stats.add("llc_misses")
        requests.append(MemoryRequest(block_address, RequestType.READ, core_id=core_id))
        requests += self._insert_l3(block)
        state = MesiState.MODIFIED if is_write else MesiState.EXCLUSIVE
        requests += self._fill_private(core_id, block, state)
        return AccessResult("memory", latency, requests)

    def _fill_state(self, core_id: int, block: int) -> MesiState:
        others = self._sharers[block] - {core_id}
        return MesiState.SHARED if others else MesiState.EXCLUSIVE

    def _upgrade_for_write(self, core_id: int, block: int, state: MesiState) -> None:
        if state is not MesiState.MODIFIED:
            for other in list(self._sharers[block] - {core_id}):
                self.l1[other].invalidate(block)
                self.l2[other].invalidate(block)
                self._sharers[block].discard(other)
                self.stats.add("coherence_invalidations")

    def _snoop_other_cores(
        self, core_id: int, block: int, is_write: bool
    ) -> list[MemoryRequest]:
        requests: list[MemoryRequest] = []
        for other in list(self._sharers[block] - {core_id}):
            if is_write:
                dirty = self.l1[other].invalidate(block)
                dirty |= self.l2[other].invalidate(block)
                self._sharers[block].discard(other)
                self.stats.add("coherence_invalidations")
            else:
                dirty = self.l1[other].downgrade(block)
                dirty |= self.l2[other].downgrade(block)
            if dirty:
                if self.l3.contains(block):
                    self.l3.set_state(block, MesiState.MODIFIED)
                self.stats.add("dirty_forwards")
        return requests

    def _fill_l1(
        self, core_id: int, block: int, state: MesiState
    ) -> list[MemoryRequest]:
        eviction = self.l1[core_id].insert(block, state)
        requests: list[MemoryRequest] = []
        if eviction is not None and eviction.dirty:
            self.l2[core_id].insert(eviction.block, MesiState.MODIFIED)
        self._sharers[block].add(core_id)
        return requests

    def _fill_private(
        self, core_id: int, block: int, state: MesiState
    ) -> list[MemoryRequest]:
        requests: list[MemoryRequest] = []
        eviction = self.l2[core_id].insert(block, state)
        if eviction is not None:
            self.l1[core_id].invalidate(eviction.block)
            self._sharers[eviction.block].discard(core_id)
            if eviction.dirty and self.l3.contains(eviction.block):
                self.l3.set_state(eviction.block, MesiState.MODIFIED)
        requests += self._fill_l1(core_id, block, state)
        return requests

    def _insert_l3(self, block: int) -> list[MemoryRequest]:
        requests: list[MemoryRequest] = []
        eviction = self.l3.insert(block, MesiState.EXCLUSIVE)
        if eviction is not None:
            dirty = eviction.dirty
            for core in list(self._sharers[eviction.block]):
                dirty |= self.l1[core].invalidate(eviction.block)
                dirty |= self.l2[core].invalidate(eviction.block)
                self._sharers[eviction.block].discard(core)
                self.stats.add("back_invalidations")
            if dirty:
                requests.append(
                    MemoryRequest(
                        eviction.block << BLOCK_OFFSET_BITS, RequestType.WRITE
                    )
                )
                self.stats.add("writebacks")
        return requests

    def mpki(self) -> float:
        """LLC misses per kilo-instruction over the instructions recorded."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.stats.get("llc_misses") / self.instructions
