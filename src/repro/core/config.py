"""Configuration knobs of the ObfusMem controller.

Each enum mirrors a design choice discussed in the paper:

* :class:`DummyAddressPolicy` — §3.3's three designs for the address of a
  dummy request (random / original / fixed reserved block).  Only FIXED
  allows the memory side to drop dummies and avoid wear; the others exist
  for the ablation study.
* :class:`ChannelInjection` — §3.4's inter-channel obfuscation:
  full replication (UNOPT, dummies on all other channels) vs idle-only
  injection (OPT).
* :class:`AuthMode` — §3.5's encrypt-and-MAC (overlapped, default) vs
  encrypt-then-MAC (serialized) bus authentication.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.mem.dram_timing import EngineTiming
from repro.sim.engine import ns_to_ps  # noqa: F401 (used in defaults below)


class DummyAddressPolicy(enum.Enum):
    """What address a dummy request carries (paper §3.3)."""

    RANDOM = "random"  # random address: hurts locality, causes real writes
    ORIGINAL = "original"  # same address as the real request: real writes
    FIXED = "fixed"  # reserved 64B block per module: droppable (default)


class ChannelInjection(enum.Enum):
    """Inter-channel dummy injection strategy (paper §3.4)."""

    NONE = "none"  # leak across channels (for ablation only)
    UNOPT = "unopt"  # dummies on every other channel, every access
    OPT = "opt"  # dummies only on idle channels (Observation 3)


class AuthMode(enum.Enum):
    """Bus communication authentication (paper §3.5)."""

    NONE = "none"
    ENCRYPT_AND_MAC = "encrypt_and_mac"  # beta = H(r|a|c), overlapped
    ENCRYPT_THEN_MAC = "encrypt_then_mac"  # alpha = H(E_K(r|a|D)), serialized


@dataclass(frozen=True)
class ObfusMemConfig:
    """All controller knobs with the paper's defaults.

    ``substitute_dummies`` enables the bandwidth optimization at the end of
    §3.3: a pending real write may stand in for a read's dummy-write half
    (and vice versa), removing dummy bandwidth under mixed load.
    ``max_held_writes`` bounds how long a real write may wait for a read to
    pair with before it is flushed with a dummy-read escort.
    """

    dummy_policy: DummyAddressPolicy = DummyAddressPolicy.FIXED
    channel_injection: ChannelInjection = ChannelInjection.OPT
    auth: AuthMode = AuthMode.NONE
    substitute_dummies: bool = True
    max_held_writes: int = 2
    # §6.2: the timing-oblivious mode keeps dummies undropped so a dummy's
    # service time is indistinguishable from a real access's.
    drop_dummies: bool = True
    engines: EngineTiming = field(default_factory=EngineTiming)
    # Residual (non-overlapped) MAC-generation latency per request for the
    # encrypt-and-MAC scheme: the stride/LRU anticipation of §3.5 hides most
    # of the 64-stage pipeline, leaving a small tail.
    auth_gen_residual_ps: int = ns_to_ps(6.0)
    # Window of memory access time the memory-side MAC check overlaps with.
    auth_verify_overlap_ps: int = ns_to_ps(70.0)

    def __post_init__(self) -> None:
        if self.max_held_writes < 0:
            raise ConfigurationError("max_held_writes must be >= 0")
        if self.auth_gen_residual_ps < 0 or self.auth_verify_overlap_ps < 0:
            raise ConfigurationError("auth latency parameters must be >= 0")

    @property
    def command_slots(self) -> int:
        """Bus command-slot occupancy: the MAC tag widens the header."""
        return 2 if self.auth is not AuthMode.NONE else 1

    @property
    def tag_bus_extra_ps(self) -> int:
        """Data-bus occupancy of the 128-bit MAC tag riding each burst."""
        return ns_to_ps(1.25) if self.auth is not AuthMode.NONE else 0

    def auth_verify_exposed_ps(self) -> int:
        """Memory-side MAC check latency not hidden by the array access."""
        if self.auth is AuthMode.NONE:
            return 0
        md5 = self.engines.md5_pipeline_depth * self.engines.md5_cycle_ps
        if self.auth is AuthMode.ENCRYPT_THEN_MAC:
            # Serialized: the MAC covers the ciphertext, so nothing overlaps.
            return md5
        return max(0, md5 - self.auth_verify_overlap_ps)
