"""Session Key Table: one shared symmetric key per memory channel.

Figure 3 step 1b: the request address indexes the Session Key Table to find
the session key of the memory module that will handle the request.  Keys are
established at boot by the Diffie–Hellman exchange the trust architecture
authenticates (:mod:`repro.core.trust`), and live until the system powers
down.
"""

from __future__ import annotations

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError


class SessionKeyTable:
    """Per-channel session keys held by the processor-side controller."""

    def __init__(self, keys: dict[int, bytes]):
        if not keys:
            raise ConfigurationError("session key table cannot be empty")
        for channel, key in keys.items():
            if len(key) != 16:
                raise ConfigurationError(
                    f"channel {channel} session key must be 16 bytes"
                )
        self._keys = dict(keys)

    @classmethod
    def generate(cls, channels: int, rng: DeterministicRng) -> "SessionKeyTable":
        """Fresh random keys for every channel (test/simulation shortcut;
        the full boot flow derives them via :mod:`repro.core.trust`)."""
        return cls({c: rng.fork(f"session{c}").token_bytes(16) for c in range(channels)})

    def key_for(self, channel: int) -> bytes:
        """Session key of one memory channel (raises if unknown)."""
        try:
            return self._keys[channel]
        except KeyError:
            raise ConfigurationError(f"no session key for channel {channel}")

    @property
    def channels(self) -> list[int]:
        return sorted(self._keys)

    def __len__(self) -> int:
        return len(self._keys)
