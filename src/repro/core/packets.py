"""Functional wire format of the obfuscated memory bus (Figure 3).

Everything on the bus is counter-mode encrypted under the channel's session
key.  Each channel carries two synchronized pad streams derived from the
same key with different nonces:

* the **request stream** (processor -> memory): command packets and write
  data bursts.  A request *pair* (real + piggybacked dummy) consumes exactly
  six pads — one for each command and four for the 64-byte data half —
  matching Figure 3's "increase the counter by six".
* the **response stream** (memory -> processor): read-response data bursts,
  four pads per 64-byte block.

A command packet is 16 bytes: ``type(1) | address(8) | zero padding(7)``
XORed with one pad.  The zero padding gives the decoder a cheap sanity
check; authentication is provided by the MAC of §3.5, not by the padding.

Both endpoints instantiate a :class:`ChannelCodec` over the same session
key.  Encoding on one side and decoding on the other consume pads in lock
step; a lost or replayed message desynchronizes the counters, which the MAC
check then exposes (every subsequent tag mismatches) — exactly the
tamper-evidence argument of §3.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ctr import CtrPadGenerator, xor_bytes
from repro.crypto.mac import constant_time_equal, encrypt_and_mac_tag, encrypt_then_mac_tag
from repro.errors import CryptoError, IntegrityError
from repro.mem.request import BLOCK_SIZE_BYTES, RequestType

COMMAND_PACKET_BYTES = 16
DATA_PADS = BLOCK_SIZE_BYTES // 16

_TYPE_CODES = {RequestType.READ: 0x0A, RequestType.WRITE: 0x5B}
_CODE_TYPES = {code: rtype for rtype, code in _TYPE_CODES.items()}

REQUEST_STREAM_NONCE = 0x0BF5_0001
RESPONSE_STREAM_NONCE = 0x0BF5_0002


@dataclass(frozen=True)
class DecodedCommand:
    request_type: RequestType
    address: int
    counter: int  # request-stream counter value the command pad used


class ChannelCodec:
    """One endpoint's encoder/decoder state for a single channel."""

    def __init__(self, session_key: bytes):
        self._request_stream = CtrPadGenerator(session_key, REQUEST_STREAM_NONCE)
        self._response_stream = CtrPadGenerator(session_key, RESPONSE_STREAM_NONCE)
        self._key = session_key

    # -- counters ------------------------------------------------------

    @property
    def request_counter(self) -> int:
        return self._request_stream.counter

    @property
    def response_counter(self) -> int:
        return self._response_stream.counter

    # -- command packets (request stream) -------------------------------

    def _command_plaintext(self, request_type: RequestType, address: int) -> bytes:
        if address < 0 or address >= 1 << 64:
            raise CryptoError("address does not fit the command packet")
        return (
            _TYPE_CODES[request_type].to_bytes(1, "big")
            + address.to_bytes(8, "big")
            + b"\x00" * 7
        )

    def encode_command(self, request_type: RequestType, address: int) -> tuple[bytes, int]:
        """Encrypt one command; returns (wire bytes, counter value used)."""
        counter = self._request_stream.counter
        (pad,) = self._request_stream.next_pads(1)
        plaintext = self._command_plaintext(request_type, address)
        return xor_bytes(plaintext, pad), counter

    def decode_command(self, wire: bytes) -> DecodedCommand:
        """Decrypt one command packet with the next request-stream pad."""
        if len(wire) != COMMAND_PACKET_BYTES:
            raise CryptoError("command packet must be 16 bytes")
        counter = self._request_stream.counter
        (pad,) = self._request_stream.next_pads(1)
        plaintext = xor_bytes(wire, pad)
        code = plaintext[0]
        if code not in _CODE_TYPES:
            raise IntegrityError(
                "command decode failed: unknown type code (tampering or "
                "counter desynchronization)"
            )
        address = int.from_bytes(plaintext[1:9], "big")
        return DecodedCommand(_CODE_TYPES[code], address, counter)

    # -- data bursts -----------------------------------------------------

    def _data_pads(self, stream: CtrPadGenerator) -> bytes:
        return b"".join(stream.next_pads(DATA_PADS))

    def encode_request_data(self, block: bytes) -> bytes:
        """Second-encrypt a 64B block for transmission to memory.

        This is Observation 1: data already encrypted for memory-at-rest is
        encrypted *again* for the bus so temporal reuse is invisible.
        """
        if len(block) != BLOCK_SIZE_BYTES:
            raise CryptoError("data burst must be 64 bytes")
        return xor_bytes(block, self._data_pads(self._request_stream))

    def decode_request_data(self, wire: bytes) -> bytes:
        """Remove the bus encryption from a to-memory data burst."""
        if len(wire) != BLOCK_SIZE_BYTES:
            raise CryptoError("data burst must be 64 bytes")
        return xor_bytes(wire, self._data_pads(self._request_stream))

    def encode_response_data(self, block: bytes) -> bytes:
        """Bus-encrypt a 64B block for the memory-to-processor path."""
        if len(block) != BLOCK_SIZE_BYTES:
            raise CryptoError("data burst must be 64 bytes")
        return xor_bytes(block, self._data_pads(self._response_stream))

    def decode_response_data(self, wire: bytes) -> bytes:
        """Remove the bus encryption from a read response."""
        if len(wire) != BLOCK_SIZE_BYTES:
            raise CryptoError("data burst must be 64 bytes")
        return xor_bytes(wire, self._data_pads(self._response_stream))

    # -- authentication tags (§3.5) ---------------------------------------

    def make_tag(self, request_type: RequestType, address: int, counter: int) -> bytes:
        """encrypt-and-MAC: beta = H(r|a|c) — computable before encryption."""
        return encrypt_and_mac_tag(
            self._key, _TYPE_CODES[request_type], address, counter
        )

    def verify_tag(self, decoded: DecodedCommand, tag: bytes) -> None:
        """Recompute H(r|a|c) with *our* counter and compare (§3.5).

        A tampered type or address, a dropped message (stale counter), or a
        replay all change one of the three inputs, so the tag mismatches.
        """
        expected = self.make_tag(decoded.request_type, decoded.address, decoded.counter)
        if not constant_time_equal(expected, tag):
            raise IntegrityError(
                "bus MAC mismatch: request tampering, deletion or replay detected"
            )

    def make_ciphertext_tag(self, wire_message: bytes) -> bytes:
        """encrypt-then-MAC: alpha = H(M) over the encrypted message."""
        return encrypt_then_mac_tag(self._key, wire_message)

    def verify_ciphertext_tag(self, wire_message: bytes, tag: bytes) -> None:
        """Check an encrypt-then-MAC tag over wire bytes (raises on mismatch)."""
        if not constant_time_equal(self.make_ciphertext_tag(wire_message), tag):
            raise IntegrityError("bus MAC mismatch on ciphertext (encrypt-then-MAC)")
