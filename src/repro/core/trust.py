"""ObfusMem trust architecture (paper §3.1).

Models the full cast: component *manufacturers* burn public/private key
pairs into processor and memory chips and act as certification authorities;
a *system integrator* (trusted or not) programs each component's public key
into its counterpart's write-once spare registers; at boot the components
run an authenticated Diffie–Hellman exchange to derive per-channel session
keys for the obfuscated bus.

Three bootstrapping approaches from the paper are implemented:

* **naive** — public keys exchanged in the clear during BIOS.  Vulnerable
  to a machine-in-the-middle with physical access; the attack harness
  demonstrates the key-substitution attack the paper warns about.
* **trusted integrator** — keys pre-burned by the integrator; the DH
  exchange is authenticated by signatures under those keys.
* **untrusted integrator** — additionally verifies SGX-like signed
  attestation measurements so a malicious integrator who burned wrong keys
  is detected (system fails closed with :class:`TrustError`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.session import SessionKeyTable
from repro.crypto.diffie_hellman import DhGroup, DhParty
from repro.crypto.rng import DeterministicRng
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, verify
from repro.crypto.sha1 import sha1
from repro.errors import TrustError

DEFAULT_RSA_BITS = 256  # simulation-scale identity keys
DEFAULT_SPARE_REGISTERS = 4  # allows a limited number of component upgrades


@dataclass(frozen=True)
class AttestationReport:
    """A signed self-measurement (the SGX-like flow of approach three)."""

    measurement: bytes
    signature: int
    claimed_public_key: RsaPublicKey
    claims_obfusmem_capable: bool


class Manufacturer:
    """Generates and burns component identities; acts as the CA."""

    def __init__(self, name: str, rng: DeterministicRng, rsa_bits: int = DEFAULT_RSA_BITS):
        self.name = name
        self._rng = rng.fork(f"manufacturer-{name}")
        self._rsa_bits = rsa_bits
        self._issued: list[RsaPublicKey] = []

    def fabricate_keypair(self) -> RsaKeyPair:
        """Generate and register one chip identity key pair."""
        keypair = RsaKeyPair.generate(self._rng, bits=self._rsa_bits)
        self._issued.append(keypair.public)
        return keypair

    def vouches_for(self, public_key: RsaPublicKey) -> bool:
        """CA check: did this manufacturer burn this key into a chip?"""
        return public_key in self._issued


class Chip:
    """Common identity machinery of processor and memory chips."""

    def __init__(
        self,
        manufacturer: Manufacturer,
        obfusmem_capable: bool = True,
        spare_registers: int = DEFAULT_SPARE_REGISTERS,
    ):
        self._keypair = manufacturer.fabricate_keypair()
        self.manufacturer = manufacturer
        self.obfusmem_capable = obfusmem_capable
        # Write-once registers holding counterpart public keys, programmed
        # by the system integrator.
        self._burned_peer_keys: list[RsaPublicKey] = []
        self._spare_registers = spare_registers

    @property
    def public_key(self) -> RsaPublicKey:
        return self._keypair.public

    def burn_peer_key(self, key: RsaPublicKey) -> None:
        """Integrator programs a counterpart key into a spare register."""
        if len(self._burned_peer_keys) >= self._spare_registers:
            raise TrustError("no spare key registers left for component upgrade")
        self._burned_peer_keys.append(key)

    def knows_peer(self, key: RsaPublicKey) -> bool:
        """True if this counterpart key was burned into a register."""
        return key in self._burned_peer_keys

    @property
    def burned_peer_keys(self) -> list[RsaPublicKey]:
        """Read-only view of the integrator-programmed counterpart keys."""
        return list(self._burned_peer_keys)

    # -- attestation (approach three) -----------------------------------

    def measurement(self) -> bytes:
        """Hardware/firmware self-measurement, including capability bits
        and this chip's manufacturer-installed public key."""
        capability = b"obfusmem-capable" if self.obfusmem_capable else b"legacy"
        modulus = self.public_key.modulus
        return sha1(
            capability + modulus.to_bytes((modulus.bit_length() + 7) // 8, "big")
        )

    def attest(self) -> AttestationReport:
        """Produce a signed self-measurement (SGX-like report)."""
        measurement = self.measurement()
        return AttestationReport(
            measurement=measurement,
            signature=self._keypair.sign(measurement),
            claimed_public_key=self.public_key,
            claims_obfusmem_capable=self.obfusmem_capable,
        )

    # -- authenticated DH ------------------------------------------------

    def sign_dh_value(self, dh_public_value: int, context: bytes) -> int:
        """Sign a Diffie-Hellman public value under the chip identity."""
        return self._keypair.sign(context + dh_public_value.to_bytes(64, "big"))


class ProcessorChip(Chip):
    """The CPU die: one ObfusMem controller per memory channel."""


class MemoryChip(Chip):
    """A 3D/2.5D memory module's logic layer, serving one channel."""

    def __init__(self, manufacturer: Manufacturer, channel: int, **kwargs):
        super().__init__(manufacturer, **kwargs)
        self.channel = channel


class SystemIntegrator:
    """Programs component identities at build time.

    A malicious integrator substitutes its own key for the processor's when
    programming the memory chips (and vice versa), hoping to machine-in-the-
    middle the session-key exchange later.
    """

    def __init__(self, rng: DeterministicRng, malicious: bool = False):
        self.malicious = malicious
        self._mitm_keypair = (
            RsaKeyPair.generate(rng.fork("mitm"), bits=DEFAULT_RSA_BITS)
            if malicious
            else None
        )

    def integrate(self, processor: ProcessorChip, memories: list[MemoryChip]) -> None:
        """Burn counterpart public keys into both sides' registers."""
        for memory in memories:
            if self.malicious:
                memory.burn_peer_key(self._mitm_keypair.public)
                processor.burn_peer_key(self._mitm_keypair.public)
            else:
                memory.burn_peer_key(processor.public_key)
                processor.burn_peer_key(memory.public_key)


def _authenticated_exchange(
    processor: ProcessorChip,
    memory: MemoryChip,
    processor_trusts: RsaPublicKey,
    memory_trusts: RsaPublicKey,
    rng: DeterministicRng,
    group: DhGroup,
) -> bytes:
    """Signed Diffie–Hellman between one processor and one memory chip.

    Each side signs its DH public value with its burned private key; the
    other verifies against the key it was told to trust.  Returns the
    16-byte session key (identical on both sides by construction).
    """
    context = b"obfusmem-session-v1"
    proc_party = DhParty(group, rng.fork(f"dh-proc-{memory.channel}"))
    mem_party = DhParty(group, rng.fork(f"dh-mem-{memory.channel}"))

    proc_signature = processor.sign_dh_value(proc_party.public_value, context)
    mem_signature = memory.sign_dh_value(mem_party.public_value, context)

    # Memory verifies the processor's signed DH value.
    if not verify(
        memory_trusts,
        context + proc_party.public_value.to_bytes(64, "big"),
        proc_signature,
    ):
        raise TrustError(
            f"channel {memory.channel}: processor DH signature rejected "
            "(wrong burned key or tampered exchange)"
        )
    # Processor verifies the memory's signed DH value.
    if not verify(
        processor_trusts,
        context + mem_party.public_value.to_bytes(64, "big"),
        mem_signature,
    ):
        raise TrustError(
            f"channel {memory.channel}: memory DH signature rejected "
            "(wrong burned key or tampered exchange)"
        )

    proc_key = proc_party.session_key(mem_party.public_value)
    mem_key = mem_party.session_key(proc_party.public_value)
    if proc_key != mem_key:
        raise TrustError("DH exchange produced mismatched session keys")
    return proc_key


def bootstrap_naive(
    processor: ProcessorChip,
    memories: list[MemoryChip],
    rng: DeterministicRng,
    group: DhGroup | None = None,
) -> SessionKeyTable:
    """Approach one: exchange public keys in the clear at BIOS time.

    Works only if boot is physically isolated — each side simply trusts
    whatever key it received.  (The paper recommends against this; the
    attack tests show why.)
    """
    group = group or DhGroup.generate(rng.fork("group"))
    keys = {}
    for memory in memories:
        keys[memory.channel] = _authenticated_exchange(
            processor,
            memory,
            processor_trusts=memory.public_key,  # learned in the clear
            memory_trusts=processor.public_key,  # learned in the clear
            rng=rng,
            group=group,
        )
    return SessionKeyTable(keys)


def demonstrate_naive_mitm(
    processor: ProcessorChip,
    memory: MemoryChip,
    rng: DeterministicRng,
    group: DhGroup | None = None,
) -> tuple[bytes, bytes, bytes, bytes]:
    """The attack that sinks the naive approach (why §3.1 rejects it).

    With physical access during the in-the-clear BIOS key exchange, a
    machine-in-the-middle substitutes its own public key in both directions
    and relays traffic.  Each side happily authenticates "the other side"
    — actually the attacker — and derives a session key *with the
    attacker*, who can now decrypt, re-encrypt and observe everything.

    Returns ``(processor_key, attacker_key_to_processor, memory_key,
    attacker_key_to_memory)``: the demonstration (and its test) checks that
    the attacker shares a key with each victim while the victims never
    actually share one with each other.
    """
    group = group or DhGroup.generate(rng.fork("group"))
    attacker = Chip(Manufacturer("mitm-fab", rng.fork("mitm")))

    # Processor <-> attacker (processor believes it talks to the memory:
    # in the naive exchange it trusts whatever key arrived in the clear).
    fake_memory = MemoryChip(attacker.manufacturer, channel=memory.channel)
    processor_key = _authenticated_exchange(
        processor,
        fake_memory,
        processor_trusts=fake_memory.public_key,  # received in the clear
        memory_trusts=processor.public_key,
        rng=rng.fork("mitm-proc-side"),
        group=group,
    )
    # Attacker <-> memory (memory believes it talks to the processor).
    fake_processor = ProcessorChip(attacker.manufacturer)
    memory_key = _authenticated_exchange(
        fake_processor,
        memory,
        processor_trusts=memory.public_key,
        memory_trusts=fake_processor.public_key,  # received in the clear
        rng=rng.fork("mitm-mem-side"),
        group=group,
    )
    # The attacker ran both exchanges, so it holds both keys.
    return processor_key, processor_key, memory_key, memory_key


def bootstrap_trusted_integrator(
    processor: ProcessorChip,
    memories: list[MemoryChip],
    rng: DeterministicRng,
    group: DhGroup | None = None,
) -> SessionKeyTable:
    """Approach two: trust the keys the integrator burned into registers."""
    group = group or DhGroup.generate(rng.fork("group"))
    keys = {}
    for index, memory in enumerate(memories):
        if not memory.burned_peer_keys or not processor.burned_peer_keys:
            raise TrustError("system was never integrated: no burned keys")
        keys[memory.channel] = _authenticated_exchange(
            processor,
            memory,
            processor_trusts=processor.burned_peer_keys[index],
            memory_trusts=memory.burned_peer_keys[0],
            rng=rng,
            group=group,
        )
    return SessionKeyTable(keys)


def bootstrap_untrusted_integrator(
    processor: ProcessorChip,
    memories: list[MemoryChip],
    rng: DeterministicRng,
    group: DhGroup | None = None,
) -> SessionKeyTable:
    """Approach three: attestation catches a malicious integrator.

    Each side checks the counterpart's signed measurement: the measurement
    must declare ObfusMem capability, the signature must verify under the
    claimed key, and the claimed key must equal the burned-register key.  A
    wrong burned key fails the match and the system refuses to boot.
    """
    for index, memory in enumerate(memories):
        if not memory.burned_peer_keys or index >= len(processor.burned_peer_keys):
            raise TrustError("system was never integrated: no burned keys")
        # Memory verifies the processor's attestation.
        report = processor.attest()
        _check_report(report, memory.burned_peer_keys[0], "processor")
        # Processor verifies the memory's attestation.
        report = memory.attest()
        _check_report(report, processor.burned_peer_keys[index], "memory")
    return bootstrap_trusted_integrator(processor, memories, rng, group)


def _check_report(report: AttestationReport, burned: RsaPublicKey, who: str) -> None:
    if not report.claims_obfusmem_capable:
        raise TrustError(f"{who} is not ObfusMem-capable")
    if not verify(report.claimed_public_key, report.measurement, report.signature):
        raise TrustError(f"{who} attestation signature invalid")
    if report.claimed_public_key != burned:
        raise TrustError(
            f"{who} attestation key does not match the burned register: "
            "the system integrator programmed the wrong key"
        )
