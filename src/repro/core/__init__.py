"""ObfusMem core: the paper's primary contribution.

Timing path (used by the performance experiments):
:class:`ObfusMemController` over :class:`repro.mem.MemorySystem`.

Functional path (real crypto, used by examples and the security analysis):
:class:`FunctionalObfusMem` with its :class:`MemorySideLogic`.

Trust establishment: :mod:`repro.core.trust` (manufacturers, integrators,
attestation, authenticated Diffie–Hellman) producing a
:class:`SessionKeyTable`.
"""

from repro.core.config import (
    AuthMode,
    ChannelInjection,
    DummyAddressPolicy,
    ObfusMemConfig,
)
from repro.core.controller import ObfusMemController
from repro.core.dummy import DummyRequestFactory
from repro.core.functional import FunctionalObfusMem, MemorySideLogic
from repro.core.hide import HideController
from repro.core.oblivious import TimingObliviousShaper
from repro.core.packets import ChannelCodec, DecodedCommand
from repro.core.session import SessionKeyTable
from repro.core.system import BootApproach, FunctionalObfusMemSystem
from repro.core.trust import (
    AttestationReport,
    Chip,
    Manufacturer,
    MemoryChip,
    ProcessorChip,
    SystemIntegrator,
    bootstrap_naive,
    bootstrap_trusted_integrator,
    bootstrap_untrusted_integrator,
)

__all__ = [
    "AuthMode",
    "ChannelInjection",
    "DummyAddressPolicy",
    "ObfusMemConfig",
    "ObfusMemController",
    "DummyRequestFactory",
    "FunctionalObfusMem",
    "MemorySideLogic",
    "HideController",
    "TimingObliviousShaper",
    "ChannelCodec",
    "DecodedCommand",
    "SessionKeyTable",
    "BootApproach",
    "FunctionalObfusMemSystem",
    "AttestationReport",
    "Chip",
    "Manufacturer",
    "MemoryChip",
    "ProcessorChip",
    "SystemIntegrator",
    "bootstrap_naive",
    "bootstrap_trusted_integrator",
    "bootstrap_untrusted_integrator",
]
