"""Timing-oblivious traffic shaping — the §6.2 future-work extension.

The paper sketches how ObfusMem can also close the request-*timing* side
channel: "ObfusMem accesses can be made timing oblivious by spacing timing
of requests, assuming worst timing case, and not dropping dummy requests."
This module implements exactly that sketch:

* every channel issues one request per fixed **epoch** — a real request if
  one is queued, a dummy read-then-write pair otherwise — so the command
  arrival process carries no information;
* the controller is configured with ``drop_dummies=False`` so a dummy's
  service inside the memory is indistinguishable in time from a real
  access's (a dropped dummy would answer faster than a bank access — a
  timing tell the paper's note anticipates).

The shaper sits above the :class:`ObfusMemController` as a request port.
Because the paper leaves parameters open, the epoch defaults to a
worst-case-ish service interval and is fully configurable; the ablation
bench sweeps it.

A real deployment shapes forever; a simulation must terminate, so the
shaper stops ticking after ``linger_epochs`` empty epochs once its queues
drain.  The tail of the run therefore leaks "the program stopped", which a
real system would avoid by never stopping — a simulation artifact, not a
protocol one.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from functools import partial

from repro.core.config import ChannelInjection
from repro.core.controller import ObfusMemController
from repro.errors import ConfigurationError
from repro.mem.request import MemoryRequest
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry

CompletionCallback = Callable[[MemoryRequest], None]

DEFAULT_EPOCH_NS = 100.0  # ~worst-case single-access service time
DEFAULT_LINGER_EPOCHS = 4


class TimingObliviousShaper:
    """Fixed-epoch request release per channel (constant-shape traffic)."""

    def __init__(
        self,
        engine: Engine,
        controller: ObfusMemController,
        stats: StatRegistry,
        epoch_ns: float = DEFAULT_EPOCH_NS,
        linger_epochs: int = DEFAULT_LINGER_EPOCHS,
    ):
        if epoch_ns <= 0:
            raise ConfigurationError("epoch must be positive")
        if linger_epochs < 1:
            raise ConfigurationError("linger must be >= 1 epoch")
        if controller.config.channel_injection is not ChannelInjection.NONE:
            raise ConfigurationError(
                "the shaper owns all channel scheduling; configure the "
                "controller with ChannelInjection.NONE"
            )
        if controller.config.drop_dummies:
            raise ConfigurationError(
                "timing obliviousness requires drop_dummies=False (§6.2: a "
                "dropped dummy answers faster than a real access)"
            )
        self.engine = engine
        self.controller = controller
        self.epoch_ps = ns_to_ps(epoch_ns)
        self.linger_epochs = linger_epochs
        self.stats = stats.group("oblivious")
        channels = controller.mapping.channels
        self._queues: list[deque] = [deque() for _ in range(channels)]
        self._idle_epochs = [0] * channels
        self._ticking = [False] * channels

    # ------------------------------------------------------------------

    def issue(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        """Queue a request; it will leave in its channel's next free slot."""
        channel = self.controller.mapping.channel_of(request.address)
        self._queues[channel].append((request, callback))
        self.stats.add("requests_shaped")
        if not self._ticking[channel]:
            self._start_channel(channel)

    def _start_channel(self, channel: int) -> None:
        self._ticking[channel] = True
        self._idle_epochs[channel] = 0
        self.engine.post(0, partial(self._tick, channel))

    def _tick(self, channel: int) -> None:
        queue = self._queues[channel]
        if queue:
            request, callback = queue.popleft()
            self._idle_epochs[channel] = 0
            self.controller.issue(request, callback)
            self.stats.add("slots_real")
        else:
            self._idle_epochs[channel] += 1
            if self._idle_epochs[channel] > self.linger_epochs:
                # Simulation-termination artifact; see module docstring.
                self._ticking[channel] = False
                return
            self.controller.inject_pair(channel)
            self.stats.add("slots_dummy")
        self.engine.post(self.epoch_ps, partial(self._tick, channel))

    # ------------------------------------------------------------------

    @property
    def slot_utilization(self) -> float:
        """Fraction of issued slots that carried real requests."""
        real = self.stats.get("slots_real")
        total = real + self.stats.get("slots_dummy")
        return real / total if total else 0.0
