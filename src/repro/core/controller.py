"""Processor-side ObfusMem controller (timing path).

Sits between the secure memory controller (or directly the LLC) and the
multi-channel memory system.  For every real request it:

1. adds the on-chip critical-path cost of bus encryption — pads are
   pre-generated from the session counter, so only the XOR (plus any
   residual MAC-generation latency, §3.5) is exposed;
2. escorts the request with a piggybacked dummy of the *opposite* type on
   the same channel, so every access appears on the wire as read-then-write
   (§3.3) — or substitutes a pending real write for the dummy when the
   bandwidth optimization is enabled;
3. injects dummy read+write pairs on other channels per the configured
   inter-channel strategy (§3.4): all of them (UNOPT) or idle ones only
   (OPT);
4. hands the channel scheduler opaque wire bytes so a bus observer sees
   only ciphertext, and counts the 128-bit pads both sides consume (the
   §5.2 energy accounting).

The *functional* encrypted stack (real AES-CTR packets, MAC verification
and dummy dropping on live data) lives in :mod:`repro.core.functional`;
this class models the same behaviour at simulation speed.
"""

from __future__ import annotations

from collections.abc import Callable
from functools import partial

from repro.core.config import AuthMode, ChannelInjection, ObfusMemConfig
from repro.core.dummy import DummyRequestFactory
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.request import MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

CompletionCallback = Callable[[MemoryRequest], None]

# Pad accounting per §5.2: a protected access costs ten 128-bit pads on the
# processor side (1 real command + 1 dummy command + 4 bus data + 4 at-rest
# data) and six on the memory side.
PADS_PROCESSOR_SIDE = 10
PADS_MEMORY_SIDE = 6


class ObfusMemController:
    """Timing model of the processor-side obfuscation engine."""

    def __init__(
        self,
        engine: Engine,
        memory: MemorySystem,
        config: ObfusMemConfig,
        stats: StatRegistry,
        rng: DeterministicRng,
    ):
        self.engine = engine
        self.memory = memory
        self.mapping = memory.mapping
        self.config = config
        self.stats = stats.group("obfusmem")
        self._rng = rng
        self._dummy_factory = DummyRequestFactory(
            config.dummy_policy, self.mapping, rng.fork("dummy-addresses")
        )
        # Wire ciphertext only exists for an observer.  Without a bus there
        # is nothing to observe, so the (measurably hot) random-byte draws
        # are skipped; the scheduler never reads wire bytes when its bus is
        # None, and this rng stream feeds nothing else, so timing results
        # are bit-identical either way.
        self._observed = memory.bus is not None
        # Hot-path bindings and precomputed per-request constants: config is
        # fixed for a run, so the issue/response critical-path delays, the
        # per-channel pad counter keys and the enqueue keyword values never
        # change after construction.
        self._counters = self.stats.counters()
        self._channels = memory.channels
        self._issue_delay_ps = self._issue_path_delay_ps()
        self._resp_delay_ps = self._response_delay_ps()
        self._command_slots = config.command_slots
        self._tag_bus_extra_ps = config.tag_bus_extra_ps
        self._pad_keys = [
            (f"pads_processor_ch{c}", f"pads_memory_ch{c}")
            for c in range(self.mapping.channels)
        ]
        self._substitute = config.substitute_dummies
        self._single_channel = self.mapping.channels == 1
        self._drop_dummies = config.drop_dummies
        self._inject = (
            config.channel_injection is not ChannelInjection.NONE
            and self.mapping.channels > 1
        )

    # ------------------------------------------------------------------
    # Port interface
    # ------------------------------------------------------------------

    def issue(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        """Protect and forward one request."""
        if request.is_dummy:
            raise ConfigurationError("dummies are generated inside the controller")
        self._counters["requests_protected"] += 1
        # partial of a bound method (not a closure): event callbacks must
        # stay picklable so a queued event survives a checkpoint.
        self.engine.post(
            self._issue_delay_ps, partial(self._dispatch, request, callback)
        )

    def flush(self) -> None:
        """End-of-run hook (nothing is held back; kept for API symmetry)."""

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------

    def _issue_path_delay_ps(self) -> int:
        """On-chip latency added before the request reaches the channel."""
        engines = self.config.engines
        delay = engines.xor_ps  # pad pre-generated; XOR only (§3.2)
        if self.config.auth is AuthMode.ENCRYPT_AND_MAC:
            # Tag over (r|a|c) is anticipated and overlapped; a small
            # residual tail remains exposed.
            delay += self.config.auth_gen_residual_ps
        elif self.config.auth is AuthMode.ENCRYPT_THEN_MAC:
            # Tag over the ciphertext: MAC serializes behind encryption.
            delay += engines.md5_latency_ps
        return delay

    def _response_delay_ps(self) -> int:
        """Latency added on the return path of a read."""
        engines = self.config.engines
        delay = engines.xor_ps + self.config.auth_verify_exposed_ps()
        return delay

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        channel = 0 if self._single_channel else self.mapping.channel_of(request.address)
        # §5.2 accounting: one protected access (real + piggyback half)
        # consumes 10 processor-side + 6 memory-side 128-bit pads.
        self._account_pads(channel)
        if request.request_type is RequestType.READ:
            self._send(channel, request, callback)
            self._pair_with_write_half(channel, request)
        else:
            self._handle_write(channel, request, callback)
        if self._inject:
            self._inject_other_channels(channel)

    def _pair_with_write_half(self, channel: int, read_request: MemoryRequest) -> None:
        """Every read is piggybacked with a write (§3.3, read-then-write).

        With the bandwidth optimization on, a real write already queued at
        this channel stands in for the dummy-write half: the wire still
        shows a read-then-write pattern, but no dummy bandwidth is spent.
        """
        target = self._channels[channel]
        if (
            self._substitute
            and target._pending_real_writes > 0
            and target.promote_oldest_write()
        ):
            self.stats.add("dummy_writes_substituted")
        else:
            self._send_dummy(channel, RequestType.WRITE, read_request.address)

    def _handle_write(
        self, channel: int, request: MemoryRequest, callback: CompletionCallback | None
    ) -> None:
        """Every write is preceded by a read half (§3.3).

        A real read already queued at the channel substitutes for the dummy
        read when the optimization is on; the write itself is issued
        immediately either way (its scheduling is never perturbed).
        """
        if (
            self._substitute
            and self._channels[channel]._pending_real_reads > 0
        ):
            self.stats.add("dummy_reads_substituted")
        else:
            self._send_dummy(channel, RequestType.READ, request.address)
        self._send(channel, request, callback)

    def _inject_other_channels(self, active_channel: int) -> None:
        """Inter-channel obfuscation (§3.4, Observation 3)."""
        mode = self.config.channel_injection
        for channel in range(self.mapping.channels):
            if channel == active_channel:
                continue
            if mode is ChannelInjection.OPT and self.memory.channels[channel].busy:
                self.stats.add("injections_skipped_busy")
                continue
            self.inject_pair(channel)

    def inject_pair(self, channel: int) -> None:
        """Inject one dummy read-then-write pair on a channel.

        Used internally by the §3.4 inter-channel strategies, and by the
        §6.2 timing-oblivious shaper to fill empty request slots.
        """
        self._send_dummy(channel, RequestType.READ, None)
        self._send_dummy(channel, RequestType.WRITE, None)
        self._account_pads(channel)
        self.stats.add("channel_pairs_injected")

    # ------------------------------------------------------------------
    # Wire transmission
    # ------------------------------------------------------------------

    # Wire bytes: opaque ciphertext stand-ins, drawn inline at the two
    # enqueue sites.  Counter-mode guarantees ciphertexts never repeat; 16
    # (command) / 64 (data) random bytes have the same observable property
    # at simulation speed.  ``None`` when no bus observer exists (the bytes
    # would never be read).

    def _account_pads(self, channel: int) -> None:
        counters = self._counters
        processor_key, memory_key = self._pad_keys[channel]
        counters[processor_key] += PADS_PROCESSOR_SIDE
        counters[memory_key] += PADS_MEMORY_SIDE
        counters["pads_total"] += PADS_PROCESSOR_SIDE + PADS_MEMORY_SIDE

    def _send(
        self, channel: int, request: MemoryRequest, callback: CompletionCallback | None
    ) -> None:
        wrapped = callback
        if callback is not None and request.request_type is RequestType.READ:
            wrapped = partial(self._deliver, callback)
        if self._observed:
            wire_command = self._rng.token_bytes(16)
            wire_data = self._rng.token_bytes(64)
        else:
            wire_command = wire_data = None
        self._channels[channel].enqueue(
            request,
            wrapped,
            wire_command,
            wire_data,
            self._command_slots,
            self._tag_bus_extra_ps,
        )

    def _deliver(
        self, callback: CompletionCallback, completed: MemoryRequest
    ) -> None:
        """Return-path hook: schedule the on-chip response delay."""
        self.engine.post(
            self._resp_delay_ps, partial(self._complete_read, callback, completed)
        )

    def _complete_read(
        self, callback: CompletionCallback, completed: MemoryRequest
    ) -> None:
        """Stamp the completion time and hand the read back upstream."""
        completed.complete_time_ps = self.engine._now_ps
        callback(completed)

    def _send_dummy(
        self, channel: int, request_type: RequestType, real_address: int | None
    ) -> None:
        dummy = self._dummy_factory.make(channel, request_type, real_address)
        if not self._drop_dummies:
            # §6.2 timing-oblivious mode: dummies hit the array so their
            # service timing matches real accesses.
            dummy.droppable = False
        self._counters[
            "dummy_reads" if request_type is RequestType.READ else "dummy_writes"
        ] += 1
        if self._observed:
            wire_command = self._rng.token_bytes(16)
            wire_data = self._rng.token_bytes(64)
        else:
            wire_command = wire_data = None
        self._channels[channel].enqueue(
            dummy,
            None,
            wire_command,
            wire_data,
            self._command_slots,
            self._tag_bus_extra_ps,
        )
