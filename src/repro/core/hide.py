"""HIDE-style chunk-level address permutation (Zhuang et al., ASPLOS 2004).

§7 contrasts ObfusMem with the pre-ORAM hardware obfuscators that permute
the address space at small-chunk granularity (typically 64KB): their
overheads are low, but they obfuscate only *within* a chunk — chunk-grain
spatial patterns and cross-epoch temporal reuse remain visible.  This
module implements that baseline so the comparison is measurable:

* block addresses are remapped through a per-chunk random permutation;
* after ``repermute_interval`` accesses to a chunk, the chunk is
  re-permuted, modelled with the block transfers HIDE performs when it
  re-shuffles a chunk through the (trusted) cache;
* addresses leave the chip in *plaintext* — only the permutation hides
  anything, exactly the scheme's design point.

The leakage suite quantifies what this buys and what it leaks compared to
ObfusMem (intra-chunk locality hidden; chunk-level locality and same-epoch
repeats visible).
"""

from __future__ import annotations

from collections.abc import Callable
from functools import partial

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.request import BLOCK_SIZE_BYTES, MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.sim.statistics import StatRegistry

CompletionCallback = Callable[[MemoryRequest], None]

DEFAULT_CHUNK_BYTES = 64 << 10  # the 64KB granularity of the cited schemes
DEFAULT_REPERMUTE_INTERVAL = 2048  # infrequent: the schemes are cheap by design


class HideController:
    """Chunk-permutation obfuscation layer (a measurable §7 baseline)."""

    def __init__(
        self,
        memory: MemorySystem,
        stats: StatRegistry,
        rng: DeterministicRng,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        repermute_interval: int = DEFAULT_REPERMUTE_INTERVAL,
        repermute_cost_blocks: int | None = None,
    ):
        if chunk_bytes % BLOCK_SIZE_BYTES:
            raise ConfigurationError("chunk must hold whole blocks")
        if repermute_interval < 1:
            raise ConfigurationError("re-permute interval must be >= 1")
        self.memory = memory
        self.mapping = memory.mapping
        self.stats = stats.group("hide")
        self._rng = rng
        self.chunk_bytes = chunk_bytes
        self.blocks_per_chunk = chunk_bytes // BLOCK_SIZE_BYTES
        self.repermute_interval = repermute_interval
        # HIDE re-shuffles a chunk by pulling its blocks through the cache:
        # the re-permutation moves the whole chunk once (read + write).
        self.repermute_cost_blocks = (
            repermute_cost_blocks
            if repermute_cost_blocks is not None
            else self.blocks_per_chunk
        )
        self._permutations: dict[int, list[int]] = {}
        self._access_counts: dict[int, int] = {}

    # ------------------------------------------------------------------

    def _permutation(self, chunk: int) -> list[int]:
        if chunk not in self._permutations:
            permutation = list(range(self.blocks_per_chunk))
            self._rng.shuffle(permutation)
            self._permutations[chunk] = permutation
            self._access_counts[chunk] = 0
        return self._permutations[chunk]

    def remap(self, address: int) -> int:
        """Current permuted address of a block (no state change)."""
        chunk, offset = divmod(address, self.chunk_bytes)
        block_offset = offset // BLOCK_SIZE_BYTES
        permuted = self._permutation(chunk)[block_offset]
        return chunk * self.chunk_bytes + permuted * BLOCK_SIZE_BYTES

    def issue(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        """Remap and forward; re-permute the chunk when its epoch expires."""
        chunk = request.address // self.chunk_bytes
        remapped = MemoryRequest(
            address=self.remap(request.address),
            request_type=request.request_type,
            payload=request.payload,
            core_id=request.core_id,
        )
        remapped.issue_time_ps = request.issue_time_ps

        if callback is None:
            self.memory.issue(remapped, None)
        else:
            # Bound-method partial (picklable) so the pending completion
            # survives a checkpoint; a closure would not.
            self.memory.issue(remapped, partial(self._forward, request, callback))
        self.stats.add("requests_remapped")

        self._access_counts[chunk] = self._access_counts.get(chunk, 0) + 1
        if self._access_counts[chunk] >= self.repermute_interval:
            self._repermute(chunk)

    def _forward(
        self,
        request: MemoryRequest,
        callback: CompletionCallback,
        completed: MemoryRequest,
    ) -> None:
        """Completion hook: copy the remapped result back onto the original."""
        request.payload = completed.payload
        request.complete_time_ps = completed.complete_time_ps
        callback(request)

    def _repermute(self, chunk: int) -> None:
        """Draw a fresh permutation and pay the chunk-move traffic.

        Each sampled block is read from its *old* permuted home and written
        to its *new* one, in shuffled order — what the bus actually sees
        when HIDE re-shuffles a chunk through the cache.
        """
        old_permutation = self._permutation(chunk)
        new_permutation = list(range(self.blocks_per_chunk))
        self._rng.shuffle(new_permutation)
        self._permutations[chunk] = new_permutation
        self._access_counts[chunk] = 0
        self.stats.add("repermutations")
        base = chunk * self.chunk_bytes
        step = max(1, self.blocks_per_chunk // self.repermute_cost_blocks)
        moves = list(range(0, self.blocks_per_chunk, step))
        self._rng.shuffle(moves)
        for block in moves:
            old_address = base + old_permutation[block] * BLOCK_SIZE_BYTES
            new_address = base + new_permutation[block] * BLOCK_SIZE_BYTES
            self.memory.issue(MemoryRequest(old_address, RequestType.READ), None)
            self.memory.issue(MemoryRequest(new_address, RequestType.WRITE), None)
            self.stats.add("repermute_blocks_moved")
