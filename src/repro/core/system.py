"""A complete functional ObfusMem machine: chips to ciphertext.

Glues together everything the paper's §3 describes, with real crypto end to
end: manufacturers fabricate the processor and one memory module per
channel; a system integrator burns counterpart keys; boot attestation and
authenticated Diffie–Hellman derive one session key per channel
(:mod:`repro.core.trust`); then every channel runs a
:class:`repro.core.functional.FunctionalObfusMem` stack, with the
RoRaBaChCo mapping routing block addresses to channels and full-replication
dummy pairs keeping the other channels co-active on every access (§3.4).

This is the functional twin of the multi-channel timing system that
:func:`repro.system.builder.build_system` wires; the examples and security
tests use it when they need live data and real wire bytes.
"""

from __future__ import annotations

import enum

from repro.core.config import AuthMode
from repro.core.functional import FunctionalObfusMem
from repro.core.trust import (
    Manufacturer,
    MemoryChip,
    ProcessorChip,
    SystemIntegrator,
    bootstrap_naive,
    bootstrap_trusted_integrator,
    bootstrap_untrusted_integrator,
)
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import MemoryBus
from repro.mem.request import BLOCK_SIZE_BYTES, block_aligned


class BootApproach(enum.Enum):
    """The three §3.1 trust-bootstrapping approaches."""

    NAIVE = "naive"
    TRUSTED_INTEGRATOR = "trusted_integrator"
    UNTRUSTED_INTEGRATOR = "untrusted_integrator"


_BOOTSTRAPPERS = {
    BootApproach.NAIVE: bootstrap_naive,
    BootApproach.TRUSTED_INTEGRATOR: bootstrap_trusted_integrator,
    BootApproach.UNTRUSTED_INTEGRATOR: bootstrap_untrusted_integrator,
}


class FunctionalObfusMemSystem:
    """Multi-channel functional machine with a real boot sequence."""

    def __init__(
        self,
        rng: DeterministicRng,
        channels: int = 2,
        capacity_bytes: int = 1 << 30,
        approach: BootApproach = BootApproach.UNTRUSTED_INTEGRATOR,
        auth: AuthMode = AuthMode.ENCRYPT_AND_MAC,
        bus: MemoryBus | None = None,
        inter_channel_dummies: bool = True,
        malicious_integrator: bool = False,
    ):
        self.mapping = AddressMapping(capacity_bytes=capacity_bytes, channels=channels)
        self.auth = auth
        self._inter_channel_dummies = inter_channel_dummies

        # --- manufacture and integrate (§3.1) --------------------------
        cpu_vendor = Manufacturer("cpu-vendor", rng)
        memory_vendor = Manufacturer("memory-vendor", rng)
        self.processor = ProcessorChip(cpu_vendor)
        self.memory_chips = [
            MemoryChip(memory_vendor, channel=c) for c in range(channels)
        ]
        SystemIntegrator(rng.fork("integrator"), malicious=malicious_integrator).integrate(
            self.processor, self.memory_chips
        )

        # --- boot: attestation + authenticated DH ----------------------
        self.session_keys = _BOOTSTRAPPERS[approach](
            self.processor, self.memory_chips, rng.fork("boot")
        )

        # --- per-channel encrypted stacks -------------------------------
        memory_key_rng = rng.fork("memory-key")
        self.channels = [
            FunctionalObfusMem(
                session_key=self.session_keys.key_for(c),
                memory_key=memory_key_rng.token_bytes(16),
                rng=rng.fork(f"channel-{c}"),
                dummy_address=self.mapping.dummy_block_address(c),
                auth=auth,
                bus=bus,
                channel=c,
            )
            for c in range(channels)
        ]

    # ------------------------------------------------------------------

    def _channel_for(self, address: int) -> FunctionalObfusMem:
        return self.channels[self.mapping.channel_of(address)]

    def _obfuscate_other_channels(self, active_channel: int) -> None:
        """§3.4 full replication: a dummy pair on every other channel."""
        if not self._inter_channel_dummies:
            return
        for index, channel in enumerate(self.channels):
            if index == active_channel:
                continue
            channel.inject_dummy_pair()

    def write(self, address: int, block: bytes) -> None:
        """Protected write of one 64-byte block."""
        if len(block) != BLOCK_SIZE_BYTES:
            raise ConfigurationError(f"block must be {BLOCK_SIZE_BYTES} bytes")
        address = block_aligned(address)
        channel_index = self.mapping.channel_of(address)
        self.channels[channel_index].write(address, block)
        self._obfuscate_other_channels(channel_index)

    def read(self, address: int) -> bytes:
        """Protected read of one 64-byte block."""
        address = block_aligned(address)
        channel_index = self.mapping.channel_of(address)
        data = self.channels[channel_index].read(address)
        self._obfuscate_other_channels(channel_index)
        return data

    # ------------------------------------------------------------------

    @property
    def dummies_dropped(self) -> int:
        return sum(channel.memory_side.dummies_dropped for channel in self.channels)

    def array_snapshot(self) -> dict[int, bytes]:
        """Everything stored across all memory modules (ciphertext only)."""
        merged: dict[int, bytes] = {}
        for channel in self.channels:
            merged.update(channel.memory_side.array_snapshot())
        return merged
