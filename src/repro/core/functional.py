"""Functional ObfusMem stack: real crypto end to end on one channel.

This is Figure 3 executed with real bytes: counter-mode at-rest encryption
on the processor, a second counter-mode encryption for the bus, piggybacked
dummy requests against the reserved fixed block, MAC tags, and a memory-side
logic layer that decrypts, authenticates, drops dummies and serves the
array.  It is synchronous (no event engine) — the timing twin is
:class:`repro.core.controller.ObfusMemController`.

The stack doubles as the active-attack harness: an ``interceptor`` hook sees
every wire message and may tamper with, drop, or replay it; the tests in
``tests/analysis`` use it to demonstrate every detection case of §3.5.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.config import AuthMode
from repro.core.packets import ChannelCodec, DecodedCommand
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, IntegrityError
from repro.mem.bus import BusTransfer, Direction, MemoryBus, TransferKind
from repro.mem.request import BLOCK_SIZE_BYTES, RequestType, block_aligned
from repro.secure.at_rest import AtRestEncryption

# An interceptor receives (kind, direction, wire_bytes) and returns the bytes
# actually delivered — possibly modified — or None to drop the message.
Interceptor = Callable[[str, str, bytes], bytes | None]


@dataclass
class WireMessage:
    """One message as transmitted (recorded for replay attacks)."""

    kind: str  # "command" | "data" | "response" | "tag"
    payload: bytes


class MemorySideLogic:
    """The logic layer inside the trusted memory module.

    Owns the memory-side codec (counter-synchronized with the processor),
    the PCM array contents (at-rest ciphertext — the memory never sees
    plaintext data), and the dummy-dropping logic of Observation 2.
    """

    def __init__(
        self,
        session_key: bytes,
        dummy_address: int,
        auth: AuthMode,
        rng: DeterministicRng,
    ):
        self.codec = ChannelCodec(session_key)
        self.dummy_address = dummy_address
        self.auth = auth
        self._rng = rng
        self._array: dict[int, bytes] = {}
        self.dummies_dropped = 0
        self.cell_writes = 0

    def array_snapshot(self) -> dict[int, bytes]:
        """What an attacker scanning the chips would find (ciphertext)."""
        return dict(self._array)

    def _verify(self, decoded: DecodedCommand, tag: bytes | None, wire: bytes) -> None:
        if self.auth is AuthMode.NONE:
            return
        if tag is None:
            raise IntegrityError("authenticated channel received no MAC tag")
        if self.auth is AuthMode.ENCRYPT_AND_MAC:
            self.codec.verify_tag(decoded, tag)
        else:
            self.codec.verify_ciphertext_tag(wire, tag)

    def handle_write(self, wire_command: bytes, wire_data: bytes, tag: bytes | None) -> None:
        """Decode a write; store data, or drop it if it targets the dummy."""
        decoded = self.codec.decode_command(wire_command)
        self._verify(decoded, tag, wire_command)
        if decoded.request_type is not RequestType.WRITE:
            raise IntegrityError("write path received a non-write command")
        data = self.codec.decode_request_data(wire_data)
        if decoded.address == self.dummy_address:
            # Observation 2: the dummy write is dropped on arrival — no
            # array write, no wear, no write energy.
            self.dummies_dropped += 1
            return
        self._array[block_aligned(decoded.address)] = data
        self.cell_writes += 1

    def handle_read(self, wire_command: bytes, tag: bytes | None) -> bytes:
        """Decode a read; return the encrypted response burst."""
        decoded = self.codec.decode_command(wire_command)
        self._verify(decoded, tag, wire_command)
        if decoded.request_type is not RequestType.READ:
            raise IntegrityError("read path received a non-read command")
        if decoded.address == self.dummy_address:
            # Dummy read: answer with raw garbage; no array access and no
            # response-stream pads are consumed (the processor discards it).
            self.dummies_dropped += 1
            return self._rng.token_bytes(BLOCK_SIZE_BYTES)
        stored = self._array.get(
            block_aligned(decoded.address), b"\x00" * BLOCK_SIZE_BYTES
        )
        return self.codec.encode_response_data(stored)


class FunctionalObfusMem:
    """Processor-side view of one fully functional obfuscated channel."""

    def __init__(
        self,
        session_key: bytes,
        memory_key: bytes,
        rng: DeterministicRng,
        dummy_address: int = 0xFFF_FFC0,
        auth: AuthMode = AuthMode.ENCRYPT_AND_MAC,
        bus: MemoryBus | None = None,
        channel: int = 0,
        interceptor: Interceptor | None = None,
    ):
        if dummy_address % BLOCK_SIZE_BYTES:
            raise ConfigurationError("dummy address must be block aligned")
        self.codec = ChannelCodec(session_key)
        self.at_rest = AtRestEncryption(memory_key)
        self.memory_side = MemorySideLogic(
            session_key, dummy_address, auth, rng.fork("memory-side")
        )
        self.dummy_address = dummy_address
        self.auth = auth
        self.bus = bus
        self.channel = channel
        self.interceptor = interceptor
        self._time = 0  # logical wire time for bus records
        self.transcript: list[WireMessage] = []

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _transmit(
        self,
        kind: str,
        payload: bytes,
        direction: Direction,
        transfer_kind: TransferKind,
        is_dummy: bool,
        plaintext_address: int | None,
        plaintext_is_write: bool | None,
    ) -> bytes:
        """Put bytes on the wire, applying interception and observation."""
        self._time += 1
        delivered: bytes | None = payload
        if self.interceptor is not None:
            delivered = self.interceptor(kind, direction.value, payload)
        self.transcript.append(WireMessage(kind, payload))
        if self.bus is not None:
            self.bus.emit(
                BusTransfer(
                    time_ps=self._time,
                    channel=self.channel,
                    kind=transfer_kind,
                    direction=direction,
                    wire_bytes=payload,
                    plaintext_address=plaintext_address,
                    plaintext_is_write=plaintext_is_write,
                    is_dummy=is_dummy,
                )
            )
        if delivered is None:
            raise IntegrityError(
                "wire message was dropped: channel counters are now "
                "desynchronized and the session is unrecoverable"
            )
        return delivered

    # ------------------------------------------------------------------
    # The four wire operations of Figure 3
    # ------------------------------------------------------------------

    def _send_command(
        self, request_type: RequestType, address: int, is_dummy: bool
    ) -> tuple[bytes, bytes | None]:
        tag = (
            self.codec.make_tag(request_type, address, self.codec.request_counter)
            if self.auth is AuthMode.ENCRYPT_AND_MAC
            else None
        )
        wire, _counter = self.codec.encode_command(request_type, address)
        if self.auth is AuthMode.ENCRYPT_THEN_MAC:
            tag = self.codec.make_ciphertext_tag(wire)
        wire = self._transmit(
            "command",
            wire,
            Direction.TO_MEMORY,
            TransferKind.COMMAND,
            is_dummy,
            address,
            request_type is RequestType.WRITE,
        )
        return wire, tag

    def _send_data(self, block: bytes, is_dummy: bool, address: int) -> bytes:
        wire = self.codec.encode_request_data(block)
        return self._transmit(
            "data", wire, Direction.TO_MEMORY, TransferKind.DATA, is_dummy, address, True
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def inject_dummy_pair(self) -> None:
        """One full dummy read-then-write pair (inter-channel filler, §3.4).

        Both halves target the reserved block: the read is answered with
        raw garbage (no response pads), the write is dropped on arrival.
        On the wire the pair is indistinguishable from a real access.
        """
        wire, tag = self._send_command(RequestType.READ, self.dummy_address, True)
        garbage = self.memory_side.handle_read(wire, tag)
        self._transmit(
            "response",
            garbage,
            Direction.TO_PROCESSOR,
            TransferKind.DATA,
            True,
            self.dummy_address,
            False,
        )
        wire, tag = self._send_command(RequestType.WRITE, self.dummy_address, True)
        wire_data = self._send_data(b"\x00" * BLOCK_SIZE_BYTES, True, self.dummy_address)
        self.memory_side.handle_write(wire, wire_data, tag)

    def _check_not_dummy(self, address: int) -> None:
        if address == self.dummy_address:
            raise ConfigurationError(
                "the reserved dummy block is not addressable by software"
            )

    def write(self, address: int, plaintext: bytes) -> None:
        """One protected write: dummy read first, then the real write."""
        address = block_aligned(address)
        self._check_not_dummy(address)
        # Dummy read escort (§3.3: every write is preceded by a dummy read).
        wire, tag = self._send_command(RequestType.READ, self.dummy_address, True)
        garbage = self.memory_side.handle_read(wire, tag)
        self._transmit(
            "response",
            garbage,
            Direction.TO_PROCESSOR,
            TransferKind.DATA,
            True,
            self.dummy_address,
            False,
        )
        # Real write: at-rest encryption, then the second (bus) encryption.
        at_rest_ciphertext = self.at_rest.encrypt_for_write(address, plaintext)
        wire, tag = self._send_command(RequestType.WRITE, address, False)
        wire_data = self._send_data(at_rest_ciphertext, False, address)
        self.memory_side.handle_write(wire, wire_data, tag)

    def read(self, address: int) -> bytes:
        """One protected read: the real read, then a dummy write escort."""
        address = block_aligned(address)
        self._check_not_dummy(address)
        wire, tag = self._send_command(RequestType.READ, address, False)
        wire_response = self.memory_side.handle_read(wire, tag)
        wire_response = self._transmit(
            "response",
            wire_response,
            Direction.TO_PROCESSOR,
            TransferKind.DATA,
            False,
            address,
            False,
        )
        at_rest_ciphertext = self.codec.decode_response_data(wire_response)
        # Dummy write escort with throwaway data.
        wire, tag = self._send_command(RequestType.WRITE, self.dummy_address, True)
        wire_data = self._send_data(b"\x00" * BLOCK_SIZE_BYTES, True, self.dummy_address)
        self.memory_side.handle_write(wire, wire_data, tag)
        return self.at_rest.decrypt_after_read(address, at_rest_ciphertext)
