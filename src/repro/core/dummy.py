"""Dummy request generation: the three address designs of §3.3.

* **FIXED** (the paper's choice): every memory module reserves one 64-byte
  block; all dummies target it.  Counter-mode encryption makes the repeated
  address look different on every transmission, and the memory side *drops*
  the request on arrival — no array access, no wear, no write energy
  (Observation 2).
* **ORIGINAL**: the dummy reuses the real request's address.  Keeps row
  locality, but every read now also performs a real array write — the
  NVM-lifetime cost the ablation benchmark quantifies.
* **RANDOM**: the dummy targets a uniformly random block — loses locality
  *and* performs real writes; the worst of both worlds, kept as the naive
  baseline.
"""

from __future__ import annotations

from repro.crypto.rng import DeterministicRng
from repro.core.config import DummyAddressPolicy
from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.request import BLOCK_SIZE_BYTES, MemoryRequest, RequestType


class DummyRequestFactory:
    """Creates dummy requests according to the configured address policy."""

    def __init__(
        self,
        policy: DummyAddressPolicy,
        mapping: AddressMapping,
        rng: DeterministicRng,
    ):
        self.policy = policy
        self.mapping = mapping
        self._rng = rng

    def _random_address_on_channel(self, channel: int) -> int:
        """A random block address that decodes to the given channel."""
        for _ in range(64):
            block = self._rng.randrange(self.mapping.num_blocks)
            address = block * BLOCK_SIZE_BYTES
            if self.mapping.channel_of(address) == channel:
                return address
        raise ConfigurationError(
            f"could not draw a random address on channel {channel}"
        )

    def make(
        self,
        channel: int,
        request_type: RequestType,
        real_address: int | None = None,
    ) -> MemoryRequest:
        """Build one dummy request bound for ``channel``.

        ``real_address`` is the address of the access being escorted; it is
        required by the ORIGINAL policy and ignored otherwise.
        """
        if self.policy is DummyAddressPolicy.FIXED:
            address = self.mapping.dummy_block_address(channel)
            droppable = True
        elif self.policy is DummyAddressPolicy.ORIGINAL:
            if real_address is None:
                # Inter-channel dummies have no original address to mirror;
                # fall back to the reserved block, still non-droppable so
                # the policy's cost is fully visible.
                address = self.mapping.dummy_block_address(channel)
            else:
                address = real_address
            droppable = False
        elif self.policy is DummyAddressPolicy.RANDOM:
            address = self._random_address_on_channel(channel)
            droppable = False
        else:  # pragma: no cover - enum is closed
            raise ConfigurationError(f"unknown dummy policy {self.policy}")
        return MemoryRequest(
            address=address,
            request_type=request_type,
            is_dummy=True,
            droppable=droppable,
        )
