"""Machine configuration (paper Table 2) and protection levels."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.config import AuthMode, ChannelInjection, DummyAddressPolicy, ObfusMemConfig
from repro.errors import ConfigurationError
from repro.mem.dram_timing import EngineTiming, PcmEnergy, PcmTiming
from repro.oram.backend import DEFAULT_ACCESS_LATENCY_NS


class ProtectionLevel(enum.Enum):
    """The systems compared in the evaluation (Figure 4 / Table 3 / §7).

    Each member's value is the registry name of a built-in
    :class:`~repro.schemes.registry.ProtectionScheme`; the enum survives as
    the stable, typo-proof handle for the paper's named systems, while
    registry-only schemes (hybrids, ablations) are addressed by name.
    """

    UNPROTECTED = "unprotected"
    ENCRYPTION_ONLY = "encryption_only"  # counter-mode memory encryption
    OBFUSMEM = "obfusmem"  # + access pattern obfuscation
    OBFUSMEM_AUTH = "obfusmem_auth"  # + authenticated communication
    ORAM = "oram"  # Path ORAM baseline (fixed-latency model)
    HIDE = "hide"  # chunk-permutation baseline (§7, no encryption)


@dataclass(frozen=True)
class MachineConfig:
    """Everything Table 2 specifies, with the paper's defaults."""

    cpu_clock_ghz: float = 2.0
    capacity_bytes: int = 8 << 30
    channels: int = 1
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    row_buffer_bytes: int = 1024
    timing: PcmTiming = field(default_factory=PcmTiming)
    energy: PcmEnergy = field(default_factory=PcmEnergy)
    engines: EngineTiming = field(default_factory=EngineTiming)
    counter_cache_bytes: int = 256 << 10
    oram_access_latency_ns: float = DEFAULT_ACCESS_LATENCY_NS
    # Smart-DIMM wear leveling (§2.2); off by default to match the paper's
    # evaluation configuration.
    wear_leveling: bool = False
    # ObfusMem knobs (overridable for the Figure 5 sweep / ablations).
    channel_injection: ChannelInjection = ChannelInjection.OPT
    dummy_policy: DummyAddressPolicy = DummyAddressPolicy.FIXED
    substitute_dummies: bool = True

    def __post_init__(self) -> None:
        if self.channels not in (1, 2, 4, 8, 16):
            raise ConfigurationError(f"unsupported channel count {self.channels}")
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")

    def obfusmem_config(self, auth: AuthMode) -> ObfusMemConfig:
        """ObfusMem controller knobs derived from this machine config."""
        return ObfusMemConfig(
            dummy_policy=self.dummy_policy,
            channel_injection=self.channel_injection,
            auth=auth,
            substitute_dummies=self.substitute_dummies,
            engines=self.engines,
        )
