"""System composition: machine config, builder and end-to-end simulator."""

from repro.system.builder import BuiltSystem, build_system
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import (
    DEFAULT_NUM_REQUESTS,
    RunResult,
    compare_levels,
    run_benchmark,
    run_mix,
    run_trace,
    run_traces,
)
from repro.system.world import CHECKPOINT_VERSION, SimCheckpoint, SimWorld

__all__ = [
    "BuiltSystem",
    "build_system",
    "MachineConfig",
    "ProtectionLevel",
    "DEFAULT_NUM_REQUESTS",
    "RunResult",
    "compare_levels",
    "run_benchmark",
    "run_mix",
    "run_trace",
    "run_traces",
    "CHECKPOINT_VERSION",
    "SimCheckpoint",
    "SimWorld",
]
