"""Checkpointable simulation worlds.

A :class:`SimWorld` is the state of one (traces, scheme, machine) simulation
— engine, statistics, and the full component stack — packaged so the run
can *pause between events* and continue later, possibly in a different
process.  :func:`repro.system.simulator.run_traces` is a thin wrapper that
builds a world and runs it to completion; everything checkpoint-aware (the
warm-start sweep executor, the preemptible serving pool) drives a world
directly:

* :meth:`SimWorld.run` accepts ``stop_after_events`` and returns whether the
  simulation finished, so callers can execute in bounded slices;
* :meth:`SimWorld.snapshot` freezes the paused world into a
  :class:`SimCheckpoint` — one versioned, content-addressed blob;
* :meth:`SimCheckpoint.thaw` reinstates the world bit-identically: resuming
  a thawed world produces exactly the statistics an uninterrupted run
  produces (the golden-determinism grid enforces this for every scheme).

The blob is a :mod:`pickle` of the whole object graph.  That works because
the simulation layer is written to be picklable end to end: every pending
event callback is a ``functools.partial`` over bound methods (never a
closure), the engine's fired-sentinel is a pickle-stable singleton, and
profiler hooks are dropped on capture and reattached from the class default
on thaw.  Sharing matters as much as content: heap entries referenced by
both the event queue and a component (cancellable wakeups), and counter
dicts bound by hot paths, are shared *references* — pickling the graph in
one pass preserves that aliasing where per-component serialization could
not.

Fork-from-snapshot
------------------

Sweeps that vary only ``num_requests`` share a trace prefix (the generator
streams one rng, so a shorter trace is a bit-identical prefix of a longer
one).  A checkpoint taken while every core still has trace left to issue
(:attr:`SimCheckpoint.safe_prefix`) is therefore a valid *starting point*
for any longer run of the same spec: thaw it, :meth:`SimWorld.retarget`
the cores onto the longer traces (verified record-by-record to really be
an extension), and run on.  The executor's warm-start sweep is built on
exactly this.
"""

from __future__ import annotations

import hashlib
import pickle
from base64 import b64decode, b64encode
from dataclasses import dataclass

from repro.cpu.core import TraceDrivenCore
from repro.cpu.trace import Trace
from repro.crypto.rng import DeterministicRng
from repro.errors import CheckpointError, SimulationError
from repro.mem.bus import MemoryBus
from repro.mem.request import ensure_request_ids_above, request_id_watermark
from repro.schemes import level_for, resolve_scheme
from repro.sim import profiling
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry
from repro.system.builder import build_system
from repro.system.config import MachineConfig

#: Bump when the pickled world layout changes incompatibly; thaw refuses
#: blobs from another version rather than resuming garbage.
CHECKPOINT_VERSION = 1

_MAX_EVENTS_PER_REQUEST = 2000  # generous livelock guard (per drain phase)


class SimWorld:
    """One simulation's full state, runnable in bounded event slices."""

    def __init__(
        self,
        traces: list[Trace],
        level,
        machine: MachineConfig | None = None,
        window: int | list[int] = 4,
        seed: int = 2017,
        bus: MemoryBus | None = None,
    ):
        if not traces:
            raise SimulationError("need at least one trace")
        windows = window if isinstance(window, list) else [window] * len(traces)
        if len(windows) != len(traces):
            raise SimulationError(f"{len(windows)} windows for {len(traces)} traces")
        self.machine = machine or MachineConfig()
        self.scheme = resolve_scheme(level)
        #: The caller's original designator, echoed into the result so a
        #: registry name round-trips as the caller spelled it.
        self.level = level
        self.seed = seed
        self.engine = Engine()
        self.stats = StatRegistry()
        rng = DeterministicRng(seed).fork(f"run-{traces[0].name}-{self.scheme.name}")
        self.system = build_system(
            self.scheme, self.machine, self.engine, self.stats, rng, bus=bus
        )
        self.cores = [
            TraceDrivenCore(
                self.engine,
                trace,
                self.system.port,
                window=core_window,
                stats=self.stats,
                core_id=i,
            )
            for i, (trace, core_window) in enumerate(zip(traces, windows))
        ]
        self.traces = traces
        self._started = False
        self._flushed = False
        self._finished = False
        #: Events executed in the current drain phase, counted *across*
        #: slices so the livelock guard keeps its uninterrupted meaning.
        self._phase_events = 0

    # -- bookkeeping --------------------------------------------------------

    @property
    def total_requests(self) -> int:
        return sum(len(trace) for trace in self.traces)

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def events_executed(self) -> int:
        """Cumulative events executed — the checkpoint progress key."""
        return self.engine.events_executed

    @property
    def _event_guard(self) -> int:
        return _MAX_EVENTS_PER_REQUEST * self.total_requests

    # -- execution ----------------------------------------------------------

    def run(self, stop_after_events: int | None = None) -> bool:
        """Advance the simulation; returns True when it has finished.

        Without a budget this runs to completion exactly as the original
        single-shot runner did.  With ``stop_after_events`` the engine stops
        cleanly (between events) once that many fire in this call, leaving
        the world in a snapshottable pause; call :meth:`run` again to
        continue.  Slicing never changes event order, so results are
        bit-identical to an uninterrupted run.
        """
        if self._finished:
            return True
        remaining = stop_after_events
        if remaining is not None and remaining <= 0:
            return False
        with profiling.phase("engine"):
            if not self._started:
                self._started = True
                for core in self.cores:
                    core.start()
            while True:
                before = self.engine.events_executed
                self.engine.run(
                    max_events=self._event_guard - self._phase_events,
                    stop_after_events=remaining,
                )
                executed = self.engine.events_executed - before
                self._phase_events += executed
                if remaining is not None:
                    remaining -= executed
                if self.engine.pending_events():
                    # Clean stop on the slice budget; events remain.
                    return False
                if self._flushed:
                    break  # drained after the flush: done
                self._require_cores_done()
                self._flushed = True
                self.system.flush()
                self._phase_events = 0
                if remaining is not None and remaining <= 0:
                    if self.engine.pending_events():
                        return False
                    break
        self._finished = True
        return True

    def _require_cores_done(self) -> None:
        for core in self.cores:
            if not core.done:
                raise SimulationError(
                    f"{core.trace.name}/{self.scheme.name}: core {core.core_id} "
                    f"did not finish ({core._index}/{len(core.trace)} issued)"
                )

    def result(self):
        """The run's measurements; only meaningful once finished."""
        from repro.system.simulator import RunResult

        if not self._finished:
            raise SimulationError("simulation has not finished")
        return RunResult(
            benchmark=self.traces[0].name,
            level=level_for(self.scheme.name) or self.scheme.name,
            channels=self.machine.channels,
            execution_time_ns=max(core.execution_time_ns for core in self.cores),
            num_requests=self.total_requests,
            instructions=sum(trace.total_instructions for trace in self.traces),
            stats=self.stats.as_dict(),
        )

    # -- checkpointing ------------------------------------------------------

    @property
    def safe_prefix(self) -> bool:
        """True while this state is a valid prefix of any *longer* run.

        Holds while no core has observed its end-of-trace (each still has
        records left to issue) and the flush has not begun: up to here the
        world's evolution is identical under any trace extension, so a
        snapshot may seed runs with larger ``num_requests``.
        """
        return not self._flushed and all(
            core._index < len(core._records) for core in self.cores
        )

    @property
    def trace_progress(self) -> float:
        """Fraction of the slowest core's trace already issued, in [0, 1].

        The scheduler's save-policy signal: kernel-event counts vary by an
        order of magnitude across schemes for the same request count, but
        trace position is scheme-independent, so "snapshot near the end of
        the shared prefix" can be expressed as a progress fraction.
        """
        if not self.cores:
            return 1.0
        return min(
            core._index / len(core._records) if core._records else 1.0
            for core in self.cores
        )

    def snapshot(self) -> "SimCheckpoint":
        """Freeze the paused world into a content-addressed checkpoint."""
        with profiling.phase("checkpoint_save"):
            try:
                payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise CheckpointError(f"world is not picklable: {exc}") from exc
            return SimCheckpoint(
                version=CHECKPOINT_VERSION,
                payload=payload,
                digest=hashlib.sha256(payload).hexdigest(),
                events_executed=self.engine.events_executed,
                now_ps=self.engine.now_ps,
                issued_indices=tuple(core._index for core in self.cores),
                num_requests=self.total_requests,
                safe_prefix=self.safe_prefix,
                finished=self._finished,
                request_id_watermark=request_id_watermark(),
                benchmark=self.traces[0].name,
                scheme=self.scheme.name,
            )

    def retarget(self, traces: list[Trace]) -> None:
        """Swap in longer traces after a safe-prefix thaw.

        Each new trace must literally extend the corresponding current one
        (record-by-record equality over the current length) — anything else
        means the checkpoint belongs to a different workload and resuming
        would silently compute nonsense, so this verifies rather than
        trusts.
        """
        if len(traces) != len(self.cores):
            raise CheckpointError(
                f"{len(traces)} traces for {len(self.cores)} cores"
            )
        if not self.safe_prefix:
            raise CheckpointError(
                "checkpoint is not a safe prefix: a core already saw its "
                "end of trace, so it cannot be extended"
            )
        for core, trace in zip(self.cores, traces):
            old = core.trace.records
            if len(trace.records) < len(old) or trace.records[: len(old)] != old:
                raise CheckpointError(
                    f"trace {trace.name!r} does not extend {core.trace.name!r}"
                )
            core.trace = trace
            core._records = trace.records
            core._gaps_ps = [ns_to_ps(record.gap_ns) for record in trace.records]
        self.traces = traces


@dataclass(frozen=True)
class SimCheckpoint:
    """A versioned, content-addressed frozen :class:`SimWorld`.

    ``payload`` is the pickled world; ``digest`` is its SHA-256, verified on
    thaw so storage damage surfaces as :class:`CheckpointError` rather than
    a corrupt resume.  The metadata fields exist so stores and schedulers
    can index and select checkpoints *without* unpickling anything.
    """

    version: int
    payload: bytes
    digest: str
    events_executed: int
    now_ps: int
    issued_indices: tuple[int, ...]
    num_requests: int
    safe_prefix: bool
    finished: bool
    request_id_watermark: int
    benchmark: str
    scheme: str

    def thaw(self) -> SimWorld:
        """Reinstate the frozen world (verifying version and content)."""
        with profiling.phase("checkpoint_restore"):
            if self.version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint version {self.version} != {CHECKPOINT_VERSION}"
                )
            if hashlib.sha256(self.payload).hexdigest() != self.digest:
                raise CheckpointError("checkpoint payload digest mismatch")
            try:
                world = pickle.loads(self.payload)
            except Exception as exc:
                raise CheckpointError(f"checkpoint did not unpickle: {exc}") from exc
            if not isinstance(world, SimWorld):
                raise CheckpointError(
                    f"checkpoint holds {type(world).__name__}, not SimWorld"
                )
            # Ids minted after the resume must clear every id frozen inside
            # the payload, even in a process whose counter is far behind.
            ensure_request_ids_above(self.request_id_watermark)
            return world

    # -- wire form ----------------------------------------------------------

    def to_jsonable(self) -> dict:
        """JSON-safe form (payload base64) for the persistent store."""
        return {
            "version": self.version,
            "payload_b64": b64encode(self.payload).decode("ascii"),
            "digest": self.digest,
            "events_executed": self.events_executed,
            "now_ps": self.now_ps,
            "issued_indices": list(self.issued_indices),
            "num_requests": self.num_requests,
            "safe_prefix": self.safe_prefix,
            "finished": self.finished,
            "request_id_watermark": self.request_id_watermark,
            "benchmark": self.benchmark,
            "scheme": self.scheme,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "SimCheckpoint":
        """Inverse of :meth:`to_jsonable`; raises on malformed input."""
        try:
            return cls(
                version=int(data["version"]),
                payload=b64decode(data["payload_b64"]),
                digest=str(data["digest"]),
                events_executed=int(data["events_executed"]),
                now_ps=int(data["now_ps"]),
                issued_indices=tuple(int(i) for i in data["issued_indices"]),
                num_requests=int(data["num_requests"]),
                safe_prefix=bool(data["safe_prefix"]),
                finished=bool(data["finished"]),
                request_id_watermark=int(data["request_id_watermark"]),
                benchmark=str(data["benchmark"]),
                scheme=str(data["scheme"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint record: {exc}") from exc
