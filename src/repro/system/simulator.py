"""End-to-end simulation runner: trace + protection level -> measurements.

This is the primary entry point of the library: build a system at a
protection level, replay a benchmark trace through it, and report the
execution-time and traffic statistics the paper's tables and figures are
made of.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import BenchmarkProfile
from repro.cpu.trace import Trace
from repro.errors import SimulationError
from repro.mem.bus import MemoryBus
from repro.schemes import ProtectionScheme
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.world import SimWorld

DEFAULT_NUM_REQUESTS = 6000

#: A simulation target anywhere in this module: an enum member, a registry
#: scheme name, or a resolved scheme object.
SchemeLike = ProtectionLevel | ProtectionScheme | str


@dataclass
class RunResult:
    """Measurements from one (trace, system) simulation."""

    benchmark: str
    #: The enum member for built-in schemes; registry-only schemes (hybrids)
    #: carry their registry name string instead.
    level: ProtectionLevel | str
    channels: int
    execution_time_ns: float
    num_requests: int
    instructions: float
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def average_gap_ns(self) -> float:
        return self.execution_time_ns / self.num_requests

    def ipc(self, clock_ghz: float = 2.0) -> float:
        """Instructions per cycle implied by the run's execution time."""
        cycles = self.execution_time_ns * clock_ghz
        return self.instructions / cycles if cycles else 0.0

    def overhead_pct(self, baseline: "RunResult") -> float:
        """Execution-time overhead relative to a baseline run (percent)."""
        if baseline.execution_time_ns <= 0:
            raise SimulationError("baseline has non-positive execution time")
        return 100.0 * (self.execution_time_ns / baseline.execution_time_ns - 1.0)


def run_traces(
    traces: list[Trace],
    level: SchemeLike,
    machine: MachineConfig | None = None,
    window: int | list[int] = 4,
    seed: int = 2017,
    bus: MemoryBus | None = None,
) -> RunResult:
    """Simulate one trace per core on one shared system.

    ``level`` accepts a :class:`ProtectionLevel`, a registry scheme name,
    or a resolved scheme.  Execution time is the slowest core's finish time
    (the paper's 4-core CMP runs one benchmark instance per core).
    ``window`` may be a list giving each core its own outstanding-miss
    budget (heterogeneous mixes).
    """
    world = SimWorld(traces, level, machine=machine, window=window, seed=seed, bus=bus)
    world.run()
    return world.result()


def run_trace(
    trace: Trace,
    level: SchemeLike,
    machine: MachineConfig | None = None,
    window: int = 4,
    seed: int = 2017,
    bus: MemoryBus | None = None,
) -> RunResult:
    """Simulate one trace on one system; returns the measurements."""
    return run_traces([trace], level, machine=machine, window=window, seed=seed, bus=bus)


def run_benchmark(
    profile: BenchmarkProfile,
    level: SchemeLike,
    machine: MachineConfig | None = None,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    seed: int = 2017,
    bus: MemoryBus | None = None,
    cores: int = 1,
) -> RunResult:
    """Generate the benchmark's trace(s) and simulate at one level.

    With ``cores > 1``, one independently seeded instance of the benchmark
    runs per core (rate-style homogeneous multiprogramming, as in the
    paper's 4-core configuration); ``num_requests`` is per core.
    """
    traces = [make_trace(profile, num_requests, seed=seed + 1000 * i) for i in range(cores)]
    return run_traces(
        traces,
        level,
        machine=machine,
        window=profile.window,
        seed=seed,
        bus=bus,
    )


def run_mix(
    profiles: list[BenchmarkProfile],
    level: SchemeLike,
    machine: MachineConfig | None = None,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    seed: int = 2017,
    bus: MemoryBus | None = None,
) -> RunResult:
    """Multiprogrammed mix: one *different* benchmark per core.

    Each core gets its own calibrated window and an independently seeded
    trace; they share the memory system (and, under ObfusMem, the
    obfuscated channels), so the mix exercises inter-workload interference.
    """
    traces = [
        make_trace(profile, num_requests, seed=seed + 1000 * i)
        for i, profile in enumerate(profiles)
    ]
    return run_traces(
        traces,
        level,
        machine=machine,
        window=[profile.window for profile in profiles],
        seed=seed,
        bus=bus,
    )


def compare_levels(
    profile: BenchmarkProfile,
    levels: list[SchemeLike],
    machine: MachineConfig | None = None,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    seed: int = 2017,
) -> dict[SchemeLike, RunResult]:
    """Run the *same* trace at several protection levels/schemes."""
    trace = make_trace(profile, num_requests, seed=seed)
    return {
        level: run_trace(trace, level, machine=machine, window=profile.window, seed=seed)
        for level in levels
    }
