"""The §3.2 dictionary (frequency-analysis) attack, registry edition.

This is the paper's argument for counter mode: a *deterministic* address
encryption (the ECB strawman, HIDE's table permutation, or no encryption
at all) preserves access frequencies, so ranking wire encodings by count
and pairing them with the hottest plaintext addresses recovers the hot
set.  The primitives (:class:`EcbAddressObfuscation`,
:func:`dictionary_attack`) moved here from ``repro.analysis.attacks``,
which keeps thin re-export shims; :class:`DictionaryAttacker` wraps them
as a registry attacker scored per capture in the leakage matrix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.attacks.base import (
    AttackInput,
    AttackOutcome,
    Attacker,
    WorkloadCapture,
    register_attacker,
    wire_address,
)
from repro.crypto.aes import AES128
from repro.mem.bus import BusTransfer, TransferKind

if TYPE_CHECKING:
    from repro.analysis.leakage import ExpectedLeakage


class EcbAddressObfuscation:
    """The ECB strawman of §3.2: ``Y = E_Key(X)`` per address.

    Deterministic, so spatial locality across blocks is hidden but temporal
    reuse, footprint and access frequencies all leak.  Exists solely so the
    dictionary attack below has a demonstrable victim.
    """

    def __init__(self, key: bytes):
        self._cipher = AES128(key)

    def encrypt_address(self, address: int) -> bytes:
        """Deterministically encrypt one address (the ECB weakness)."""
        return self._cipher.encrypt_block(address.to_bytes(16, "big"))


@dataclass(frozen=True)
class DictionaryAttackResult:
    """Outcome of frequency matching between plaintext and wire streams."""

    correct_matches: int
    candidates: int

    @property
    def accuracy(self) -> float:
        """Fraction of rank-paired encodings that matched a true mapping."""
        return self.correct_matches / self.candidates if self.candidates else 0.0


def dictionary_attack(
    plaintext_addresses: list[int], wire_encodings: list[bytes], top_k: int = 8
) -> DictionaryAttackResult:
    """Match the ``top_k`` most frequent wire encodings to the most frequent
    plaintext addresses by rank (the classic frequency-analysis attack).

    Deterministic encryption (ECB) preserves frequency ranks, so the attack
    recovers the hot addresses; counter-mode wire encodings are all unique
    and the attack degenerates to guessing.
    """
    plain_ranks = [address for address, _ in Counter(plaintext_addresses).most_common(top_k)]
    wire_ranks = [encoding for encoding, _ in Counter(wire_encodings).most_common(top_k)]
    pairs = list(zip(plain_ranks, wire_ranks))
    if not pairs:
        return DictionaryAttackResult(0, 0)
    # Score against the true mapping: an encoding matches if it is the
    # encryption the rank-paired address actually produced somewhere.
    truth: dict[bytes, set[int]] = {}
    for address, encoding in zip(plaintext_addresses, wire_encodings):
        truth.setdefault(encoding, set()).add(address)
    correct = sum(1 for address, encoding in pairs if address in truth.get(encoding, set()))
    return DictionaryAttackResult(correct, len(pairs))


def command_wire_encodings(transfers: list[BusTransfer]) -> list[bytes]:
    """Extract command wire bytes from a transfer list."""
    return [t.wire_bytes for t in transfers if t.kind is TransferKind.COMMAND]


class DictionaryAttacker(Attacker):
    """Measure whether a wire permits §3.2's dictionary building.

    The frequency rank-matching of :func:`dictionary_attack` only works
    because a deterministic encoding repeats whenever its address repeats —
    temporal linkability is the attack's enabling condition, and it is what
    this attacker scores on live captures: of the true address-repeat pairs
    in the real command stream, what fraction also repeat their wire
    encoding?  Plaintext, the ECB strawman and HIDE's table permutation
    link every pair (the attacker can grow a dictionary without bound);
    counter-mode encodings are one-time, so no pair ever links and the
    advantage is exactly zero.  Chance linkage over a 64-bit encoding space
    is negligible, hence the 0.0 baseline.
    """

    name: ClassVar[str] = "dictionary"
    summary: ClassVar[str] = "temporal linkability of repeated wire encodings"
    leak_threshold: ClassVar[float] = 0.3

    def _capture_links(self, capture: WorkloadCapture) -> tuple[int, int]:
        """(matched, linkable) encoding pairs over one capture's repeats."""
        encodings_by_address: dict[int, list[bytes]] = {}
        for t in capture.real_commands():
            assert t.plaintext_address is not None  # real_commands guarantees
            encodings_by_address.setdefault(t.plaintext_address, []).append(
                t.wire_bytes
            )
        matched = linkable = 0
        for encodings in encodings_by_address.values():
            for first, second in zip(encodings, encodings[1:]):
                linkable += 1
                # The attacker links on whichever signal survives: the full
                # encoding (ECB-style) or the known-layout address field (a
                # plaintext read/write pair differs only in the type byte).
                matched += first == second or wire_address(first) == wire_address(
                    second
                )
        return matched, linkable

    def attack(self, observed: AttackInput) -> AttackOutcome:
        """Score encoding linkability over every capture's repeat pairs."""
        matched = linkable = 0
        for workload in observed.workloads():
            for capture in observed.captures[workload]:
                m, n = self._capture_links(capture)
                matched, linkable = matched + m, linkable + n
        accuracy = matched / linkable if linkable else 0.0
        return AttackOutcome(
            self.name,
            observed.scheme,
            accuracy,
            0.0,
            accuracy,
            {"linkable_pairs": linkable, "matched": matched},
        )

    def expects_leak(self, expected: "ExpectedLeakage") -> bool:
        """Leaks when encodings repeat: a wire without temporal hiding."""
        return expected.wire_observable and not expected.temporal_hidden


register_attacker(DictionaryAttacker())
