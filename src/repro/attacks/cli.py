"""CLI helpers for the attacker registry: the shared ``--list-attacks`` flag.

The counterpart of :mod:`repro.schemes.cli`: every entry point that takes
runner arguments also exposes ``--list-attacks`` through
:func:`add_attack_arguments`; the flag prints the attacker registry (name,
kind, leak threshold, description) and exits, exactly like ``--help``.
"""

from __future__ import annotations

import argparse

from repro.attacks.base import available_attackers


def format_attack_list() -> str:
    """The registry as an aligned ``name  kind  threshold  description`` listing."""
    attackers = available_attackers()
    name_width = max(len(attacker.name) for attacker in attackers)
    kind_width = max(len(attacker.kind) for attacker in attackers)
    lines = ["registered attackers (leak verdict at advantage >= threshold):"]
    for attacker in attackers:
        lines.append(
            f"  {attacker.name:<{name_width}}  {attacker.kind:<{kind_width}}  "
            f"{attacker.leak_threshold:>4.2f}  {attacker.summary}"
        )
    return "\n".join(lines)


class ListAttacksAction(argparse.Action):
    """``--list-attacks``: print the registry and exit (like ``--help``)."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "list registered attackers and exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        """Print the attacker listing and terminate argument parsing."""
        print(format_attack_list())
        parser.exit()


def add_attack_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--list-attacks`` flag to a CLI parser."""
    parser.add_argument("--list-attacks", action=ListAttacksAction)
