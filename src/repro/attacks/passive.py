"""Passive bus-snooping attackers (the membus-attack playbook).

Five adversaries, each isolating one leakage channel the paper's Table 4
metrics measure indirectly:

* :class:`FingerprintAttacker` — workload classification from address-trace
  shape (which kernel is running?);
* :class:`TypeRecoveryAttacker` — read/write recovery from the command type
  byte (§3.3's motivation for dummy pairing);
* :class:`FootprintAttacker` — working-set size recovery from distinct wire
  addresses;
* :class:`ChannelCorrelationAttacker` — which channel served a request,
  from inter-channel activity timing (§3.4's motivation for cover traffic);
* :class:`RebuildTimingAttacker` — the §6.2 timing channel generalized to
  periodic maintenance bursts (`TRAIT_REBUILD_BURSTS` backends).

Every attacker reads only :meth:`~repro.mem.bus.BusTransfer.attacker_view`
fields to form its guesses; ground-truth annotations are used strictly for
*scoring* those guesses.  All tie-breaks and coin flips go through
:func:`~repro.attacks.base.hash_coin`, so outcomes are bit-identical
across runs and processes.
"""

from __future__ import annotations

import math
import statistics
from collections import Counter
from typing import TYPE_CHECKING, ClassVar

from repro.attacks.base import (
    AttackInput,
    AttackOutcome,
    Attacker,
    WorkloadCapture,
    hash_coin,
    normalized_advantage,
    register_attacker,
    wire_address,
    wire_is_write,
)

if TYPE_CHECKING:
    from repro.analysis.leakage import ExpectedLeakage

#: 64-byte blocks: the granularity of every wire address in this repo.
_BLOCK_SHIFT = 6
#: Chunk granularity used for locality features (matches analysis.leakage).
_CHUNK_SHIFT = 16
#: "Near" for the spatial feature: within 64 blocks (one 4 KiB page).
_NEAR_BLOCKS = 64
#: Normalizer for the mean log2 stride feature (~full 64-bit span under
#: ciphertext clips to 1.0; real workloads land well below).
_LOG_STRIDE_SCALE = 40.0
#: Scale factor mapping typical working-set densities into [0, 1].
_DENSITY_SCALE = 200.0
#: Region granularity (256 MiB) for isolating the demand stream from
#: interleaved metadata traffic (counter fetches live in their own region).
_REGION_SHIFT = 28
#: Minimum commands the dominant region must hold for its features to mean
#: anything.  Ciphertext wires scatter uniformly over 2^36 regions, so the
#: busiest one holds a couple of commands at most and every capture
#: degenerates to the same default vector — classification collapses to
#: exactly the random-guess baseline.
_MIN_REGION_COMMANDS = 10


def _mean(values: list[float], default: float = 0.0) -> float:
    """Average with a defined value for empty input."""
    return sum(values) / len(values) if values else default


def _cv(values: list[float]) -> float:
    """Coefficient of variation (population); 0 for degenerate input."""
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    if mean == 0:
        return 0.0
    return statistics.pstdev(values) / mean


class FingerprintAttacker(Attacker):
    """Classify which workload produced a capture from its address shape.

    The attacker profiles every workload once (first capture per workload),
    then classifies the remaining captures by nearest feature vector.  The
    features — spatial locality, chunk locality, temporal reuse, decoded
    write share — are exactly what survives on a plaintext or
    deterministically-obfuscated wire and what a ciphertext wire destroys.
    Advantage is classification accuracy normalized against the 1/K
    random-guess baseline.
    """

    name: ClassVar[str] = "fingerprint"
    summary: ClassVar[str] = "workload classification from address-trace shape"
    seeds_needed: ClassVar[int] = 3
    leak_threshold: ClassVar[float] = 0.5

    def _features(self, capture: WorkloadCapture) -> tuple[float, ...]:
        """Address-shape feature vector of one capture (attacker view only).

        The attacker first segments the decoded addresses into 256 MiB
        regions and keeps only the dominant one: schemes that fetch
        encryption metadata (counter blocks) interleave it from a separate
        region, and a competent adversary profiles the demand stream, not
        the mixture.  Six dimensions, each in ``[0, 1]``: near-block
        fraction, same-chunk fraction, temporal repeat rate, decoded write
        share, mean log stride, and working-set density (distinct blocks
        over the address span).  On a ciphertext wire no region dominates,
        every capture degenerates to the same default vector, and
        classification collapses to the random-guess baseline.
        """
        default = (0.0, 0.0, 0.0, 0.5, 0.0, 0.0)
        commands = capture.commands()
        decoded = [(wire_address(t.wire_bytes), t) for t in commands]
        if len(decoded) < 2:
            return default
        regions = Counter(address >> _REGION_SHIFT for address, _ in decoded)
        top = max(regions, key=lambda region: (regions[region], -region))
        selected = [
            (address, t) for address, t in decoded if address >> _REGION_SHIFT == top
        ]
        if len(selected) < max(_MIN_REGION_COMMANDS, len(decoded) // 20):
            return default
        addresses = [address for address, _ in selected]
        blocks = [a >> _BLOCK_SHIFT for a in addresses]
        deltas = [abs(n - p) for p, n in zip(blocks, blocks[1:])]
        near = sum(1 for d in deltas if d <= _NEAR_BLOCKS)
        same_chunk = sum(
            1
            for p, n in zip(addresses, addresses[1:])
            if p >> _CHUNK_SHIFT == n >> _CHUNK_SHIFT
        )
        pairs = len(addresses) - 1
        repeat = 1.0 - len(set(addresses)) / len(addresses)
        types = [wire_is_write(t.wire_bytes) for _, t in selected]
        valid = [t for t in types if t is not None]
        write_share = _mean([1.0 if t else 0.0 for t in valid], default=0.5)
        log_stride = min(
            1.0, _mean([math.log2(d + 1) for d in deltas]) / _LOG_STRIDE_SCALE
        )
        span = max(blocks) - min(blocks) + 1
        density = min(1.0, _DENSITY_SCALE * len(set(blocks)) / span)
        return (
            near / pairs,
            same_chunk / pairs,
            repeat,
            write_share,
            log_stride,
            density,
        )

    def attack(self, observed: AttackInput) -> AttackOutcome:
        """Profile-then-classify over the workloads' captures."""
        workloads = observed.workloads()
        profiles = {
            w: self._features(observed.captures[w][0])
            for w in workloads
            if observed.captures[w]
        }
        tests = [
            (w, capture)
            for w in workloads
            for capture in observed.captures[w][1:]
        ]
        if len(profiles) < 2 or not tests:
            return AttackOutcome(
                self.name, observed.scheme, 0.0, 0.0, 0.0,
                {"tests": 0, "workloads": len(profiles)},
            )
        correct = 0
        for truth, capture in tests:
            vector = self._features(capture)
            best = min(
                profiles,
                key=lambda w: (
                    sum((a - b) ** 2 for a, b in zip(vector, profiles[w])),
                    w,  # deterministic tie-break: lexicographic
                ),
            )
            correct += best == truth
        accuracy = correct / len(tests)
        baseline = 1.0 / len(profiles)
        return AttackOutcome(
            self.name,
            observed.scheme,
            normalized_advantage(accuracy, baseline),
            baseline,
            accuracy,
            {"tests": len(tests), "correct": correct, "workloads": len(profiles)},
        )

    def expects_leak(self, expected: "ExpectedLeakage") -> bool:
        """Fingerprinting needs *some* address-derived feature on the wire."""
        return expected.wire_observable and not (
            expected.spatial_hidden
            and expected.chunk_hidden
            and expected.temporal_hidden
        )


class TypeRecoveryAttacker(Attacker):
    """Recover read-vs-write from the command type byte.

    A plaintext wire hands the type over; under counter-mode encryption the
    byte is pad noise and the attacker degenerates to an unbiased coin,
    which is also where ObfusMem's read/write pairing (§3.3) pins any
    smarter traffic-shape classifier.  Scored per real request against a
    0.5 baseline.
    """

    name: ClassVar[str] = "type_recovery"
    summary: ClassVar[str] = "read/write recovery from the command type byte"
    leak_threshold: ClassVar[float] = 0.5

    def _capture_accuracy(self, capture: WorkloadCapture) -> tuple[int, int]:
        """(correct, total) type guesses over the capture's real commands."""
        correct = total = 0
        for t in capture.real_commands():
            guess = wire_is_write(t.wire_bytes)
            if guess is None:
                guess = bool(hash_coin(t.wire_bytes, t.time_ps))
            total += 1
            correct += guess == t.plaintext_is_write
        return correct, total

    def attack(self, observed: AttackInput) -> AttackOutcome:
        """Guess every real request's type; score against ground truth."""
        correct = total = 0
        for workload in observed.workloads():
            for capture in observed.captures[workload]:
                c, n = self._capture_accuracy(capture)
                correct, total = correct + c, total + n
        accuracy = correct / total if total else 0.0
        advantage = normalized_advantage(accuracy, 0.5) if total else 0.0
        return AttackOutcome(
            self.name,
            observed.scheme,
            advantage,
            0.5,
            accuracy,
            {"requests": total, "correct": correct},
        )

    def expects_leak(self, expected: "ExpectedLeakage") -> bool:
        """Leaks when the traits predict above-coin type recovery."""
        return expected.wire_observable and expected.type_accuracy > 0.5


class FootprintAttacker(Attacker):
    """Estimate the working-set size from distinct wire addresses.

    Deterministic address encodings (plaintext, HIDE permutations, the §3.2
    ECB strawman) keep the distinct-count equal to the true footprint;
    counter-mode wires make every command unique and the estimate explodes.
    Advantage is ``1 - relative error``, clipped to ``[0, 1]``.
    """

    name: ClassVar[str] = "footprint"
    summary: ClassVar[str] = "working-set size from distinct wire addresses"
    leak_threshold: ClassVar[float] = 0.5

    def _capture_advantage(self, capture: WorkloadCapture) -> tuple[float, int, int]:
        """(advantage, estimate, truth) for one capture."""
        commands = capture.commands()
        truth = len({t.plaintext_address for t in capture.real_commands()})
        if not commands or truth == 0:
            return 0.0, 0, truth
        estimate = len({wire_address(t.wire_bytes) for t in commands})
        error = abs(estimate - truth) / truth
        return max(0.0, 1.0 - error), estimate, truth

    def attack(self, observed: AttackInput) -> AttackOutcome:
        """Average the footprint-recovery advantage over all captures."""
        advantages: list[float] = []
        estimates = truths = 0
        for workload in observed.workloads():
            for capture in observed.captures[workload]:
                advantage, estimate, truth = self._capture_advantage(capture)
                advantages.append(advantage)
                estimates += estimate
                truths += truth
        advantage = _mean(advantages)
        return AttackOutcome(
            self.name,
            observed.scheme,
            advantage,
            0.0,
            float(estimates),
            {"estimated_blocks": estimates, "true_blocks": truths},
        )

    def expects_leak(self, expected: "ExpectedLeakage") -> bool:
        """Leaks whenever the traits say the footprint reaches the wire."""
        return expected.wire_observable and not expected.footprint_hidden


class ChannelCorrelationAttacker(Attacker):
    """Infer which channel served a request from inter-channel timing.

    For each real request (the challenge anchor), the attacker looks at the
    command activity within a short window around the anchor time and bets
    on the busiest channel.  Without cover traffic only the serving channel
    is active and the bet wins; ObfusMem's channel injection (§3.4) keeps
    every channel equally busy, pinning the attacker to the 1/C baseline.
    """

    name: ClassVar[str] = "channel_correlation"
    summary: ClassVar[str] = "serving-channel inference from activity timing"
    #: Covered schemes retain a residual count bias below this — §3.3's
    #: read/write pair rides the serving channel, so its command count is
    #: one higher than each cover channel's — while uncovered wires let the
    #: attacker recover the serving channel outright (advantage >= ~0.5).
    #: The threshold separates "recovers the channel" from that residual.
    leak_threshold: ClassVar[float] = 0.45

    #: Half-width of the activity window around each anchor (ps).
    window_ps: ClassVar[int] = 30_000

    def _capture_accuracy(self, capture: WorkloadCapture) -> tuple[int, int]:
        """(correct, total) channel guesses over the capture's anchors."""
        commands = sorted(capture.commands(), key=lambda t: (t.time_ps, t.channel))
        times = [t.time_ps for t in commands]
        correct = total = 0
        lo = 0
        for anchor in (t for t in commands if not t.is_dummy):
            if anchor.plaintext_address is None:
                continue
            while lo < len(times) and times[lo] < anchor.time_ps - self.window_ps:
                lo += 1
            counts: dict[int, int] = {}
            hi = lo
            while hi < len(times) and times[hi] <= anchor.time_ps + self.window_ps:
                channel = commands[hi].channel
                counts[channel] = counts.get(channel, 0) + 1
                hi += 1
            if not counts:
                continue
            top = max(counts.values())
            tied = sorted(c for c, n in counts.items() if n == top)
            guess = tied[hash_coin(anchor.time_ps, len(tied), modulus=len(tied))]
            total += 1
            correct += guess == anchor.channel
        return correct, total

    def attack(self, observed: AttackInput) -> AttackOutcome:
        """Guess the serving channel of every real request; score it."""
        if observed.channels < 2:
            return AttackOutcome(
                self.name, observed.scheme, 0.0, 1.0, 0.0, {"requests": 0}
            )
        correct = total = 0
        for workload in observed.workloads():
            for capture in observed.captures[workload]:
                c, n = self._capture_accuracy(capture)
                correct, total = correct + c, total + n
        accuracy = correct / total if total else 0.0
        baseline = 1.0 / observed.channels
        advantage = normalized_advantage(accuracy, baseline) if total else 0.0
        return AttackOutcome(
            self.name,
            observed.scheme,
            advantage,
            baseline,
            accuracy,
            {"requests": total, "correct": correct},
        )

    def expects_leak(self, expected: "ExpectedLeakage") -> bool:
        """Leaks when channels are exposed without cover traffic."""
        return expected.wire_observable and not expected.channels_covered


class RebuildTimingAttacker(Attacker):
    """Detect periodic maintenance bursts in transfer timing (§6.2 general).

    The paper's §6.2 timing channel observes that ORAM's fixed access
    cadence is visible without reading a single wire bit.  Generalized
    here: backends flagged :data:`~repro.oram.backend.TRAIT_REBUILD_BURSTS`
    (Ring evictions, Pyramid rebuilds) emit large, uniformly-sized activity
    bursts at a regular access cadence.  The attacker clusters transfer
    times, looks for clusters far above the typical size, and scores their
    regularity; demand traffic — even heavy, even obfuscated — produces
    either uniform small clusters or irregular large ones, and scores 0.
    """

    name: ClassVar[str] = "rebuild_timing"
    summary: ClassVar[str] = "periodic maintenance-burst detection from timing"
    leak_threshold: ClassVar[float] = 0.5

    #: Transfers closer than this (ps) belong to one activity cluster.
    cluster_gap_ps: ClassVar[int] = 15_000
    #: A burst must dwarf the typical cluster by this factor (min 32).
    burst_factor: ClassVar[float] = 4.0
    #: Size spread above this CV means "not scheduled maintenance".
    max_size_cv: ClassVar[float] = 0.35

    def _capture_advantage(self, capture: WorkloadCapture) -> tuple[float, int]:
        """(advantage, burst count) from one capture's transfer times."""
        times = sorted(t.time_ps for t in capture.transfers)
        if len(times) < 10:
            return 0.0, 0
        sizes: list[int] = []
        starts: list[int] = []
        size, start = 1, times[0]
        for previous, current in zip(times, times[1:]):
            if current - previous <= self.cluster_gap_ps:
                size += 1
            else:
                sizes.append(size)
                starts.append(start)
                size, start = 1, current
        sizes.append(size)
        starts.append(start)
        if len(sizes) < 4:
            return 0.0, 0
        cutoff = max(32.0, self.burst_factor * statistics.median(sizes))
        bursts = [
            (s, g) for s, g in zip(sizes, starts) if s >= cutoff
        ]
        if len(bursts) < 3:
            return 0.0, len(bursts)
        burst_sizes = [float(s) for s, _ in bursts]
        burst_gaps = [
            float(b - a) for (_, a), (_, b) in zip(bursts, bursts[1:])
        ]
        size_cv = _cv(burst_sizes)
        gap_cv = _cv(burst_gaps)
        if size_cv >= self.max_size_cv:
            return 0.0, len(bursts)
        advantage = max(
            0.0, (1.0 - size_cv / self.max_size_cv) * (1.0 - min(gap_cv, 1.0))
        )
        return advantage, len(bursts)

    def attack(self, observed: AttackInput) -> AttackOutcome:
        """Average burst-detection confidence over all captures."""
        advantages: list[float] = []
        bursts = 0
        for workload in observed.workloads():
            for capture in observed.captures[workload]:
                advantage, count = self._capture_advantage(capture)
                advantages.append(advantage)
                bursts += count
        advantage = _mean(advantages)
        return AttackOutcome(
            self.name,
            observed.scheme,
            advantage,
            0.0,
            advantage,
            {"bursts": bursts, "captures": len(advantages)},
        )

    def expects_leak(self, expected: "ExpectedLeakage") -> bool:
        """Leaks exactly when the scheme carries rebuild-burst maintenance."""
        return expected.timing_bursts


register_attacker(FingerprintAttacker())
register_attacker(TypeRecoveryAttacker())
register_attacker(FootprintAttacker())
register_attacker(ChannelCorrelationAttacker())
register_attacker(RebuildTimingAttacker())
