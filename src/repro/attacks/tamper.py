"""Active wire-tampering attacks (§3.5), registry edition.

The scenario harnesses moved here from ``repro.analysis.attacks`` (which
keeps re-export shims): each wires a scripted interceptor into the
functional ObfusMem stack and reports whether the tampering was detected.
New here is :func:`address_flip_attack` — the CTR-malleability forgery
that separates authenticated from unauthenticated encryption: flipping an
*address* byte of an encrypted command flips the same plaintext bit, the
type byte still decodes, and without a MAC the memory silently executes
the wrong access.

:class:`TamperAttacker` runs the whole scenario battery against a
registered scheme: plaintext wires accept every forgery by construction,
opaque ORAM backends expose no wire to tamper with, and ObfusMem stacks
are exercised through the functional path under their configured
:class:`~repro.core.config.AuthMode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.attacks.base import AttackInput, AttackOutcome, Attacker, register_attacker
from repro.core.config import AuthMode
from repro.core.functional import FunctionalObfusMem
from repro.crypto.rng import DeterministicRng
from repro.errors import IntegrityError

if TYPE_CHECKING:
    from repro.analysis.leakage import ExpectedLeakage


@dataclass
class ActiveAttackOutcome:
    """What happened when an active attack ran against the channel."""

    detected: bool
    error: str | None


class _ScriptedInterceptor:
    """Tamper with the nth wire message of a given kind."""

    def __init__(self, kind: str, occurrence: int, mutate):
        self.kind = kind
        self.occurrence = occurrence
        self.mutate = mutate
        self._seen = 0
        self.recorded: list[bytes] = []

    def __call__(self, kind: str, direction: str, payload: bytes) -> bytes | None:
        self.recorded.append(payload)
        if kind == self.kind:
            self._seen += 1
            if self._seen == self.occurrence:
                return self.mutate(payload)
        return payload


def _run_attack(auth: AuthMode, interceptor, operations) -> ActiveAttackOutcome:
    rng = DeterministicRng(99)
    stack = FunctionalObfusMem(
        session_key=rng.fork("sk").token_bytes(16),
        memory_key=rng.fork("mk").token_bytes(16),
        rng=rng,
        auth=auth,
        interceptor=interceptor,
    )
    try:
        operations(stack)
    except IntegrityError as error:
        return ActiveAttackOutcome(detected=True, error=str(error))
    return ActiveAttackOutcome(detected=False, error=None)


def _default_operations(stack: FunctionalObfusMem) -> None:
    stack.write(0x4000, bytes(range(64)))
    stack.read(0x4000)
    stack.write(0x8000, bytes(reversed(range(64))))
    stack.read(0x8000)


def command_bitflip_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Flip one bit of an encrypted command in flight (M -> M').

    §3.5: the memory decrypts a wrong (r', a) or (r, a'), the recomputed
    MAC mismatches, and tampering is detected.
    """

    def flip(payload: bytes) -> bytes:
        return bytes([payload[0] ^ 0x40]) + payload[1:]

    return _run_attack(auth, _ScriptedInterceptor("command", 2, flip), _default_operations)


def address_flip_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Flip an *address* bit of an encrypted command (CTR malleability).

    Counter mode is malleable: XOR-ing a wire byte flips the same plaintext
    bit.  The tampered command still carries a valid type code, so the
    memory decodes it and executes the access at the wrong address — data
    is silently misplaced.  Only the MAC over (r|a|c) catches the forgery;
    with ``AuthMode.NONE`` the attack is expected to go undetected (the
    integrity argument for §3.5's authenticated mode).
    """

    def flip(payload: bytes) -> bytes:
        # Byte 4 sits inside the 8-byte address field of the command layout.
        return payload[:4] + bytes([payload[4] ^ 0x01]) + payload[5:]

    return _run_attack(auth, _ScriptedInterceptor("command", 2, flip), _default_operations)


def message_drop_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Delete a request from the bus.

    §3.5: processor and memory counters desynchronize; no further
    meaningful communication is possible and detection follows.
    """

    def drop(payload: bytes) -> bytes | None:
        return None

    return _run_attack(auth, _ScriptedInterceptor("command", 2, drop), _default_operations)


def replay_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Replace a command with a previously captured valid command.

    §3.5: the memory verifies with its *fresh* counter, while the captured
    message reflects a stale one — the MAC mismatches.
    """
    state: dict[str, bytes] = {}

    class Replayer:
        """Interceptor that records one command and later replays it."""

        def __call__(self, kind: str, direction: str, payload: bytes) -> bytes:
            if kind != "command":
                return payload
            if "captured" not in state:
                state["captured"] = payload
                return payload
            if "replayed" not in state:
                state["replayed"] = payload
                return state["captured"]
            return payload

    return _run_attack(auth, Replayer(), _default_operations)


def data_tamper_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Flip bits in a *data* burst (not the command).

    Observation 4: with encrypt-and-MAC the tag covers (r|a|c) only, so
    data tampering passes the bus check — it is caught later by the Merkle
    tree when the block is read back.  Expected: NOT detected at bus level.
    """

    def flip(payload: bytes) -> bytes:
        return bytes([payload[0] ^ 0xFF]) + payload[1:]

    return _run_attack(auth, _ScriptedInterceptor("data", 1, flip), _default_operations)


def injection_attack(auth: AuthMode = AuthMode.ENCRYPT_AND_MAC) -> ActiveAttackOutcome:
    """Substitute a fabricated random command for a legitimate one.

    The attacker cannot construct ciphertext that decrypts meaningfully
    under the session pad; decode or MAC verification fails.
    """
    rng = DeterministicRng(123456)

    def fabricate(payload: bytes) -> bytes:
        return rng.token_bytes(len(payload))

    return _run_attack(auth, _ScriptedInterceptor("command", 3, fabricate), _default_operations)


#: The full battery, in the order the paper discusses the scenarios.
TAMPER_SCENARIOS: tuple[tuple[str, object], ...] = (
    ("command_bitflip", command_bitflip_attack),
    ("address_flip", address_flip_attack),
    ("message_drop", message_drop_attack),
    ("replay", replay_attack),
    ("data_tamper", data_tamper_attack),
    ("injection", injection_attack),
)


class TamperAttacker(Attacker):
    """Run the §3.5 forgery battery against a scheme's wire protection.

    Advantage is the fraction of scenarios that go *undetected*.  A
    plaintext wire (no bus crypto stage) accepts every forgery by
    construction; an opaque ORAM backend exposes no wire at all; ObfusMem
    stacks run the functional scenarios under their configured auth mode —
    the MAC catches the address-flip forgery that pure encryption misses,
    while data tampering passes the bus check for both (deferred to the
    Merkle tree, Observation 4).
    """

    name: ClassVar[str] = "tamper"
    summary: ClassVar[str] = "§3.5 active forgery battery (undetected fraction)"
    kind: ClassVar[str] = "active"
    seeds_needed: ClassVar[int] = 0
    leak_threshold: ClassVar[float] = 0.5

    def attack(self, observed: AttackInput) -> AttackOutcome:
        """Score the scenario battery against the named scheme's stack."""
        # Imported here: repro.schemes must stay importable without the
        # attacks package (the dependency points this way only).
        from repro.oram.backend import TRAIT_OPAQUE_BACKEND
        from repro.schemes import resolve_scheme
        from repro.schemes.stages import ObfusMemStage

        scheme = resolve_scheme(observed.scheme)
        evidence: dict[str, float | int | str] = {"scenarios": len(TAMPER_SCENARIOS)}
        if TRAIT_OPAQUE_BACKEND in scheme.traits:
            evidence["mode"] = "opaque-backend"
            return AttackOutcome(self.name, observed.scheme, 0.0, 0.0, 0.0, evidence)
        stage = next(
            (s for s in scheme.stages if isinstance(s, ObfusMemStage)), None
        )
        if stage is None:
            # No bus crypto: the attacker rewrites plaintext commands at
            # will and nothing on the wire can tell.
            evidence["mode"] = "plaintext-wire"
            return AttackOutcome(self.name, observed.scheme, 1.0, 0.0, 1.0, evidence)
        evidence["mode"] = f"obfusmem-{stage.auth.name.lower()}"
        undetected = 0
        for scenario, attack in TAMPER_SCENARIOS:
            outcome = attack(stage.auth)
            evidence[scenario] = "undetected" if not outcome.detected else "detected"
            undetected += not outcome.detected
        fraction = undetected / len(TAMPER_SCENARIOS)
        return AttackOutcome(
            self.name, observed.scheme, fraction, 0.0, fraction, evidence
        )

    def expects_leak(self, expected: "ExpectedLeakage") -> bool:
        """Forgery sticks when commands cross the wire unencrypted."""
        return expected.wire_observable and not expected.temporal_hidden


register_attacker(TamperAttacker())
