"""Attacker protocol, normalized outcomes and the attacker registry.

The schemes registry answers "what defenses exist"; this module answers
"what adversaries exist".  An :class:`Attacker` consumes the observable
bus — :class:`~repro.mem.bus.BusObserver` captures of
:meth:`~repro.mem.bus.BusTransfer.attacker_view` fields — and emits a
normalized :class:`AttackOutcome`: an **advantage** in ``[0, 1]`` over the
attack's random-guess baseline, plus the raw evidence behind it.  Because
every attack reports on the same scale, outcomes are comparable across
attacks and the scheme×attack leakage matrix
(:mod:`repro.experiments.matrix`) can render one verdict column for all of
them.

The registry mirrors :mod:`repro.schemes.registry` /
:mod:`repro.oram.backend`: attackers register under a unique name,
:func:`get_attacker` offers close-match hints, and
:mod:`repro.attacks.cli` exposes ``--list-attacks`` on every experiment
CLI.  Attackers must be **deterministic**: the same capture always yields
a bit-identical outcome (tie-breaks go through :func:`hash_coin`, never a
live RNG), which is what lets the matrix cache outcomes by content digest.
"""

from __future__ import annotations

import abc
import difflib
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

from repro.errors import ConfigurationError
from repro.mem.bus import BusTransfer, TransferKind

if TYPE_CHECKING:  # evaluation-side only; never imported at runtime here
    from repro.analysis.leakage import ExpectedLeakage

# The publicly documented command layouts: one type byte followed by an
# 8-byte big-endian address.  The unprotected scheduler encodes the type
# as 0x00 read / 0x01 write; the secure packet format of
# :mod:`repro.core.packets` uses the sparse codes 0x0A read / 0x5B write
# (what a ciphertext wire decrypts to).  The threat model assumes the
# attacker knows both formats — they are protocol, not a crypto secret.
COMMAND_TYPE_READ = 0x0A
COMMAND_TYPE_WRITE = 0x5B
PLAIN_TYPE_READ = 0x00
PLAIN_TYPE_WRITE = 0x01
_ADDRESS_SLICE = slice(1, 9)


def wire_address(wire_bytes: bytes) -> int:
    """Decode the address field assuming the plaintext command layout.

    On a ciphertext wire this yields pad-dependent garbage — which is the
    point: the attacker always *can* run the decode, and the leakage
    question is whether the result carries information.
    """
    return int.from_bytes(wire_bytes[_ADDRESS_SLICE], "big")


def wire_is_write(wire_bytes: bytes) -> bool | None:
    """Decode the type byte; None when it is not a valid command code.

    Accepts both public layouts (plain scheduler and secure packet).  On a
    ciphertext wire the first byte is pad-dependent, so it only rarely
    collides with one of the four valid codes.
    """
    if not wire_bytes:
        return None
    code = wire_bytes[0]
    if code in (COMMAND_TYPE_WRITE, PLAIN_TYPE_WRITE):
        return True
    if code in (COMMAND_TYPE_READ, PLAIN_TYPE_READ):
        return False
    return None


def hash_coin(*parts: object, modulus: int = 2) -> int:
    """Deterministic pseudo-random draw in ``range(modulus)``.

    Attackers use this for unbiased guesses and tie-breaks so that the
    same capture always produces the same outcome — a live RNG would break
    the bit-identical caching contract.
    """
    text = "|".join(repr(part) for part in parts).encode()
    digest = hashlib.blake2b(text, digest_size=8).digest()
    return int.from_bytes(digest, "big") % max(1, modulus)


@dataclass(frozen=True)
class WorkloadCapture:
    """One observed bus trace: a workload run under one scheme and seed."""

    workload: str
    seed: int
    transfers: tuple[BusTransfer, ...]
    #: Transfers the observer's ring buffer had to discard (0 = complete).
    dropped: int = 0

    def commands(self) -> list[BusTransfer]:
        """Command/address transfers, in observation order."""
        return [t for t in self.transfers if t.kind is TransferKind.COMMAND]

    def real_commands(self) -> list[BusTransfer]:
        """Ground-truth-annotated real (non-dummy) commands.

        Evaluation-side selection: scoring needs to know which commands
        were real, the attacker's *guesses* never read these fields.
        """
        return [
            t
            for t in self.commands()
            if not t.is_dummy and t.plaintext_address is not None
        ]


@dataclass(frozen=True)
class AttackInput:
    """Everything one attacker invocation gets to work with.

    ``captures`` maps each workload to the captures taken for it, ordered
    by seed (``seeds_needed`` per workload).  Active attackers that drive
    the functional stack directly (``seeds_needed == 0``) receive an empty
    mapping and work from the scheme name alone.
    """

    scheme: str
    channels: int
    captures: dict[str, tuple[WorkloadCapture, ...]] = field(default_factory=dict)

    def workloads(self) -> list[str]:
        """Captured workload names, sorted for deterministic iteration."""
        return sorted(self.captures)


@dataclass(frozen=True)
class AttackOutcome:
    """Normalized result of one attacker against one scheme.

    ``score`` is the attack's raw success measure (accuracy, estimate,
    fraction of forgeries accepted — attack-specific); ``baseline`` is what
    random guessing scores; ``advantage`` normalizes the two into ``[0, 1]``
    so outcomes are comparable across attacks.  ``evidence`` holds the raw
    numbers the advantage was computed from.
    """

    attack: str
    scheme: str
    advantage: float
    baseline: float
    score: float
    evidence: dict[str, float | int | str] = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        """Plain-JSON form (cache entries, CSV export, the serve layer)."""
        return {
            "attack": self.attack,
            "scheme": self.scheme,
            "advantage": self.advantage,
            "baseline": self.baseline,
            "score": self.score,
            "evidence": dict(self.evidence),
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "AttackOutcome":
        """Rebuild an outcome from :meth:`to_jsonable` output."""
        return cls(
            attack=payload["attack"],
            scheme=payload["scheme"],
            advantage=float(payload["advantage"]),
            baseline=float(payload["baseline"]),
            score=float(payload["score"]),
            evidence=dict(payload.get("evidence", {})),
        )


def normalized_advantage(score: float, baseline: float) -> float:
    """Map a raw success rate onto ``[0, 1]`` above the guessing baseline.

    ``baseline`` scores 0, perfect success scores 1, below-baseline scores
    clip to 0 (doing worse than guessing is not leakage).
    """
    if baseline >= 1.0:
        return 0.0
    return max(0.0, min(1.0, (score - baseline) / (1.0 - baseline)))


class Attacker(abc.ABC):
    """One adversary: a named, deterministic analysis of the observable bus.

    Subclasses set the class-level metadata and implement :meth:`attack`
    plus :meth:`expects_leak` — the trait-derived prediction the leakage
    matrix checks measured advantage against.
    """

    #: Registry key (``AttackCellSpec(attack=<name>)`` selects it).
    name: ClassVar[str] = "attacker"
    #: One-line description for ``--list-attacks`` and the serve layer.
    summary: ClassVar[str] = ""
    #: ``"passive"`` (reads captures) or ``"active"`` (tampers with wires).
    kind: ClassVar[str] = "passive"
    #: Captures wanted per workload (consecutive seeds); 0 = no captures.
    seeds_needed: ClassVar[int] = 1
    #: Advantage at or above which the matrix calls the scheme leaky.
    leak_threshold: ClassVar[float] = 0.5

    @abc.abstractmethod
    def attack(self, observed: AttackInput) -> AttackOutcome:
        """Run the attack over the observed captures; must be deterministic."""

    @abc.abstractmethod
    def expects_leak(self, expected: "ExpectedLeakage") -> bool:
        """Whether the scheme's wire traits predict this attack succeeds."""

    def describe(self) -> str:
        """Human-readable ``name: summary`` line for listings."""
        return f"{self.name}: {self.summary}"

    def to_jsonable(self) -> dict:
        """Registry metadata as plain JSON (the serve layer's ``/attacks``)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "kind": self.kind,
            "seeds_needed": self.seeds_needed,
            "leak_threshold": self.leak_threshold,
        }


# ---------------------------------------------------------------------------
# Attacker registry
# ---------------------------------------------------------------------------

_ATTACKERS: dict[str, Attacker] = {}


def register_attacker(attacker: Attacker, replace: bool = False) -> Attacker:
    """Add an attacker; duplicate names raise unless ``replace``."""
    if not attacker.name:
        raise ConfigurationError("attacker needs a non-empty name")
    if not replace and attacker.name in _ATTACKERS:
        raise ConfigurationError(
            f"attacker {attacker.name!r} is already registered"
        )
    _ATTACKERS[attacker.name] = attacker
    return attacker


def unregister_attacker(name: str) -> None:
    """Remove an attacker by name (no-op when absent; mainly for tests)."""
    _ATTACKERS.pop(name, None)


def attacker_names() -> list[str]:
    """Registered attacker names in registration order."""
    return list(_ATTACKERS)


def available_attackers() -> list[Attacker]:
    """Every registered attacker, in registration order."""
    return list(_ATTACKERS.values())


def get_attacker(name: str) -> Attacker:
    """Look an attacker up by name; unknown names get a close-match hint."""
    try:
        return _ATTACKERS[name]
    except KeyError:
        suggestion = difflib.get_close_matches(name, _ATTACKERS, n=1)
        hint = f"; did you mean {suggestion[0]!r}?" if suggestion else ""
        raise ConfigurationError(
            f"unknown attacker {name!r}{hint} "
            f"(registered: {', '.join(_ATTACKERS)})"
        ) from None


__all__ = [
    "AttackInput",
    "AttackOutcome",
    "Attacker",
    "WorkloadCapture",
    "attacker_names",
    "available_attackers",
    "get_attacker",
    "hash_coin",
    "normalized_advantage",
    "register_attacker",
    "unregister_attacker",
    "wire_address",
    "wire_is_write",
]
