"""Adversarial attackers: registry + normalized leakage scoring.

The defensive counterpart of :mod:`repro.schemes`: where that package
answers "what protections exist", this one answers "what adversaries
exist".  An :class:`~repro.attacks.base.Attacker` consumes observable
bus captures (:meth:`repro.mem.bus.BusTransfer.attacker_view`) — or, for
active attacks, drives the functional wire protocol directly — and emits
a normalized :class:`~repro.attacks.base.AttackOutcome` whose advantage
in ``[0, 1]`` is comparable across attacks.  Importing the package
registers the built-in attackers; :mod:`repro.experiments.matrix` fans
every scheme × every attacker into the leakage matrix, and
``--list-attacks`` prints the registry from any experiment CLI.

Built-ins: the passive snoopers of :mod:`repro.attacks.passive`
(fingerprint, type_recovery, footprint, channel_correlation,
rebuild_timing), the §3.2 frequency analysis of
:mod:`repro.attacks.dictionary`, and the §3.5 active forgery battery of
:mod:`repro.attacks.tamper`.
"""

from repro.attacks import dictionary, passive, tamper  # noqa: F401  (register built-ins)
from repro.attacks.base import (
    AttackInput,
    AttackOutcome,
    Attacker,
    WorkloadCapture,
    attacker_names,
    available_attackers,
    get_attacker,
    hash_coin,
    normalized_advantage,
    register_attacker,
    unregister_attacker,
    wire_address,
    wire_is_write,
)
from repro.attacks.cli import (
    ListAttacksAction,
    add_attack_arguments,
    format_attack_list,
)

__all__ = [
    "AttackInput",
    "AttackOutcome",
    "Attacker",
    "WorkloadCapture",
    "attacker_names",
    "available_attackers",
    "get_attacker",
    "hash_coin",
    "normalized_advantage",
    "register_attacker",
    "unregister_attacker",
    "wire_address",
    "wire_is_write",
    "ListAttacksAction",
    "add_attack_arguments",
    "format_attack_list",
]
