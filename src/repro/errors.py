"""Exception hierarchy for the ObfusMem reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class CryptoError(ReproError):
    """A cryptographic primitive was misused (bad key/nonce/length)."""


class IntegrityError(ReproError):
    """Integrity verification failed: tampering was detected."""


class CounterDesyncError(IntegrityError):
    """Processor-side and memory-side CTR counters no longer match."""


class TrustError(ReproError):
    """Trust bootstrapping failed (attestation mismatch, bad key burn)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class OramError(ReproError):
    """Path ORAM protocol violation (stash overflow, bad PosMap entry)."""


class OramDeadlockError(OramError):
    """Reshuffling could not proceed: buckets full along the chosen path."""


class TraceError(ReproError):
    """A workload trace is malformed or internally inconsistent."""


class CheckpointError(ReproError):
    """A simulation checkpoint could not be captured, stored or resumed."""
