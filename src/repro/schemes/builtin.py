"""Built-in protection schemes: the systems the paper's evaluation compares.

One registration per evaluated system (Figure 4 / Table 3), plus the §7
HIDE baseline and one hybrid demonstrating that new combinations are plain
registrations rather than builder branches.  Importing this module (which
``repro.schemes`` does on package import) populates the registry.
"""

from __future__ import annotations

from repro.core.config import AuthMode
from repro.schemes.registry import ProtectionScheme, register
from repro.schemes.stages import (
    EncryptionStage,
    HideStage,
    ObfusMemStage,
    OramBackendStage,
    PcmChannelStage,
)

UNPROTECTED = register(
    ProtectionScheme(
        name="unprotected",
        description="plaintext bus straight into the PCM channels (baseline)",
        stages=(PcmChannelStage(),),
    )
)

ENCRYPTION_ONLY = register(
    ProtectionScheme(
        name="encryption_only",
        description="counter-mode memory encryption; access pattern visible",
        stages=(EncryptionStage(), PcmChannelStage()),
    )
)

OBFUSMEM = register(
    ProtectionScheme(
        name="obfusmem",
        description="encryption + bus-ciphertext access-pattern obfuscation",
        stages=(
            EncryptionStage(),
            ObfusMemStage(auth=AuthMode.NONE),
            PcmChannelStage(),
        ),
    )
)

OBFUSMEM_AUTH = register(
    ProtectionScheme(
        name="obfusmem_auth",
        description="ObfusMem + authenticated bus communication (§3.5 MAC)",
        stages=(
            EncryptionStage(),
            ObfusMemStage(auth=AuthMode.ENCRYPT_AND_MAC),
            PcmChannelStage(),
        ),
    )
)

ORAM = register(
    ProtectionScheme(
        name="oram",
        description="fixed-latency Path ORAM model (paper's §4 baseline)",
        stages=(OramBackendStage(),),
    )
)

#: Ring ORAM (Ren et al.): XOR-compressed online reads and amortized
#: evictions over the same fixed-latency memory model — the "24x vs 120x"
#: bandwidth point the paper cites next to Path ORAM.
ORAM_RING = register(
    ProtectionScheme(
        name="oram_ring",
        description="Ring ORAM backend: XOR online reads, amortized evictions",
        stages=(OramBackendStage(backend="ring"),),
    )
)

#: The Pyramid Scheme (Costa et al., PAPERS.md): hash-table ORAM hierarchy
#: with amortized rebuilds, tuned for trusted processors.
PYRAMID = register(
    ProtectionScheme(
        name="pyramid",
        description="Pyramid ORAM backend: hash-table hierarchy + rebuilds",
        stages=(OramBackendStage(backend="pyramid"),),
    )
)

#: Palermo (Ye et al., PAPERS.md): protocol/HW co-design overlapping the
#: position-map fetch with banked tree-path phases.
PALERMO = register(
    ProtectionScheme(
        name="palermo",
        description="Palermo backend: overlapped posmap + banked tree phases",
        stages=(OramBackendStage(backend="palermo"),),
    )
)

HIDE = register(
    ProtectionScheme(
        name="hide",
        description="chunk-level address permutation (HIDE, §7 baseline)",
        stages=(HideStage(), PcmChannelStage()),
    )
)

#: Hybrid: the HIDE permutation running under counter-mode encryption at
#: rest — content protected, access pattern only chunk-obfuscated.  Exists
#: to prove hybrids are registrations, and as a measurable ablation point
#: between ``encryption_only`` and ``obfusmem``.
HIDE_ENCRYPTED = register(
    ProtectionScheme(
        name="hide_encrypted",
        description="hybrid: chunk permutation under encryption at rest",
        stages=(EncryptionStage(), HideStage(), PcmChannelStage()),
    )
)
