"""Built-in protection schemes: the systems the paper's evaluation compares.

One registration per evaluated system (Figure 4 / Table 3), plus the §7
HIDE baseline and one hybrid demonstrating that new combinations are plain
registrations rather than builder branches.  Importing this module (which
``repro.schemes`` does on package import) populates the registry.
"""

from __future__ import annotations

from repro.core.config import AuthMode
from repro.schemes.registry import ProtectionScheme, register
from repro.schemes.stages import (
    EncryptionStage,
    HideStage,
    ObfusMemStage,
    OramBackendStage,
    PcmChannelStage,
)

UNPROTECTED = register(
    ProtectionScheme(
        name="unprotected",
        description="plaintext bus straight into the PCM channels (baseline)",
        stages=(PcmChannelStage(),),
    )
)

ENCRYPTION_ONLY = register(
    ProtectionScheme(
        name="encryption_only",
        description="counter-mode memory encryption; access pattern visible",
        stages=(EncryptionStage(), PcmChannelStage()),
    )
)

OBFUSMEM = register(
    ProtectionScheme(
        name="obfusmem",
        description="encryption + bus-ciphertext access-pattern obfuscation",
        stages=(
            EncryptionStage(),
            ObfusMemStage(auth=AuthMode.NONE),
            PcmChannelStage(),
        ),
    )
)

OBFUSMEM_AUTH = register(
    ProtectionScheme(
        name="obfusmem_auth",
        description="ObfusMem + authenticated bus communication (§3.5 MAC)",
        stages=(
            EncryptionStage(),
            ObfusMemStage(auth=AuthMode.ENCRYPT_AND_MAC),
            PcmChannelStage(),
        ),
    )
)

ORAM = register(
    ProtectionScheme(
        name="oram",
        description="fixed-latency Path ORAM model (paper's §4 baseline)",
        stages=(OramBackendStage(),),
    )
)

HIDE = register(
    ProtectionScheme(
        name="hide",
        description="chunk-level address permutation (HIDE, §7 baseline)",
        stages=(HideStage(), PcmChannelStage()),
    )
)

#: Hybrid: the HIDE permutation running under counter-mode encryption at
#: rest — content protected, access pattern only chunk-obfuscated.  Exists
#: to prove hybrids are registrations, and as a measurable ablation point
#: between ``encryption_only`` and ``obfusmem``.
HIDE_ENCRYPTED = register(
    ProtectionScheme(
        name="hide_encrypted",
        description="hybrid: chunk permutation under encryption at rest",
        stages=(EncryptionStage(), HideStage(), PcmChannelStage()),
    )
)
