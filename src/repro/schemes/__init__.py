"""Composable protection schemes: registry + staged link-layer pipeline.

The package turns the evaluation's hard-wired protection levels into
declarative data: a :class:`~repro.schemes.registry.ProtectionScheme` is a
registered name plus a top-down stack of reusable
:class:`~repro.schemes.stages.BusStage` components (packet codec + channel
scheduler, memory encryption, ObfusMem obfuscation, HIDE permutation, the
ORAM backend).  Importing the package registers the built-in schemes; see
:mod:`repro.schemes.builtin` for the catalogue and
:mod:`repro.schemes.registry` for how to add your own.
"""

from repro.schemes import builtin  # noqa: F401  (registers built-in schemes)
from repro.schemes.cli import (
    ListSchemesAction,
    add_scheme_arguments,
    format_scheme_list,
)
from repro.schemes.registry import (
    ProtectionScheme,
    available_schemes,
    get_scheme,
    level_for,
    register,
    resolve_scheme,
    scheme_name_of,
    scheme_names,
    unregister,
)
from repro.schemes.stages import (
    BusStage,
    EncryptionStage,
    HideStage,
    ObfusMemStage,
    OramBackendStage,
    PcmChannelStage,
    StageContext,
)

__all__ = [
    "ProtectionScheme",
    "available_schemes",
    "get_scheme",
    "level_for",
    "register",
    "resolve_scheme",
    "scheme_name_of",
    "scheme_names",
    "unregister",
    "BusStage",
    "EncryptionStage",
    "HideStage",
    "ObfusMemStage",
    "OramBackendStage",
    "PcmChannelStage",
    "StageContext",
    "ListSchemesAction",
    "add_scheme_arguments",
    "format_scheme_list",
]
