"""Reusable link-layer stages: the building blocks of a protection scheme.

ObfusMem's design is literally a stack of bus transformations — packetize,
counter-mode encrypt, MAC, piggyback dummies, balance channels — so the
system composer models a protection scheme as exactly that: an ordered
stack of :class:`BusStage` descriptors, written top-down the way the paper
draws its figures::

    [EncryptionStage]      counter-mode encryption of data at rest
    [ObfusMemStage]        bus ciphertext + dummy pairing (+ MAC)
    [PcmChannelStage]      multi-channel PCM scheduler (terminal)

Each descriptor is a small frozen dataclass — cheap to construct, hashable,
and serializable by the experiment executor — that knows how to *build* its
live component on top of the stage below it.  Descriptors also carry the
declarative metadata the rest of the codebase keys off:

* ``traits`` — what this stage makes the wire look like to a physical bus
  snooper (:func:`repro.analysis.leakage.expected_leakage` derives the
  attacker's expected scores from these flags instead of isinstance
  checks against live components);
* ``stat_groups`` — which :class:`~repro.sim.statistics.StatRegistry`
  group patterns the stage's component emits, so experiments can sum a
  scheme's counters without guessing group names.

Building happens bottom-up (terminal stage first); every stage registers
its live component under :attr:`BusStage.handle` in the shared
:class:`StageContext` so :class:`repro.system.builder.BuiltSystem` can
expose the familiar ``memory`` / ``obfusmem`` / ``encryption`` / ``oram``
attributes without knowing which scheme was built.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import AuthMode
from repro.core.controller import ObfusMemController
from repro.core.hide import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_REPERMUTE_INTERVAL,
    HideController,
)
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import MemoryBus
from repro.mem.scheduler import MemorySystem
# TRAIT_OPAQUE_BACKEND ("no wire model at all") and TRAIT_REBUILD_BURSTS
# ("bursty amortized maintenance") are owned by repro.oram.backend — the
# ORAM descriptors declare them — and re-exported here so the trait
# vocabulary stays importable from one place.
from repro.oram.backend import TRAIT_OPAQUE_BACKEND as TRAIT_OPAQUE_BACKEND
from repro.oram.backend import TRAIT_REBUILD_BURSTS as TRAIT_REBUILD_BURSTS
from repro.oram.backend import get_backend
from repro.oram.timing import OramMemoryModel
from repro.secure.memory_encryption import SecureMemoryController
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

if TYPE_CHECKING:  # import at type-check time only: repro.system imports us
    from repro.system.config import MachineConfig

# ---------------------------------------------------------------------------
# Wire traits: the vocabulary the leakage model reads.
# ---------------------------------------------------------------------------

#: Commands leave the chip as ciphertext; wire bytes never repeat.
TRAIT_CIPHERTEXT_WIRE = "ciphertext-wire"
#: Every real access travels with an opposite-type companion (§3.3).
TRAIT_PAIRED_TYPES = "paired-types"
#: Dummies cover the other channels whenever one is active (§3.4).
TRAIT_CHANNEL_COVER = "channel-cover"
#: Bus commands and data carry a MAC tag (§3.5).
TRAIT_AUTHENTICATED = "authenticated"
#: Addresses leave in plaintext but permuted within a chunk (HIDE, §7).
TRAIT_PERMUTED_ADDRESSES = "permuted-addresses"
#: Data at rest is counter-mode encrypted (content, not access pattern).
TRAIT_DATA_ENCRYPTED = "data-encrypted"


@dataclass
class StageContext:
    """Everything a stage needs to build its component, plus the handles.

    One context is threaded through a whole build; stages read the shared
    machine/engine/stats/rng and register the components they construct in
    :attr:`handles` under their :attr:`BusStage.handle` name.
    """

    engine: Engine
    stats: StatRegistry
    machine: MachineConfig
    rng: DeterministicRng
    bus: MemoryBus | None = None
    handles: dict[str, object] = field(default_factory=dict)


class BusStage(abc.ABC):
    """One layer of a protection scheme's link-layer stack.

    Subclasses are declarative descriptors: frozen dataclasses carrying the
    stage's parameters, built into live components only when a system is
    composed.  ``downstream`` in :meth:`build` is the component built by the
    stage below (``None`` for a terminal stage).
    """

    #: Short stage name used in stack summaries and ``--list-schemes``.
    name: str = "stage"
    #: Key under which the built component lands in ``StageContext.handles``.
    handle: str = "stage"
    #: One-line description of what the stage does.
    summary: str = ""
    #: Wire-visibility flags (the ``TRAIT_*`` constants above).
    traits: frozenset[str] = frozenset()
    #: ``fnmatch`` patterns of the stat groups the component emits.
    stat_groups: tuple[str, ...] = ()
    #: Terminal stages are backends; exactly one must end every stack.
    terminal: bool = False

    @abc.abstractmethod
    def build(self, ctx: StageContext, downstream: object | None) -> object:
        """Construct this stage's live component on top of ``downstream``."""

    def describe(self) -> str:
        """Human-readable ``name: summary`` line for CLI listings."""
        return f"{self.name}: {self.summary}"

    @staticmethod
    def _require_memory(downstream: object | None, stage: str) -> MemorySystem:
        """Validate that ``downstream`` is the PCM memory system."""
        if not isinstance(downstream, MemorySystem):
            raise ConfigurationError(
                f"{stage} must sit directly above the PCM channel stage, "
                f"not {type(downstream).__name__}"
            )
        return downstream


@dataclass(frozen=True)
class PcmChannelStage(BusStage):
    """Terminal stage: the multi-channel PCM memory system.

    Owns the address mapping (RoRaBaChCo decode), the per-channel FR-FCFS
    schedulers and the wire codec that writes command/data bursts onto the
    observable bus (:mod:`repro.core.packets` defines the format).
    """

    name = "pcm-channels"
    handle = "memory"
    summary = "multi-channel PCM with FR-FCFS scheduling and wire codec"
    stat_groups = ("channel*", "pcm*")
    terminal = True

    def build(self, ctx: StageContext, downstream: object | None) -> object:
        """Build the address mapping and channel scheduler stack."""
        machine = ctx.machine
        mapping = AddressMapping(
            capacity_bytes=machine.capacity_bytes,
            channels=machine.channels,
            ranks_per_channel=machine.ranks_per_channel,
            banks_per_rank=machine.banks_per_rank,
            row_buffer_bytes=machine.row_buffer_bytes,
        )
        memory = MemorySystem(
            ctx.engine,
            mapping,
            ctx.stats,
            timing=machine.timing,
            energy=machine.energy,
            bus=ctx.bus,
            wear_leveling=machine.wear_leveling,
        )
        ctx.handles[self.handle] = memory
        return memory


@dataclass(frozen=True)
class OramBackendStage(BusStage):
    """Terminal stage: a fixed-latency ORAM model behind a pluggable design.

    ``backend`` names a descriptor in the :mod:`repro.oram.backend`
    registry (``path``, ``ring``, ``pyramid``, ``palermo``, or anything
    registered by a plugin); the stage's display name, summary and traits
    all come from that descriptor, so registering a new ORAM design never
    touches this class or the builder.  The paper's §4 baseline is
    ``backend="path"``.
    """

    backend: str = "path"

    handle = "oram"
    stat_groups = ("oram",)
    terminal = True

    @property
    def name(self) -> str:  # type: ignore[override]
        """Stack name; the historical ``oram-backend`` for the baseline."""
        if self.backend == "path":
            return "oram-backend"
        return f"oram-{self.backend}"

    @property
    def summary(self) -> str:  # type: ignore[override]
        """The backend descriptor's one-line design summary."""
        return get_backend(self.backend).summary

    @property
    def traits(self) -> frozenset[str]:  # type: ignore[override]
        """Wire flags declared by the backend descriptor."""
        return get_backend(self.backend).traits

    def build(self, ctx: StageContext, downstream: object | None) -> object:
        """Build the fixed-latency ORAM model over the selected backend.

        The machine's ORAM latency assumption rescales the descriptor
        (it is the reference Path ORAM access cost every backend's
        per-block timing derives from).
        """
        descriptor = get_backend(self.backend).with_latency(
            ctx.machine.oram_access_latency_ns
        )
        oram = OramMemoryModel(
            ctx.engine, ctx.stats, backend=descriptor, bus=ctx.bus
        )
        ctx.handles[self.handle] = oram
        return oram


@dataclass(frozen=True)
class ObfusMemStage(BusStage):
    """The ObfusMem controller: bus ciphertext, dummy pairing, channels.

    Wraps :class:`repro.core.controller.ObfusMemController`, which combines
    the packet codec's opaque wire format, the dummy factory of
    :mod:`repro.core.dummy` and the per-channel injection policy.  With
    ``auth`` set, bus traffic additionally carries the §3.5 MAC tags
    (:mod:`repro.crypto.mac` supplies the functional twin's primitives).
    """

    auth: AuthMode = AuthMode.NONE

    name = "obfusmem"
    handle = "obfusmem"
    summary = "bus ciphertext + read/write dummy pairing + channel cover"
    stat_groups = ("obfusmem",)

    @property
    def traits(self) -> frozenset[str]:  # type: ignore[override]
        """Wire flags; authentication adds :data:`TRAIT_AUTHENTICATED`."""
        base = {TRAIT_CIPHERTEXT_WIRE, TRAIT_PAIRED_TYPES, TRAIT_CHANNEL_COVER}
        if self.auth is not AuthMode.NONE:
            base.add(TRAIT_AUTHENTICATED)
        return frozenset(base)

    def describe(self) -> str:
        """Stack-summary line, noting the MAC when authentication is on."""
        if self.auth is AuthMode.NONE:
            return super().describe()
        return f"{self.name}: {self.summary} + {self.auth.value} MAC"

    def build(self, ctx: StageContext, downstream: object | None) -> object:
        """Build the controller on top of the PCM memory system."""
        memory = self._require_memory(downstream, self.name)
        controller = ObfusMemController(
            ctx.engine,
            memory,
            ctx.machine.obfusmem_config(self.auth),
            ctx.stats,
            ctx.rng.fork("obfusmem"),
        )
        ctx.handles[self.handle] = controller
        return controller


@dataclass(frozen=True)
class EncryptionStage(BusStage):
    """Counter-mode memory encryption with counter-cache timing.

    Wraps :class:`repro.secure.memory_encryption.SecureMemoryController`;
    counter-fetch traffic it generates flows *through* whatever stage sits
    below, so under ObfusMem it is obfuscated and escorted like any other
    request (exactly what the paper requires).
    """

    name = "memory-encryption"
    handle = "encryption"
    summary = "counter-mode encryption of data at rest (counter cache)"
    traits = frozenset({TRAIT_DATA_ENCRYPTED})
    stat_groups = ("memenc", "counter_cache")

    def build(self, ctx: StageContext, downstream: object | None) -> object:
        """Build the secure memory controller over ``downstream``."""
        if downstream is None:
            raise ConfigurationError(
                "memory-encryption is not a terminal stage; stack it above "
                "a backend"
            )
        controller = SecureMemoryController(
            ctx.engine,
            downstream,
            capacity_bytes=ctx.machine.capacity_bytes,
            stats=ctx.stats,
            engines=ctx.machine.engines,
            counter_cache_bytes=ctx.machine.counter_cache_bytes,
        )
        ctx.handles[self.handle] = controller
        return controller


@dataclass(frozen=True)
class HideStage(BusStage):
    """HIDE-style chunk-level address permutation (§7 baseline).

    Wraps :class:`repro.core.hide.HideController`: block addresses are
    remapped through a per-chunk random permutation and the chunk is
    re-shuffled (paying the block-move traffic) every
    ``repermute_interval`` accesses.  Addresses still leave the chip in
    plaintext — only the permutation hides anything.
    """

    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    repermute_interval: int = DEFAULT_REPERMUTE_INTERVAL

    name = "hide-permutation"
    handle = "hide"
    summary = "chunk-level address permutation with periodic re-shuffle"
    traits = frozenset({TRAIT_PERMUTED_ADDRESSES})
    stat_groups = ("hide",)

    def build(self, ctx: StageContext, downstream: object | None) -> object:
        """Build the permutation layer on top of the PCM memory system."""
        memory = self._require_memory(downstream, self.name)
        controller = HideController(
            memory,
            ctx.stats,
            ctx.rng.fork("hide"),
            chunk_bytes=self.chunk_bytes,
            repermute_interval=self.repermute_interval,
        )
        ctx.handles[self.handle] = controller
        return controller
