"""CLI helpers for the scheme registry: the shared ``--list-schemes`` flag.

Every entry point that can run a simulation — ``python -m repro``, its
subcommands, and each ``repro.experiments.*`` module CLI — exposes
``--list-schemes`` through :func:`add_scheme_arguments`; the flag prints
the registry (name, stage stack, description) and exits, exactly like
``--help``.
"""

from __future__ import annotations

import argparse

from repro.schemes.registry import available_schemes


def _trait_column(scheme) -> str:
    """A scheme's wire traits as a compact sorted CSV (``-`` when none)."""
    return ",".join(sorted(scheme.traits)) or "-"


def format_scheme_list() -> str:
    """The registry as an aligned ``name  stack  traits  description`` listing."""
    schemes = available_schemes()
    name_width = max(len(scheme.name) for scheme in schemes)
    stack_width = max(len(scheme.stack_summary()) for scheme in schemes)
    trait_width = max(len(_trait_column(scheme)) for scheme in schemes)
    lines = ["protection schemes (stage stacks are top -> bottom):"]
    for scheme in schemes:
        lines.append(
            f"  {scheme.name:<{name_width}}  "
            f"{scheme.stack_summary():<{stack_width}}  "
            f"{_trait_column(scheme):<{trait_width}}  {scheme.description}"
        )
    return "\n".join(lines)


class ListSchemesAction(argparse.Action):
    """``--list-schemes``: print the registry and exit (like ``--help``)."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "list registered protection schemes and exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        """Print the scheme listing and terminate argument parsing."""
        print(format_scheme_list())
        parser.exit()


def add_scheme_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--list-schemes`` flag to a CLI parser."""
    parser.add_argument("--list-schemes", action=ListSchemesAction)
