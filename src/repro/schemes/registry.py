"""The protection-scheme registry: name -> declarative stage stack.

Every system the evaluation compares — and every hybrid a future ablation
might want — is a :class:`ProtectionScheme`: a registered name, a one-line
description, and a top-down stack of :class:`~repro.schemes.stages.BusStage`
descriptors.  :func:`repro.system.builder.build_system`, the experiment
modules and the CLIs all resolve schemes through :func:`get_scheme`, so a
new variant is a ~20-line registration, not a new branch in the builder::

    from repro.schemes import ProtectionScheme, register
    from repro.schemes.stages import EncryptionStage, HideStage, PcmChannelStage

    register(ProtectionScheme(
        name="my_hybrid",
        description="HIDE permutation under encryption at rest",
        stages=(EncryptionStage(), HideStage(), PcmChannelStage()),
    ))

Lookups accept a scheme name, a :class:`~repro.system.config.ProtectionLevel`
member, or an already-resolved scheme; an unknown name raises
:class:`~repro.errors.ConfigurationError` with a close-match suggestion.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.schemes.stages import BusStage

if TYPE_CHECKING:  # runtime import is deferred: repro.system imports us
    from repro.system.config import ProtectionLevel


@dataclass(frozen=True)
class ProtectionScheme:
    """One registered protection scheme: name, stage stack, metadata."""

    name: str
    description: str
    stages: tuple[BusStage, ...]

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ConfigurationError(
                f"scheme name {self.name!r} must be a non-empty identifier"
            )
        if not self.stages:
            raise ConfigurationError(f"scheme {self.name!r} has no stages")
        if not self.stages[-1].terminal:
            raise ConfigurationError(
                f"scheme {self.name!r} must end in a terminal backend stage"
            )
        if any(stage.terminal for stage in self.stages[:-1]):
            raise ConfigurationError(
                f"scheme {self.name!r} has a terminal stage above the bottom"
            )

    @property
    def traits(self) -> frozenset[str]:
        """Union of every stage's wire-visibility flags."""
        combined: set[str] = set()
        for stage in self.stages:
            combined |= stage.traits
        return frozenset(combined)

    @property
    def stat_groups(self) -> tuple[str, ...]:
        """Stat-group patterns bound by the stack, top-down, de-duplicated."""
        seen: list[str] = []
        for stage in self.stages:
            for pattern in stage.stat_groups:
                if pattern not in seen:
                    seen.append(pattern)
        return tuple(seen)

    def stack_summary(self) -> str:
        """The stage stack as a ``top -> bottom`` arrow chain."""
        return " -> ".join(stage.name for stage in self.stages)

    def to_jsonable(self) -> dict:
        """The scheme's wire-format description (what ``GET /schemes`` serves).

        Declarative metadata only — name, stage stack, wire traits, stat
        groups — so a remote client can enumerate valid ``level`` values
        and reason about what each one leaks without importing the stage
        classes.
        """
        return {
            "name": self.name,
            "description": self.description,
            "stages": [stage.name for stage in self.stages],
            "traits": sorted(self.traits),
            "stat_groups": list(self.stat_groups),
        }

    def stat_sum(self, stats: dict[str, float], key: str) -> float:
        """Sum the ``<group>.<key>`` counters bound by this scheme's stages.

        ``stats`` is a flattened :meth:`StatRegistry.as_dict` mapping; only
        groups matching one of the scheme's :attr:`stat_groups` patterns
        contribute, so e.g. a core-side counter that happens to share a leaf
        name never pollutes a memory-side total.
        """
        total = 0.0
        for stat_key, value in stats.items():
            group, _, leaf = stat_key.partition(".")
            if leaf == key and any(
                fnmatchcase(group, pattern) for pattern in self.stat_groups
            ):
                total += value
        return total


_REGISTRY: dict[str, ProtectionScheme] = {}


def register(scheme: ProtectionScheme, replace: bool = False) -> ProtectionScheme:
    """Add a scheme to the registry; duplicate names raise unless ``replace``."""
    if not replace and scheme.name in _REGISTRY:
        raise ConfigurationError(f"scheme {scheme.name!r} is already registered")
    _REGISTRY[scheme.name] = scheme
    return scheme


def unregister(name: str) -> None:
    """Remove a scheme by name (no-op when absent; mainly for tests)."""
    _REGISTRY.pop(name, None)


def scheme_names() -> list[str]:
    """Registered scheme names in registration order."""
    return list(_REGISTRY)


def available_schemes() -> list[ProtectionScheme]:
    """Every registered scheme, in registration order."""
    return list(_REGISTRY.values())


def get_scheme(name: str) -> ProtectionScheme:
    """Look a scheme up by name; unknown names get a close-match hint."""
    try:
        return _REGISTRY[name]
    except KeyError:
        suggestion = difflib.get_close_matches(name, _REGISTRY, n=1)
        hint = f"; did you mean {suggestion[0]!r}?" if suggestion else ""
        raise ConfigurationError(
            f"unknown protection scheme {name!r}{hint} "
            f"(registered: {', '.join(_REGISTRY)})"
        ) from None


def resolve_scheme(
    scheme: "ProtectionScheme | ProtectionLevel | str",
) -> ProtectionScheme:
    """Normalize any scheme designator to a registered scheme.

    Accepts a :class:`ProtectionScheme` (returned as-is), a
    :class:`ProtectionLevel` member (resolved by its value), or a registry
    name string.
    """
    if isinstance(scheme, ProtectionScheme):
        return scheme
    return get_scheme(scheme_name_of(scheme))


def scheme_name_of(scheme: "ProtectionScheme | ProtectionLevel | str") -> str:
    """The registry name of any scheme designator (without resolving it)."""
    from repro.system.config import ProtectionLevel

    if isinstance(scheme, ProtectionScheme):
        return scheme.name
    if isinstance(scheme, ProtectionLevel):
        return scheme.value
    if isinstance(scheme, str):
        return scheme
    raise ConfigurationError(
        f"cannot name a scheme from {type(scheme).__name__}"
    )


def level_for(name: str) -> "ProtectionLevel | None":
    """The :class:`ProtectionLevel` member for a scheme name, if one exists.

    Registry-only schemes (hybrids, test registrations) have no enum
    member; callers that need one fall back to the raw name.
    """
    from repro.system.config import ProtectionLevel

    try:
        return ProtectionLevel(name)
    except ValueError:
        return None
