"""Keyed MACs over bus messages.

The paper considers two constructions (§3.5):

* **encrypt-then-MAC** — MAC over the *ciphertext* message
  ``alpha = H(M)`` where ``M = E_K(r|a|D)``.  Secure and conventional, but
  the MAC computation serializes behind encryption.
* **encrypt-and-MAC** — MAC over the *plaintext components and the counter*
  ``beta = H(r|a|c)``, computable before (and overlapped with) encryption
  because ``r``, ``a`` and the counter ``c`` are all known early.

Both are implemented with an HMAC-style keyed wrapper so the hash is keyed
by the session key (the paper keeps the MAC function abstract — "MD5 in our
implementation" — and relies on the attacker never knowing the plaintext
inputs; keying it costs nothing functionally and keeps the construction
honest).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1
from repro.errors import CryptoError

_BLOCK = 64

HashFunction = Callable[[bytes], bytes]

HASHES: dict[str, HashFunction] = {"md5": md5, "sha1": sha1}


def hmac(key: bytes, message: bytes, hash_name: str = "md5") -> bytes:
    """HMAC(key, message) over the named hash (RFC 2104 construction)."""
    try:
        hash_function = HASHES[hash_name]
    except KeyError:
        raise CryptoError(f"unknown hash {hash_name!r}; use one of {sorted(HASHES)}")
    if len(key) > _BLOCK:
        key = hash_function(key)
    key = key.ljust(_BLOCK, b"\x00")
    inner = hash_function(bytes(k ^ 0x36 for k in key) + message)
    return hash_function(bytes(k ^ 0x5C for k in key) + inner)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two tags without early exit (hygiene, not a timing model)."""
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0


def encode_request_fields(request_type: int, address: int, counter: int) -> bytes:
    """Canonical byte encoding of (r, a, c) for the encrypt-and-MAC tag."""
    if request_type < 0 or address < 0 or counter < 0:
        raise CryptoError("MAC fields must be non-negative")
    return (
        request_type.to_bytes(1, "big")
        + address.to_bytes(8, "big")
        + counter.to_bytes(8, "big")
    )


def encrypt_and_mac_tag(
    key: bytes,
    request_type: int,
    address: int,
    counter: int,
    hash_name: str = "md5",
) -> bytes:
    """``beta = H(r|a|c)`` — computable before encryption completes."""
    return hmac(key, encode_request_fields(request_type, address, counter), hash_name)


def encrypt_then_mac_tag(key: bytes, ciphertext: bytes, hash_name: str = "md5") -> bytes:
    """``alpha = H(M)`` over the encrypted message — serializes after
    encryption."""
    return hmac(key, ciphertext, hash_name)
