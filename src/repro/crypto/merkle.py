"""Merkle tree integrity verification over memory blocks.

The baseline secure processor the paper builds on verifies memory integrity
with a Merkle tree (Rogers et al., MICRO 2007): leaves are hashes of
(counter, data) per block, internal nodes hash their children, and the root
lives on-chip where it cannot be tampered with.  ObfusMem relies on this tree
to eventually detect tampering of *data* written to memory (Observation 4),
while its bus MAC detects command/address tampering immediately.

This implementation keeps the whole tree addressable so tests and the attack
harness can tamper with arbitrary nodes and verify detection, and counts
hash invocations so the timing model can charge for them.
"""

from __future__ import annotations

from repro.crypto.sha1 import sha1
from repro.errors import ConfigurationError, IntegrityError


class MerkleTree:
    """Fixed-arity Merkle tree over ``num_blocks`` leaves.

    Parameters
    ----------
    num_blocks:
        Number of protected memory blocks (leaves).  Rounded up internally
        to a full tree.
    arity:
        Children per internal node.  Real designs use 4–16 to shorten the
        tree; the default of 8 matches a 64-byte node of eight 8-byte MACs.
    """

    def __init__(self, num_blocks: int, arity: int = 8):
        if num_blocks < 1:
            raise ConfigurationError("Merkle tree needs at least one block")
        if arity < 2:
            raise ConfigurationError("Merkle tree arity must be >= 2")
        self.arity = arity
        self.num_blocks = num_blocks
        # Round leaf count up to a power of arity for a complete tree.
        leaves = 1
        levels = 0
        while leaves < num_blocks:
            leaves *= arity
            levels += 1
        self.num_leaves = leaves
        self.num_levels = levels + 1  # including the leaf level
        # levels[0] = leaf hashes ... levels[-1] = [root]
        empty = sha1(b"repro-merkle-empty")
        self._levels: list[list[bytes]] = []
        size = leaves
        level_hashes = [empty] * size
        self._levels.append(level_hashes)
        while size > 1:
            size //= arity
            parents = []
            for i in range(size):
                children = self._levels[-1][i * arity : (i + 1) * arity]
                parents.append(sha1(b"".join(children)))
            self._levels.append(parents)
        self.hash_count = leaves + sum(len(lvl) for lvl in self._levels[1:])

    @property
    def root(self) -> bytes:
        """On-chip root hash; assumed tamper-proof."""
        return self._levels[-1][0]

    def _check_index(self, block_index: int) -> None:
        if not 0 <= block_index < self.num_blocks:
            raise ConfigurationError(
                f"block index {block_index} out of range [0, {self.num_blocks})"
            )

    def update(self, block_index: int, block_payload: bytes) -> int:
        """Recompute the path from leaf to root after a block write.

        Returns the number of hash computations performed, which the secure
        memory controller charges to its timing model.
        """
        self._check_index(block_index)
        self._levels[0][block_index] = sha1(block_payload)
        hashes = 1
        index = block_index
        for level in range(1, self.num_levels):
            index //= self.arity
            start = index * self.arity
            children = self._levels[level - 1][start : start + self.arity]
            self._levels[level][index] = sha1(b"".join(children))
            hashes += 1
        return hashes

    def verify(self, block_index: int, block_payload: bytes) -> int:
        """Verify a block against the root; raises on mismatch.

        Returns the number of hash computations.  The verification recomputes
        the leaf hash and walks up comparing against stored parents, exactly
        what a hardware verification unit does when a block is fetched.
        """
        self._check_index(block_index)
        computed = sha1(block_payload)
        hashes = 1
        if computed != self._levels[0][block_index]:
            raise IntegrityError(f"Merkle leaf mismatch at block {block_index}")
        index = block_index
        for level in range(1, self.num_levels):
            index //= self.arity
            start = index * self.arity
            children = self._levels[level - 1][start : start + self.arity]
            parent = sha1(b"".join(children))
            hashes += 1
            if parent != self._levels[level][index]:
                raise IntegrityError(
                    f"Merkle internal-node mismatch at level {level}, index {index}"
                )
        return hashes

    def tamper_leaf(self, block_index: int, new_hash: bytes) -> None:
        """Deliberately corrupt a stored leaf hash (attack harness hook)."""
        self._check_index(block_index)
        self._levels[0][block_index] = new_hash

    def tamper_node(self, level: int, index: int, new_hash: bytes) -> None:
        """Deliberately corrupt an internal node (attack harness hook).

        The root (``level == num_levels - 1``) is on-chip and cannot be
        tampered with; attempting to do so raises.
        """
        if level == self.num_levels - 1:
            raise ConfigurationError("the Merkle root is on-chip and untamperable")
        if not 0 <= level < self.num_levels:
            raise ConfigurationError(f"level {level} out of range")
        if not 0 <= index < len(self._levels[level]):
            raise ConfigurationError(f"index {index} out of range at level {level}")
        self._levels[level][index] = new_hash
