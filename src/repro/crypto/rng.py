"""Deterministic randomness for reproducible simulations.

Everything stochastic in the library — workload generation, Path ORAM leaf
remapping, key generation for the trust protocols — draws from a
:class:`DeterministicRng` seeded explicitly by the caller, so every
experiment is exactly reproducible.  The implementation wraps
:class:`random.Random` (Mersenne Twister) but narrows the interface to the
operations the library needs and adds byte/prime helpers.
"""

from __future__ import annotations

import random

from repro.errors import CryptoError


class DeterministicRng:
    """Seeded random source with helpers for crypto-sized integers.

    This is *simulation* randomness, not security randomness: the library is
    a simulator and never protects real data.
    """

    def __init__(self, seed: int):
        self._random = random.Random(seed)
        self.seed = seed

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def randrange(self, stop: int) -> int:
        """Uniform integer in [0, stop)."""
        return self._random.randrange(stop)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normally distributed float with the given mean and sigma."""
        return self._random.gauss(mu, sigma)

    def choice(self, sequence):
        """Uniformly choose one element of a sequence."""
        return self._random.choice(sequence)

    def shuffle(self, sequence) -> None:
        """Shuffle a sequence in place."""
        self._random.shuffle(sequence)

    def sample(self, population, k: int):
        """Sample k distinct elements from a population."""
        return self._random.sample(population, k)

    def token_bytes(self, n: int) -> bytes:
        """``n`` uniformly random bytes."""
        if n < 0:
            raise CryptoError("cannot draw a negative number of bytes")
        return self._random.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def getrandbits(self, bits: int) -> int:
        """Uniform integer with the requested number of bits."""
        return self._random.getrandbits(bits)

    def getstate(self) -> tuple:
        """The full generator state, as :meth:`random.Random.getstate` gives it.

        The returned tuple is opaque but serializable (ints and tuples all
        the way down), so simulation checkpoints can carry it across
        processes.  Feed it back through :meth:`setstate` to resume the
        stream exactly where it left off.
        """
        return self._random.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore a state captured by :meth:`getstate` (same stream after)."""
        self._random.setstate(state)

    # Checkpoint-protocol aliases: every snapshottable component exposes
    # snapshot()/restore(); for the rng they are the state tuple itself.
    def snapshot(self) -> tuple:
        """Checkpoint-protocol alias for :meth:`getstate`."""
        return self.getstate()

    def restore(self, state: tuple) -> None:
        """Checkpoint-protocol alias for :meth:`setstate`."""
        self.setstate(state)

    def fork(self, label: str) -> "DeterministicRng":
        """Independent child stream derived from this seed and a label.

        Forking lets subsystems (trace generator, ORAM, key exchange) consume
        randomness without perturbing each other's streams.  The derivation
        uses a *stable* hash (SHA-1 of seed:label) — Python's built-in
        ``hash()`` is salted per process, which would silently break
        cross-process reproducibility.
        """
        from repro.crypto.sha1 import sha1

        digest = sha1(f"{self.seed}:{label}".encode())
        child_seed = int.from_bytes(digest[:8], "big")
        return DeterministicRng(child_seed)


def _is_probable_prime(candidate: int, rng: DeterministicRng, rounds: int = 24) -> bool:
    """Miller–Rabin probabilistic primality test."""
    if candidate < 2:
        return False
    small_primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
    for p in small_primes:
        if candidate % p == 0:
            return candidate == p
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randint(2, candidate - 2)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: DeterministicRng) -> int:
    """Generate a probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError("refusing to generate primes under 8 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


def generate_safe_prime(bits: int, rng: DeterministicRng) -> int:
    """Generate a safe prime p (p = 2q + 1 with q prime) of ``bits`` bits.

    Safe primes make the Diffie–Hellman subgroup structure simple; the key
    sizes used in the simulator are small enough that this stays fast.
    """
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if _is_probable_prime(p, rng):
            return p
