"""Counter (CTR) mode on top of AES-128.

ObfusMem uses counter-mode encryption for both data at rest in memory and for
everything transmitted on the memory bus (commands, addresses and data).  The
key property exploited by the design is that pads can be *pre-generated*
because future counter values are known ahead of time; only a bitwise XOR is
left on the critical path.

Two interfaces are provided:

* :class:`CtrPadGenerator` — the hardware-like view: a monotonically
  increasing 64-bit counter producing one 128-bit pad per increment, with
  explicit synchronisation semantics (the processor-side and memory-side
  generators must consume pads in lock step, mirroring Figure 3 of the
  paper).
* :func:`ctr_encrypt` / :func:`ctr_decrypt` — the conventional whole-message
  view used by the memory-encryption substrate, where the IV encodes page id,
  page offset, and major/minor counters.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.errors import CryptoError


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise CryptoError(f"xor_bytes length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def make_iv(nonce: int, counter: int) -> bytes:
    """Pack a 64-bit nonce and 64-bit counter into a 16-byte IV."""
    if not 0 <= nonce < 1 << 64:
        raise CryptoError("nonce must fit in 64 bits")
    if not 0 <= counter < 1 << 64:
        raise CryptoError("counter must fit in 64 bits")
    return nonce.to_bytes(8, "big") + counter.to_bytes(8, "big")


class CtrPadGenerator:
    """Streaming pad generator with an explicit 64-bit session counter.

    Mirrors the per-channel AES engine of Figure 3: each call to
    :meth:`next_pads` consumes ``n`` consecutive counter values and returns
    ``n`` 128-bit pads.  The counter is exposed so the processor- and
    memory-side generators can be checked for synchronisation, and so the
    encrypt-and-MAC scheme can bind the counter value into the MAC.
    """

    def __init__(self, key: bytes, nonce: int = 0, counter: int = 0):
        self._cipher = AES128(key)
        self._nonce = nonce
        self._counter = counter

    @property
    def counter(self) -> int:
        """Next counter value that will be consumed."""
        return self._counter

    @property
    def nonce(self) -> int:
        return self._nonce

    def peek_pads(self, n: int) -> list[bytes]:
        """Generate ``n`` pads without advancing the counter.

        This models pad *pre-generation*: the hardware can compute pads for
        ``Ctr .. Ctr+n-1`` ahead of the request arriving.
        """
        if n < 1:
            raise CryptoError("must request at least one pad")
        return [
            self._cipher.encrypt_block(make_iv(self._nonce, self._counter + i))
            for i in range(n)
        ]

    def next_pads(self, n: int) -> list[bytes]:
        """Consume ``n`` counter values and return their pads."""
        pads = self.peek_pads(n)
        self._counter += n
        return pads

    def advance(self, n: int) -> None:
        """Advance the counter without producing pads (drop/skip)."""
        if n < 0:
            raise CryptoError("cannot rewind a CTR counter")
        self._counter += n

    def fork(self) -> "CtrPadGenerator":
        """Copy of this generator with the same key, nonce and counter."""
        return CtrPadGenerator(self._cipher.key, self._nonce, self._counter)


def ctr_keystream(cipher: AES128, iv: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes starting at IV, incrementing the
    low 64 bits of the IV per block."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"IV must be {BLOCK_SIZE} bytes")
    nonce = int.from_bytes(iv[:8], "big")
    counter = int.from_bytes(iv[8:], "big")
    blocks = []
    remaining = length
    while remaining > 0:
        pad = cipher.encrypt_block(make_iv(nonce, counter & ((1 << 64) - 1)))
        blocks.append(pad[: min(remaining, BLOCK_SIZE)])
        counter += 1
        remaining -= BLOCK_SIZE
    return b"".join(blocks)


def ctr_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """Encrypt arbitrary-length plaintext in CTR mode."""
    cipher = AES128(key)
    return xor_bytes(plaintext, ctr_keystream(cipher, iv, len(plaintext)))


def ctr_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Decrypt CTR-mode ciphertext (CTR is an involution)."""
    return ctr_encrypt(key, iv, ciphertext)
