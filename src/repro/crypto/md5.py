"""MD5 message digest, implemented from RFC 1321.

The paper authenticates processor–memory communication with a lightweight MAC
and assumes a 64-stage pipelined MD5 unit.  MD5 is of course broken for
collision resistance, but the paper argues (Observation 4 / §3.5) that a
lightweight function suffices here because the attacker never sees the
plaintext inputs of the MAC.  We implement it faithfully for functional
fidelity; the keyed-MAC construction lives in :mod:`repro.crypto.mac`.
"""

from __future__ import annotations

import math
import struct

_S = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)

_K = [int(abs(math.sin(i + 1)) * 2**32) & 0xFFFFFFFF for i in range(64)]

_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _left_rotate(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def _pad(message: bytes) -> bytes:
    length_bits = (len(message) * 8) & 0xFFFFFFFFFFFFFFFF
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    return padded + struct.pack("<Q", length_bits)


def md5(message: bytes) -> bytes:
    """Return the 16-byte MD5 digest of ``message``."""
    a0, b0, c0, d0 = _INIT
    padded = _pad(message)
    for chunk_start in range(0, len(padded), 64):
        chunk = padded[chunk_start : chunk_start + 64]
        m = struct.unpack("<16I", chunk)
        a, b, c, d = a0, b0, c0, d0
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | ~d)
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & 0xFFFFFFFF
            a, d, c = d, c, b
            b = (b + _left_rotate(f, _S[i])) & 0xFFFFFFFF
        a0 = (a0 + a) & 0xFFFFFFFF
        b0 = (b0 + b) & 0xFFFFFFFF
        c0 = (c0 + c) & 0xFFFFFFFF
        d0 = (d0 + d) & 0xFFFFFFFF
    return struct.pack("<4I", a0, b0, c0, d0)


def md5_hex(message: bytes) -> str:
    """Hex form of :func:`md5`, convenient for tests and logging."""
    return md5(message).hex()
