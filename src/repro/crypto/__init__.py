"""Cryptographic substrate: every primitive ObfusMem depends on, from scratch.

Contents
--------
- :mod:`repro.crypto.aes` — AES-128 block cipher (FIPS-197).
- :mod:`repro.crypto.ctr` — counter mode, streaming pad generation.
- :mod:`repro.crypto.md5` / :mod:`repro.crypto.sha1` — MAC hashes.
- :mod:`repro.crypto.mac` — encrypt-and-MAC / encrypt-then-MAC tags.
- :mod:`repro.crypto.merkle` — memory integrity tree.
- :mod:`repro.crypto.diffie_hellman` — session-key establishment.
- :mod:`repro.crypto.rsa` — manufacturer-burned component identities.
- :mod:`repro.crypto.rng` — deterministic, forkable randomness.
"""

from repro.crypto.aes import AES128, BLOCK_SIZE, KEY_SIZE
from repro.crypto.ctr import (
    CtrPadGenerator,
    ctr_decrypt,
    ctr_encrypt,
    make_iv,
    xor_bytes,
)
from repro.crypto.diffie_hellman import DhGroup, DhParty, establish_session_key
from repro.crypto.mac import (
    constant_time_equal,
    encrypt_and_mac_tag,
    encrypt_then_mac_tag,
    hmac,
)
from repro.crypto.md5 import md5, md5_hex
from repro.crypto.merkle import MerkleTree
from repro.crypto.rng import DeterministicRng, generate_prime, generate_safe_prime
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, verify
from repro.crypto.sha1 import sha1, sha1_hex

__all__ = [
    "AES128",
    "BLOCK_SIZE",
    "KEY_SIZE",
    "CtrPadGenerator",
    "ctr_decrypt",
    "ctr_encrypt",
    "make_iv",
    "xor_bytes",
    "DhGroup",
    "DhParty",
    "establish_session_key",
    "constant_time_equal",
    "encrypt_and_mac_tag",
    "encrypt_then_mac_tag",
    "hmac",
    "md5",
    "md5_hex",
    "MerkleTree",
    "DeterministicRng",
    "generate_prime",
    "generate_safe_prime",
    "RsaKeyPair",
    "RsaPublicKey",
    "verify",
    "sha1",
    "sha1_hex",
]
