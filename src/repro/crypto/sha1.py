"""SHA-1 implemented from RFC 3174.

Provided as the alternative MAC hash the paper mentions alongside MD5
(§3.5), and used by the trust-bootstrapping layer to hash attestation
measurements.
"""

from __future__ import annotations

import struct


def _left_rotate(value: int, amount: int) -> int:
    value &= 0xFFFFFFFF
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def sha1(message: bytes) -> bytes:
    """Return the 20-byte SHA-1 digest of ``message``."""
    h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    length_bits = (len(message) * 8) & 0xFFFFFFFFFFFFFFFF
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack(">Q", length_bits)
    for chunk_start in range(0, len(padded), 64):
        w = list(struct.unpack(">16I", padded[chunk_start : chunk_start + 64]))
        for i in range(16, 80):
            w.append(_left_rotate(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
        a, b, c, d, e = h
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_left_rotate(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF
            e, d, c, b, a = d, c, _left_rotate(b, 30), a, temp
        h = [(x + y) & 0xFFFFFFFF for x, y in zip(h, (a, b, c, d, e))]
    return struct.pack(">5I", *h)


def sha1_hex(message: bytes) -> str:
    """Hex form of :func:`sha1`."""
    return sha1(message).hex()
