"""Minimal RSA for manufacturer-burned component identities.

The ObfusMem trust architecture (paper §3.1) requires each processor and
memory chip to carry a manufacturer-generated public/private key pair burned
into the silicon, used to (a) sign attestation measurements and (b)
authenticate the Diffie–Hellman exchange that derives the bus session key.

This module provides textbook RSA with a hash-then-sign signature scheme
(SHA-1 based full-domain-style padding).  Key sizes default small for
simulation speed; this simulates hardware identity, it does not protect real
secrets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRng, generate_prime
from repro.crypto.sha1 import sha1
from repro.errors import CryptoError

DEFAULT_KEY_BITS = 512
_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key: modulus and public exponent."""

    modulus: int
    exponent: int = _PUBLIC_EXPONENT

    def fingerprint(self) -> bytes:
        """Stable 20-byte identifier of this key, used in attestation."""
        byte_length = (self.modulus.bit_length() + 7) // 8
        return sha1(self.modulus.to_bytes(byte_length, "big"))


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA key pair; the private exponent is kept inside the chip model."""

    public: RsaPublicKey
    private_exponent: int

    @classmethod
    def generate(cls, rng: DeterministicRng, bits: int = DEFAULT_KEY_BITS) -> "RsaKeyPair":
        if bits < 64:
            raise CryptoError("RSA modulus must be at least 64 bits")
        while True:
            p = generate_prime(bits // 2, rng)
            q = generate_prime(bits - bits // 2, rng)
            if p == q:
                continue
            modulus = p * q
            phi = (p - 1) * (q - 1)
            try:
                d = pow(_PUBLIC_EXPONENT, -1, phi)
            except ValueError:
                continue
            return cls(RsaPublicKey(modulus), d)

    def sign(self, message: bytes) -> int:
        """Sign SHA-1(message) with the private exponent."""
        digest = _encode_digest(message, self.public.modulus)
        return pow(digest, self.private_exponent, self.public.modulus)


def _encode_digest(message: bytes, modulus: int) -> int:
    """Deterministically expand SHA-1(message) to nearly the modulus size."""
    digest = sha1(message)
    expanded = digest
    target_bytes = max((modulus.bit_length() - 8) // 8, len(digest))
    counter = 0
    while len(expanded) < target_bytes:
        counter_bytes = counter.to_bytes(4, "big")
        expanded += sha1(digest + counter_bytes)
        counter += 1
    value = int.from_bytes(expanded[:target_bytes], "big")
    return value % modulus


def verify(public_key: RsaPublicKey, message: bytes, signature: int) -> bool:
    """Check an RSA signature; returns False on any mismatch."""
    if not 0 <= signature < public_key.modulus:
        return False
    recovered = pow(signature, public_key.exponent, public_key.modulus)
    return recovered == _encode_digest(message, public_key.modulus)
