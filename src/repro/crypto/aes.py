"""AES-128 block cipher implemented from scratch (FIPS-197).

This is a functional reference implementation used by the ObfusMem
reproduction for counter-mode encryption of bus packets and of data at rest.
It favours clarity over raw speed; the hot path of the simulator uses the
table-driven ``encrypt_block`` below, which is fast enough for the traffic
volumes the experiments generate (the *timing* of the hardware AES unit is
modelled separately in :mod:`repro.core.engines`).

Only AES-128 is provided because the paper's synthesized unit is a pipelined
AES-128 core producing one 128-bit result per cycle.
"""

from __future__ import annotations

from repro.errors import CryptoError

BLOCK_SIZE = 16
KEY_SIZE = 16
_NUM_ROUNDS = 10

# The AES S-box (FIPS-197 figure 7), generated once from the finite-field
# definition below and kept as a literal-free table so the construction is
# auditable.


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); 0 maps to 0 by convention."""
    if a == 0:
        return 0
    # a^(2^8 - 2) == a^-1 in GF(2^8).
    result = 1
    exponent = 254
    base = a
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, base)
        base = _gf_mul(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the AES S-box and its inverse from first principles."""
    sbox = bytearray(256)
    for i in range(256):
        inv = _gf_inverse(i)
        value = inv
        for shift in (1, 2, 3, 4):
            value ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[i] = value ^ 0x63
    inverse = bytearray(256)
    for i, s in enumerate(sbox):
        inverse[s] = i
    return bytes(sbox), bytes(inverse)


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01]
while len(_RCON) < 10:
    _RCON.append(_xtime(_RCON[-1]))


def expand_key(key: bytes) -> list[list[int]]:
    """Expand a 16-byte key into 11 round keys of 16 bytes each.

    Round keys are returned as lists of 16 ints to avoid repeated bytes
    slicing during encryption.
    """
    if len(key) != KEY_SIZE:
        raise CryptoError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 4 * (_NUM_ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    round_keys = []
    for round_index in range(_NUM_ROUNDS + 1):
        round_key: list[int] = []
        for word in words[4 * round_index : 4 * round_index + 4]:
            round_key.extend(word)
        round_keys.append(round_key)
    return round_keys


def _sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


# State is stored column-major as in FIPS-197: byte index = 4*col + row is
# NOT used here; we keep the flat input order (s[r][c] = state[r + 4c]).

_SHIFT_ROWS_MAP = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT_ROWS_MAP = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3]


def _shift_rows(state: list[int]) -> list[int]:
    return [state[i] for i in _SHIFT_ROWS_MAP]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [state[i] for i in _INV_SHIFT_ROWS_MAP]


def _mix_single_column(col: list[int]) -> list[int]:
    a0, a1, a2, a3 = col
    return [
        _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3,
        a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3,
        a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3],
        _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3],
    ]


def _inv_mix_single_column(col: list[int]) -> list[int]:
    a0, a1, a2, a3 = col
    return [
        _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3],
        _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3],
        _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3],
        _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3],
    ]


def _make_mul_table(factor: int) -> bytes:
    return bytes(_gf_mul(i, factor) for i in range(256))


_MUL2 = _make_mul_table(2)
_MUL3 = _make_mul_table(3)
_MUL9 = _make_mul_table(9)
_MUL11 = _make_mul_table(11)
_MUL13 = _make_mul_table(13)
_MUL14 = _make_mul_table(14)


def _mix_columns(state: list[int]) -> list[int]:
    out: list[int] = []
    for col in range(4):
        out.extend(_mix_single_column(state[4 * col : 4 * col + 4]))
    return out


def _inv_mix_columns(state: list[int]) -> list[int]:
    out: list[int] = []
    for col in range(4):
        out.extend(_inv_mix_single_column(state[4 * col : 4 * col + 4]))
    return out


def _add_round_key(state: list[int], round_key: list[int]) -> list[int]:
    return [s ^ k for s, k in zip(state, round_key)]


class AES128:
    """AES-128 with a precomputed key schedule.

    >>> cipher = AES128(bytes(range(16)))
    >>> block = cipher.encrypt_block(b"\\x00" * 16)
    >>> cipher.decrypt_block(block) == b"\\x00" * 16
    True
    """

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)
        self.key = bytes(key)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block (FIPS-197 cipher)."""
        if len(plaintext) != BLOCK_SIZE:
            raise CryptoError(
                f"AES block must be {BLOCK_SIZE} bytes, got {len(plaintext)}"
            )
        state = _add_round_key(list(plaintext), self._round_keys[0])
        for round_index in range(1, _NUM_ROUNDS):
            _sub_bytes(state)
            state = _shift_rows(state)
            state = _mix_columns(state)
            state = _add_round_key(state, self._round_keys[round_index])
        _sub_bytes(state)
        state = _shift_rows(state)
        state = _add_round_key(state, self._round_keys[_NUM_ROUNDS])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block (FIPS-197 inverse cipher)."""
        if len(ciphertext) != BLOCK_SIZE:
            raise CryptoError(
                f"AES block must be {BLOCK_SIZE} bytes, got {len(ciphertext)}"
            )
        state = _add_round_key(list(ciphertext), self._round_keys[_NUM_ROUNDS])
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        for round_index in range(_NUM_ROUNDS - 1, 0, -1):
            state = _add_round_key(state, self._round_keys[round_index])
            state = _inv_mix_columns(state)
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
        state = _add_round_key(state, self._round_keys[0])
        return bytes(state)
