"""Diffie–Hellman key exchange for session-key establishment.

At boot, the processor's ObfusMem controller runs a DH exchange with each
memory module's logic-layer controller to derive a per-channel *shared
session secret key* (paper §3.1).  The exchange is authenticated at a higher
layer by the trust architecture (RSA signatures over the DH public values),
implemented in :mod:`repro.core.trust`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRng, generate_safe_prime
from repro.crypto.sha1 import sha1
from repro.errors import CryptoError

# A fixed well-known group (RFC 3526 1536-bit MODP would be the realistic
# choice; for simulation speed we default to a smaller safe-prime group that
# callers may override).
DEFAULT_GROUP_BITS = 256


@dataclass(frozen=True)
class DhGroup:
    """A prime-order Diffie–Hellman group (safe prime ``p``, generator 2)."""

    prime: int
    generator: int = 2

    def __post_init__(self) -> None:
        if self.prime < 5 or self.prime % 2 == 0:
            raise CryptoError("DH prime must be an odd prime >= 5")
        if not 2 <= self.generator < self.prime:
            raise CryptoError("DH generator out of range")

    @classmethod
    def generate(cls, rng: DeterministicRng, bits: int = DEFAULT_GROUP_BITS) -> "DhGroup":
        return cls(prime=generate_safe_prime(bits, rng))


class DhParty:
    """One endpoint of a Diffie–Hellman exchange."""

    def __init__(self, group: DhGroup, rng: DeterministicRng):
        self.group = group
        # Private exponent in [2, p-2].
        self._private = rng.randint(2, group.prime - 2)
        self.public_value = pow(group.generator, self._private, group.prime)

    def shared_secret(self, peer_public_value: int) -> int:
        """Raw shared secret g^(ab) mod p."""
        if not 2 <= peer_public_value <= self.group.prime - 2:
            raise CryptoError("peer DH public value out of range")
        return pow(peer_public_value, self._private, self.group.prime)

    def session_key(self, peer_public_value: int) -> bytes:
        """Derive a 16-byte AES session key from the shared secret.

        The secret is hashed (SHA-1, truncated to 128 bits) so the key is
        uniformly distributed regardless of group structure.
        """
        secret = self.shared_secret(peer_public_value)
        byte_length = (self.group.prime.bit_length() + 7) // 8
        return sha1(secret.to_bytes(byte_length, "big"))[:16]


def establish_session_key(
    rng: DeterministicRng, group: DhGroup | None = None
) -> tuple[bytes, bytes]:
    """Run a complete two-party exchange; returns (key_a, key_b).

    Both keys are equal when the exchange is untampered — tests assert this,
    and the tamper-injection tests in :mod:`repro.analysis.attacks` assert
    the converse.
    """
    if group is None:
        group = DhGroup.generate(rng.fork("dh-group"))
    party_a = DhParty(group, rng.fork("dh-a"))
    party_b = DhParty(group, rng.fork("dh-b"))
    return (
        party_a.session_key(party_b.public_value),
        party_b.session_key(party_a.public_value),
    )
