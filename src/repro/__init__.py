"""ObfusMem reproduction: low-overhead memory access-pattern obfuscation.

A full-system reproduction of *ObfusMem: A Low-Overhead Access Obfuscation
for Trusted Memories* (Awad, Wang, Shands, Solihin -- ISCA 2017): an
event-driven PCM memory-system simulator, a from-scratch cryptographic
substrate, counter-mode memory encryption, a functional Path ORAM baseline,
the ObfusMem controller itself (timing and functional twins), the trust
architecture, an attack/leakage analysis harness, and experiment runners
regenerating every table and figure of the paper's evaluation.

Quick start::

    from repro.cpu import SPEC_PROFILES
    from repro.system import compare_levels, ProtectionLevel

    results = compare_levels(
        SPEC_PROFILES["bwaves"],
        [ProtectionLevel.UNPROTECTED, ProtectionLevel.OBFUSMEM_AUTH,
         ProtectionLevel.ORAM],
    )
"""

from repro.errors import (
    ConfigurationError,
    CounterDesyncError,
    CryptoError,
    IntegrityError,
    OramDeadlockError,
    OramError,
    ReproError,
    SimulationError,
    TraceError,
    TrustError,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "CounterDesyncError",
    "CryptoError",
    "IntegrityError",
    "OramDeadlockError",
    "OramError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "TrustError",
    "__version__",
]
