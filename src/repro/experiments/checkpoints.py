"""Persistent simulation checkpoints: warm-started sweeps and preemption.

The executor's :class:`~repro.experiments.executor.ResultCache` memoizes
*finished* runs.  This module memoizes *partial* ones: a
:class:`CheckpointStore` keeps frozen :class:`~repro.system.world.SimWorld`
blobs (see :class:`~repro.system.world.SimCheckpoint`) in the same
content-addressed cache directory, keyed by

* the spec's :meth:`~repro.experiments.executor.JobSpec.prefix_digest` —
  everything that shapes the simulated world *except* ``num_requests`` —
* the per-core request count the producing run was targeting, and
* the number of kernel events executed when the snapshot was taken.

Two consumers share the store:

* **Warm-started sweeps** — request-count sweeps of one configuration share
  a trace prefix, so a safe-prefix checkpoint saved by the ``n=1000`` job
  lets the ``n=4000`` job skip the first chunk of its simulation entirely:
  thaw, retarget onto the longer traces, run only the remainder.
  :func:`execute_with_checkpoints` packages that fork-or-cold decision, and
  :class:`~repro.experiments.executor.ParallelRunner` applies it to every
  sweep job when given a store.
* **Preemptible serving** — the worker pool checkpoints a long job when its
  deadline slice expires and requeues it; the next slice resumes from the
  stored blob instead of starting over (see :mod:`repro.serve.pool`).

Durability properties are inherited from
:class:`~repro.experiments.executor.JsonFileCache`: atomic write-then-rename,
damage degrading to a miss, and one shared LRU byte budget with the result
and trace entries — checkpoints are by far the largest entries, so a
byte-bounded directory naturally sheds the *oldest* checkpoints first and a
long-running service stays bounded-memory.  On top of that, :meth:`put`
prunes each (prefix, length) family to its deepest few snapshots so a long
job's periodic saves do not accumulate.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CheckpointError
from repro.experiments.executor import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    JobSpec,
    JsonFileCache,
)
from repro.system.simulator import RunResult
from repro.system.world import SimCheckpoint, SimWorld

#: Default kernel-event slice between periodic checkpoint saves.  A default
#: executor job (4000 requests) executes on the order of 1e5 events, so this
#: yields a handful of save points per job — enough to fork from, cheap
#: enough to never dominate the run.
DEFAULT_CHECKPOINT_INTERVAL_EVENTS = 50_000

#: How many snapshots :meth:`CheckpointStore.put` keeps per (prefix, length)
#: family — the deepest ones win, older save points are pruned.
KEEP_PER_FAMILY = 3

#: Entry file names carry the selection metadata — family prefix, target
#: request count, kernel-event depth — so the store can rank and prune
#: entries without opening a single payload.
_ENTRY_NAME = re.compile(r"^ckpt-[0-9a-f]{32}-(\d{9})-(\d{12})\.json$")


@dataclass(frozen=True)
class StoredCheckpoint:
    """One store entry: the frozen world plus its selection metadata."""

    checkpoint: SimCheckpoint
    #: Per-core request count of the run that saved this snapshot.
    num_requests: int
    path: Path


@dataclass(frozen=True)
class CheckpointedRun:
    """What :func:`execute_with_checkpoints` did for one spec."""

    result: RunResult
    #: Kernel events the resumed world had already executed at thaw time
    #: (0 for a cold start).
    forked_from_events: int
    #: Periodic snapshots persisted during this run.
    checkpoints_saved: int
    #: Kernel events this run actually executed (total minus forked).
    events_executed: int


class CheckpointStore(JsonFileCache):
    """Content-addressed persistent store of partial-simulation snapshots.

    Entries live beside result/trace entries (``ckpt-*.json``) and share
    their directory's LRU byte budget.  Reads verify the schema version and
    the *full* prefix digest (file names carry a truncation), and the
    checkpoint payload itself is SHA-256-verified on thaw — damage at any
    layer degrades to a cache miss.
    """

    def path_for(self, spec: JobSpec, events: int, num_requests: int) -> Path:
        """Entry path for one (spec family, target length, progress) point."""
        return self.directory / (
            f"ckpt-{spec.prefix_digest()[:32]}-"
            f"{int(num_requests):09d}-{int(events):012d}.json"
        )

    def put(self, spec: JobSpec, checkpoint: SimCheckpoint) -> Path | None:
        """Persist one snapshot taken while executing ``spec``.

        Finished worlds are refused (the result cache owns completed runs).
        After the write, the (prefix, length) family is pruned to its
        :data:`KEEP_PER_FAMILY` deepest snapshots.
        """
        if checkpoint.finished:
            raise CheckpointError("refusing to store a finished world")
        path = self.path_for(spec, checkpoint.events_executed, spec.num_requests)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "prefix_digest": spec.prefix_digest(),
            "num_requests": spec.num_requests,
            "checkpoint": checkpoint.to_jsonable(),
        }
        self.write_json(path, payload)
        self._prune_family(spec)
        return path

    def _family_index(self, spec: JobSpec) -> list[tuple[int, int, Path]]:
        """``(events, num_requests, path)`` per family entry, deepest first.

        Parsed from file names alone — no payload is opened.  The full
        prefix digest is still verified by :meth:`_load` before an entry
        is ever used, so a truncated-name collision costs one wasted read,
        never a wrong fork.
        """
        prefix32 = spec.prefix_digest()[:32]
        index = []
        for path in self.directory.glob(f"ckpt-{prefix32}-*.json"):
            match = _ENTRY_NAME.match(path.name)
            if match is None:
                continue
            index.append((int(match.group(2)), int(match.group(1)), path))
        index.sort(reverse=True)
        return index

    def _load(self, path: Path, prefix: str) -> StoredCheckpoint | None:
        """Decode one entry; None when damaged, stale or a digest collision."""
        payload = self.read_json(path)
        if payload is None or payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("prefix_digest") != prefix:
            return None  # truncated-name collision: a different family
        try:
            return StoredCheckpoint(
                checkpoint=SimCheckpoint.from_jsonable(payload["checkpoint"]),
                num_requests=int(payload["num_requests"]),
                path=path,
            )
        except (CheckpointError, KeyError, TypeError, ValueError):
            return None

    def candidates(self, spec: JobSpec) -> list[StoredCheckpoint]:
        """Every readable entry of ``spec``'s family, deepest first."""
        prefix = spec.prefix_digest()
        found = [
            entry
            for _events, _num_requests, path in self._family_index(spec)
            if (entry := self._load(path, prefix)) is not None
        ]
        found.sort(key=lambda entry: entry.checkpoint.events_executed, reverse=True)
        return found

    def deepest(self, spec: JobSpec) -> StoredCheckpoint | None:
        """The furthest-along snapshot that can seed ``spec``, if any.

        A snapshot is usable when it was saved targeting the *same* request
        count, or targeting a shorter one while still a safe prefix (every
        core mid-trace), in which case the thawed world is retargeted onto
        ``spec``'s longer traces.  The family *index* (file names) is
        scanned deepest-first and only plausible entries are decoded —
        typically exactly one payload read, however many snapshots the
        directory holds.
        """
        prefix = spec.prefix_digest()
        for events, num_requests, path in self._family_index(spec):
            if events <= 0 or num_requests > spec.num_requests:
                continue
            entry = self._load(path, prefix)
            if entry is None:
                continue
            if entry.num_requests == spec.num_requests:
                return entry
            if entry.checkpoint.safe_prefix:
                return entry
        return None

    def _prune_family(self, spec: JobSpec) -> None:
        """Keep only the deepest few snapshots of ``spec``'s family.

        Works off the file-name index alone, so a periodic save costs one
        write plus a directory listing — and unreadable (damaged) siblings
        are pruned right along with shallow ones instead of lingering.
        """
        matching = [
            (events, path)
            for events, num_requests, path in self._family_index(spec)
            if num_requests == spec.num_requests
        ]
        for _events, path in matching[KEEP_PER_FAMILY:]:
            path.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# Execution helpers


def build_world(spec: JobSpec) -> SimWorld:
    """A cold :class:`SimWorld` for one spec (traces via the trace cache)."""
    from repro.cpu.spec_profiles import SPEC_PROFILES
    from repro.experiments.trace_cache import traces_for_benchmark

    profile = SPEC_PROFILES[spec.benchmark]
    traces = traces_for_benchmark(
        spec.benchmark, spec.num_requests, spec.seed, cores=spec.cores
    )
    return SimWorld(
        traces, spec.level, machine=spec.machine, window=profile.window, seed=spec.seed
    )


def world_for_spec(
    spec: JobSpec, store: CheckpointStore | None
) -> tuple[SimWorld, int]:
    """A world positioned as far along ``spec`` as the store allows.

    Returns ``(world, forked_from_events)`` — 0 events when no usable
    snapshot existed and the world is cold.  Any failure to thaw or
    retarget a stored snapshot (damage, version skew, non-extending
    traces) deletes the offending entry and falls back to a cold start:
    checkpoints accelerate, they can never be required for correctness.
    """
    if store is None:
        return build_world(spec), 0
    entry = store.deepest(spec)
    if entry is None:
        return build_world(spec), 0
    try:
        world = entry.checkpoint.thaw()
        if entry.num_requests != spec.num_requests:
            from repro.experiments.trace_cache import traces_for_benchmark

            world.retarget(
                traces_for_benchmark(
                    spec.benchmark, spec.num_requests, spec.seed, cores=spec.cores
                )
            )
        return world, entry.checkpoint.events_executed
    except CheckpointError:
        entry.path.unlink(missing_ok=True)
        return build_world(spec), 0


def execute_with_checkpoints(
    spec: JobSpec,
    store: CheckpointStore | None,
    interval_events: int = DEFAULT_CHECKPOINT_INTERVAL_EVENTS,
    save_milestones: tuple[float, ...] | None = None,
) -> CheckpointedRun:
    """Run one spec warm-from-checkpoint, saving new snapshots on the way.

    The simulation executes in ``interval_events`` slices.  With the
    default ``save_milestones=None``, a snapshot is persisted at *every*
    slice boundary that is still a safe prefix (the original periodic
    policy; fine for long jobs where the interval yields a handful of
    saves).  A snapshot save costs a full world pickle — milliseconds —
    while pausing the engine costs nothing, so schedulers that slice
    finely pass ``save_milestones``: a sorted tuple of trace-progress
    fractions, and a snapshot is saved only at the first boundary past
    each milestone (``()`` forks from the store but never saves — right
    for the deepest member of a sweep family, whose snapshots nobody
    would ever fork from).  The result is bit-identical to
    :meth:`JobSpec.execute` — the golden-determinism suite holds this
    over the whole scheme grid.
    """
    world, forked_from = world_for_spec(spec, store)
    interval = max(1, int(interval_events))
    saved = 0
    if store is None:
        world.run()
    elif save_milestones is None:
        while not world.run(stop_after_events=interval):
            if world.safe_prefix:
                store.put(spec, world.snapshot())
                saved += 1
    else:
        # Adaptive probing: estimate the event cost of reaching the next
        # milestone from the rate observed so far (events executed over
        # trace progress), undershoot it slightly, and re-probe.  A run
        # reaches each milestone in a handful of slices whatever the
        # scheme's events-per-request rate — fixed-interval slicing would
        # need hundreds of pauses on heavy schemes to catch a late
        # milestone on light ones.
        pending = sorted(save_milestones)
        finished = False
        while pending and not finished:
            progress = world.trace_progress
            if progress >= pending[0]:
                if world.safe_prefix:
                    store.put(spec, world.snapshot())
                    saved += 1
                pending = [m for m in pending if progress < m]
                continue
            if progress > 0 and world.events_executed > 0:
                estimate = world.events_executed / progress
                step = max(
                    interval, int((pending[0] - progress) * estimate * 0.9)
                )
            else:
                step = interval
            finished = world.run(stop_after_events=step)
        if not finished:
            world.run()
    return CheckpointedRun(
        result=world.result(),
        forked_from_events=forked_from,
        checkpoints_saved=saved,
        events_executed=world.events_executed - forked_from,
    )


def _checkpointed_job(item: tuple) -> "ExecutionOutcome":
    """Worker entry point used by :class:`ParallelRunner` (fork-pool safe).

    Returns an :class:`~repro.experiments.executor.ExecutionOutcome` whose
    provenance fields record whether (and how deep) the job forked from a
    stored snapshot, so the run manifest can audit warm starts.
    """
    from repro.experiments.executor import ExecutionOutcome

    spec, directory, max_bytes, interval, milestones = item
    store = CheckpointStore(directory, max_bytes=max_bytes)
    started = time.perf_counter()
    run = execute_with_checkpoints(
        spec, store, interval_events=interval, save_milestones=milestones
    )
    return ExecutionOutcome(
        result=run.result,
        wall_ms=(time.perf_counter() - started) * 1000.0,
        checkpoint_hits=1 if run.forked_from_events > 0 else 0,
        resumed_from_events=run.forked_from_events,
    )


def checkpointed_jobs(
    store: CheckpointStore,
    interval_events: int,
    specs: list[JobSpec],
    save_milestones: tuple[float, ...] | None = None,
) -> tuple:
    """(callable, payloads) pair for the runner's execution fan-out."""
    items = [
        (spec, str(store.directory), store.max_bytes, interval_events, save_milestones)
        for spec in specs
    ]
    return _checkpointed_job, items


def default_checkpoint_store(
    directory: str | Path = DEFAULT_CACHE_DIR, max_bytes: int | None = None
) -> CheckpointStore:
    """A store on the conventional cache directory (shared LRU budget)."""
    return CheckpointStore(directory, max_bytes=max_bytes)
