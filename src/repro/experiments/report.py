"""One-shot report: regenerate the paper's whole evaluation as Markdown.

``python -m repro.experiments.report [-o FILE] [--requests N] [--fast]``

Runs Table 1, Table 3, Figure 4, Figure 5, Table 4 and the §5.2 energy
analysis at the requested scale and renders a single Markdown document with
the measured results next to the paper's numbers.  EXPERIMENTS.md in the
repository root is the curated full-scale instance of this output.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import energy, figure4, figure5, table1, table3, table4
from repro.experiments.runner import (
    DEFAULT_REQUESTS,
    DEFAULT_SEED,
    add_runner_arguments,
    configure_from_args,
)


def _code_block(text: str) -> str:
    return "```\n" + text + "\n```"


def generate_report(
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    benchmarks: list[str] | None = None,
    include_figure5: bool = True,
    figure5_requests: int | None = None,
) -> str:
    """Run every experiment and return the Markdown report."""
    sections: list[str] = [
        "# ObfusMem reproduction report",
        "",
        f"Generated with seed {seed}, {num_requests} requests per benchmark.",
        "Paper reference values appear in each table's 'p'/paper columns.",
        "",
    ]

    started = time.time()
    sections += [
        "## Table 1 — benchmark characteristics",
        "",
        _code_block(table1.format_results(table1.run(benchmarks, num_requests, seed))),
        "",
        "## Table 3 — ORAM vs ObfusMem+Auth execution overhead",
        "",
        _code_block(table3.format_results(table3.run(benchmarks, num_requests, seed))),
        "",
        "## Figure 4 — overhead breakdown by protection level",
        "",
        _code_block(figure4.format_results(figure4.run(benchmarks, num_requests, seed))),
        "",
    ]

    if include_figure5:
        fig5 = figure5.run(
            benchmarks,
            num_requests=figure5_requests or max(num_requests // 3, 400),
            seed=seed,
        )
        sections += [
            "## Figure 5 — channel-count sweep (4-core)",
            "",
            _code_block(figure5.format_results(fig5)),
            "",
        ]

    sections += [
        "## Table 4 — measured security comparison",
        "",
        _code_block(
            table4.format_results(
                table4.run(num_requests=min(num_requests, 2000), seed=seed)
            )
        ),
        "",
        "## Section 5.2 — energy and lifetime",
        "",
        _code_block(
            energy.format_results(
                energy.run(num_requests=min(num_requests, 2000), seed=seed)
            )
        ),
        "",
        f"_Report generated in {time.time() - started:.0f}s._",
        "",
    ]
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> None:
    """Parse CLI arguments and emit the report (script entry point)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.report", description=__doc__
    )
    parser.add_argument("-o", "--output", help="write the report to this file")
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS, help="requests per benchmark"
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--benchmarks", nargs="*", default=None, help="subset of benchmark names"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced scale: 800 requests, skip the Figure 5 sweep",
    )
    add_runner_arguments(parser)
    args = parser.parse_args(argv)
    configure_from_args(args)

    report = generate_report(
        num_requests=800 if args.fast else args.requests,
        seed=args.seed,
        benchmarks=args.benchmarks,
        include_figure5=not args.fast,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"report written to {args.output}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()
