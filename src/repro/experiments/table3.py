"""Table 3 — execution time overhead of ORAM vs ObfusMem+Auth.

For every benchmark: overhead of the fixed-latency ORAM model and of
ObfusMem with authenticated communication, both relative to the unprotected
baseline on the same trace, plus the speedup ratio of ObfusMem+Auth over
ORAM.  Paper averages: ORAM 946.1%, ObfusMem+Auth 10.9%, speedup 9.1x.
"""

from __future__ import annotations

import argparse
import statistics
from dataclasses import dataclass

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.experiments.executor import sweep_specs
from repro.experiments.runner import (
    DEFAULT_REQUESTS,
    DEFAULT_SEED,
    TableColumn,
    add_runner_arguments,
    cached_run,
    configure_from_args,
    format_table,
    prefetch,
    select_benchmarks,
)
from repro.system.config import MachineConfig, ProtectionLevel


@dataclass(frozen=True)
class Table3Row:
    benchmark: str
    oram_overhead_pct: float
    obfusmem_auth_overhead_pct: float
    paper_oram_pct: float
    paper_obfusmem_pct: float

    @property
    def speedup(self) -> float:
        """ObfusMem+Auth speedup over ORAM (paper's rightmost column)."""
        return (100.0 + self.oram_overhead_pct) / (
            100.0 + self.obfusmem_auth_overhead_pct
        )

    @property
    def paper_speedup(self) -> float:
        """The paper's speedup column, recomputed from its overheads."""
        return (100.0 + self.paper_oram_pct) / (100.0 + self.paper_obfusmem_pct)


@dataclass(frozen=True)
class Table3Result:
    rows: list[Table3Row]

    @property
    def avg_oram_pct(self) -> float:
        """Mean ORAM overhead across benchmarks (paper: 946.1%)."""
        return statistics.mean(r.oram_overhead_pct for r in self.rows)

    @property
    def avg_obfusmem_pct(self) -> float:
        """Mean ObfusMem+Auth overhead across benchmarks (paper: 10.9%)."""
        return statistics.mean(r.obfusmem_auth_overhead_pct for r in self.rows)

    @property
    def avg_speedup(self) -> float:
        """Mean ObfusMem-over-ORAM speedup across benchmarks (paper: 9.1x)."""
        return statistics.mean(r.speedup for r in self.rows)


def run(
    benchmarks: list[str] | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    machine: MachineConfig | None = None,
) -> Table3Result:
    """Measure ORAM and ObfusMem+Auth overheads per benchmark."""
    machine = machine or MachineConfig()
    rows = []
    names = select_benchmarks(benchmarks)
    prefetch(
        sweep_specs(
            names,
            [
                ProtectionLevel.UNPROTECTED,
                ProtectionLevel.ORAM,
                ProtectionLevel.OBFUSMEM_AUTH,
            ],
            machine=machine,
            num_requests=num_requests,
            seed=seed,
        ),
        label="table3",
    )
    for name in names:
        profile = SPEC_PROFILES[name]
        baseline = cached_run(name, ProtectionLevel.UNPROTECTED, machine, num_requests, seed)
        oram = cached_run(name, ProtectionLevel.ORAM, machine, num_requests, seed)
        obfus = cached_run(
            name, ProtectionLevel.OBFUSMEM_AUTH, machine, num_requests, seed
        )
        rows.append(
            Table3Row(
                benchmark=name,
                oram_overhead_pct=oram.overhead_pct(baseline),
                obfusmem_auth_overhead_pct=obfus.overhead_pct(baseline),
                paper_oram_pct=profile.oram_overhead_pct,
                paper_obfusmem_pct=profile.obfusmem_overhead_pct,
            )
        )
    return Table3Result(rows)


def format_results(result: Table3Result) -> str:
    """Render the result as a fixed-width text table."""
    columns = [
        TableColumn("Benchmark", 12, "<"),
        TableColumn("ORAM%", 9),
        TableColumn("ObfMem%", 8),
        TableColumn("Speedup", 8),
        TableColumn("pORAM%", 9),
        TableColumn("pObf%", 7),
        TableColumn("pSpd", 6),
    ]
    body = [
        [
            row.benchmark,
            f"{row.oram_overhead_pct:.1f}",
            f"{row.obfusmem_auth_overhead_pct:.1f}",
            f"{row.speedup:.1f}x",
            f"{row.paper_oram_pct:.1f}",
            f"{row.paper_obfusmem_pct:.1f}",
            f"{row.paper_speedup:.1f}x",
        ]
        for row in result.rows
    ]
    body.append(
        [
            "Avg",
            f"{result.avg_oram_pct:.1f}",
            f"{result.avg_obfusmem_pct:.1f}",
            f"{result.avg_speedup:.1f}x",
            "946.1",
            "10.9",
            "9.1x",
        ]
    )
    return format_table(columns, body)


def main(argv: list[str] | None = None) -> None:
    """Print the regenerated table (script entry point)."""
    parser = argparse.ArgumentParser(prog="repro.experiments.table3")
    add_runner_arguments(parser)
    configure_from_args(parser.parse_args(argv))
    print("Table 3 — ORAM vs ObfusMem+Auth overheads ('p' columns = paper)")
    print(format_results(run()))


if __name__ == "__main__":
    main()
