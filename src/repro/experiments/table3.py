"""Table 3 — execution time overhead of ORAM vs ObfusMem+Auth.

For every benchmark: overhead of the fixed-latency ORAM model and of
ObfusMem with authenticated communication, both relative to the unprotected
baseline on the same trace, plus the speedup ratio of ObfusMem+Auth over
ORAM.  Paper averages: ORAM 946.1%, ObfusMem+Auth 10.9%, speedup 9.1x.

:func:`run_extended` widens the comparison along the paper's own axis:
one overhead column per *registered ORAM scheme* (every scheme whose
stack ends in an :class:`~repro.schemes.stages.OramBackendStage` — Path,
Ring, Pyramid, Palermo, plus anything a plugin registers), so the table
shows where the obfuscated bus sits against the whole ORAM design space
rather than a single point.  ``--extended`` on the CLI prints it.
"""

from __future__ import annotations

import argparse
import statistics
from dataclasses import dataclass

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.experiments.executor import sweep_specs
from repro.experiments.runner import (
    DEFAULT_REQUESTS,
    DEFAULT_SEED,
    TableColumn,
    add_runner_arguments,
    cached_run,
    configure_from_args,
    format_table,
    prefetch,
    select_benchmarks,
)
from repro.schemes import available_schemes
from repro.schemes.stages import OramBackendStage
from repro.system.config import MachineConfig, ProtectionLevel


def oram_scheme_names() -> list[str]:
    """Names of registered schemes backed by an ORAM backend stage.

    Discovery is structural (the stack's terminal stage is an
    :class:`~repro.schemes.stages.OramBackendStage`), so a newly
    registered ORAM design joins the extended comparison without touching
    this module.
    """
    return [
        scheme.name
        for scheme in available_schemes()
        if isinstance(scheme.stages[-1], OramBackendStage)
    ]


@dataclass(frozen=True)
class Table3Row:
    benchmark: str
    oram_overhead_pct: float
    obfusmem_auth_overhead_pct: float
    paper_oram_pct: float
    paper_obfusmem_pct: float

    @property
    def speedup(self) -> float:
        """ObfusMem+Auth speedup over ORAM (paper's rightmost column)."""
        return (100.0 + self.oram_overhead_pct) / (
            100.0 + self.obfusmem_auth_overhead_pct
        )

    @property
    def paper_speedup(self) -> float:
        """The paper's speedup column, recomputed from its overheads."""
        return (100.0 + self.paper_oram_pct) / (100.0 + self.paper_obfusmem_pct)


@dataclass(frozen=True)
class Table3Result:
    rows: list[Table3Row]

    @property
    def avg_oram_pct(self) -> float:
        """Mean ORAM overhead across benchmarks (paper: 946.1%)."""
        return statistics.mean(r.oram_overhead_pct for r in self.rows)

    @property
    def avg_obfusmem_pct(self) -> float:
        """Mean ObfusMem+Auth overhead across benchmarks (paper: 10.9%)."""
        return statistics.mean(r.obfusmem_auth_overhead_pct for r in self.rows)

    @property
    def avg_speedup(self) -> float:
        """Mean ObfusMem-over-ORAM speedup across benchmarks (paper: 9.1x)."""
        return statistics.mean(r.speedup for r in self.rows)


def run(
    benchmarks: list[str] | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    machine: MachineConfig | None = None,
) -> Table3Result:
    """Measure ORAM and ObfusMem+Auth overheads per benchmark."""
    machine = machine or MachineConfig()
    rows = []
    names = select_benchmarks(benchmarks)
    prefetch(
        sweep_specs(
            names,
            [
                ProtectionLevel.UNPROTECTED,
                ProtectionLevel.ORAM,
                ProtectionLevel.OBFUSMEM_AUTH,
            ],
            machine=machine,
            num_requests=num_requests,
            seed=seed,
        ),
        label="table3",
    )
    for name in names:
        profile = SPEC_PROFILES[name]
        baseline = cached_run(name, ProtectionLevel.UNPROTECTED, machine, num_requests, seed)
        oram = cached_run(name, ProtectionLevel.ORAM, machine, num_requests, seed)
        obfus = cached_run(
            name, ProtectionLevel.OBFUSMEM_AUTH, machine, num_requests, seed
        )
        rows.append(
            Table3Row(
                benchmark=name,
                oram_overhead_pct=oram.overhead_pct(baseline),
                obfusmem_auth_overhead_pct=obfus.overhead_pct(baseline),
                paper_oram_pct=profile.oram_overhead_pct,
                paper_obfusmem_pct=profile.obfusmem_overhead_pct,
            )
        )
    return Table3Result(rows)


@dataclass(frozen=True)
class ExtendedRow:
    """One benchmark's overheads across every registered ORAM scheme."""

    benchmark: str
    oram_overheads_pct: dict[str, float]  # scheme name -> overhead %
    obfusmem_auth_overhead_pct: float

    def speedup_over(self, scheme: str) -> float:
        """ObfusMem+Auth speedup over one ORAM scheme on this benchmark."""
        return (100.0 + self.oram_overheads_pct[scheme]) / (
            100.0 + self.obfusmem_auth_overhead_pct
        )


@dataclass(frozen=True)
class Table3Extended:
    """The extended Table 3: one overhead column per ORAM scheme."""

    schemes: tuple[str, ...]
    rows: list[ExtendedRow]

    def avg_overhead_pct(self, scheme: str) -> float:
        """Mean overhead of one ORAM scheme across benchmarks."""
        return statistics.mean(r.oram_overheads_pct[scheme] for r in self.rows)

    @property
    def avg_obfusmem_pct(self) -> float:
        """Mean ObfusMem+Auth overhead across benchmarks."""
        return statistics.mean(r.obfusmem_auth_overhead_pct for r in self.rows)


def run_extended(
    benchmarks: list[str] | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    machine: MachineConfig | None = None,
    schemes: list[str] | None = None,
) -> Table3Extended:
    """Measure every registered ORAM scheme's overhead per benchmark.

    ``schemes`` defaults to :func:`oram_scheme_names`; ObfusMem+Auth rides
    along as the paper's comparison anchor.
    """
    machine = machine or MachineConfig()
    names = select_benchmarks(benchmarks)
    scheme_names = list(schemes) if schemes is not None else oram_scheme_names()
    levels: list[ProtectionLevel | str] = [
        ProtectionLevel.UNPROTECTED,
        ProtectionLevel.OBFUSMEM_AUTH,
        *scheme_names,
    ]
    prefetch(
        sweep_specs(
            names,
            levels,
            machine=machine,
            num_requests=num_requests,
            seed=seed,
        ),
        label="table3-extended",
    )
    rows = []
    for name in names:
        baseline = cached_run(
            name, ProtectionLevel.UNPROTECTED, machine, num_requests, seed
        )
        obfus = cached_run(
            name, ProtectionLevel.OBFUSMEM_AUTH, machine, num_requests, seed
        )
        overheads = {
            scheme: cached_run(name, scheme, machine, num_requests, seed).overhead_pct(
                baseline
            )
            for scheme in scheme_names
        }
        rows.append(
            ExtendedRow(
                benchmark=name,
                oram_overheads_pct=overheads,
                obfusmem_auth_overhead_pct=obfus.overhead_pct(baseline),
            )
        )
    return Table3Extended(schemes=tuple(scheme_names), rows=rows)


def format_results(result: Table3Result) -> str:
    """Render the result as a fixed-width text table."""
    columns = [
        TableColumn("Benchmark", 12, "<"),
        TableColumn("ORAM%", 9),
        TableColumn("ObfMem%", 8),
        TableColumn("Speedup", 8),
        TableColumn("pORAM%", 9),
        TableColumn("pObf%", 7),
        TableColumn("pSpd", 6),
    ]
    body = [
        [
            row.benchmark,
            f"{row.oram_overhead_pct:.1f}",
            f"{row.obfusmem_auth_overhead_pct:.1f}",
            f"{row.speedup:.1f}x",
            f"{row.paper_oram_pct:.1f}",
            f"{row.paper_obfusmem_pct:.1f}",
            f"{row.paper_speedup:.1f}x",
        ]
        for row in result.rows
    ]
    body.append(
        [
            "Avg",
            f"{result.avg_oram_pct:.1f}",
            f"{result.avg_obfusmem_pct:.1f}",
            f"{result.avg_speedup:.1f}x",
            "946.1",
            "10.9",
            "9.1x",
        ]
    )
    return format_table(columns, body)


def format_extended(result: Table3Extended) -> str:
    """Render the extended comparison: one column per ORAM scheme."""
    columns = [TableColumn("Benchmark", 12, "<")]
    columns.extend(TableColumn(f"{name}%", 11) for name in result.schemes)
    columns.append(TableColumn("ObfMem%", 8))
    body = [
        [
            row.benchmark,
            *[f"{row.oram_overheads_pct[name]:.1f}" for name in result.schemes],
            f"{row.obfusmem_auth_overhead_pct:.1f}",
        ]
        for row in result.rows
    ]
    body.append(
        [
            "Avg",
            *[f"{result.avg_overhead_pct(name):.1f}" for name in result.schemes],
            f"{result.avg_obfusmem_pct:.1f}",
        ]
    )
    return format_table(columns, body)


def main(argv: list[str] | None = None) -> None:
    """Print the regenerated table (script entry point)."""
    parser = argparse.ArgumentParser(prog="repro.experiments.table3")
    add_runner_arguments(parser)
    parser.add_argument(
        "--extended",
        action="store_true",
        help="one overhead column per registered ORAM scheme "
        "(path, ring, pyramid, palermo, ...)",
    )
    args = parser.parse_args(argv)
    configure_from_args(args)
    if args.extended:
        print("Table 3 (extended) — overheads across every registered ORAM scheme")
        print(format_extended(run_extended()))
        return
    print("Table 3 — ORAM vs ObfusMem+Auth overheads ('p' columns = paper)")
    print(format_results(run()))


if __name__ == "__main__":
    main()
