"""Persistent, content-addressed cache of front-end traces.

Producing a trace is the front end of every full-stack run: synthetic
generation (:func:`repro.cpu.generator.make_trace`) for the SPEC
reproduction, or a kernel filtered through the cache hierarchy
(:func:`repro.cpu.kernels.trace_through_hierarchy`) for the application
kernels.  Both are pure functions of a small spec — so repeated jobs (the
common case for the serve layer, which replays the same benchmarks at many
protection levels) can skip the front end entirely.

This module stores those traces next to the simulation results, reusing
the :class:`~repro.experiments.executor.JsonFileCache` machinery:

* entries are ``trace-<digest>.json`` files, content-addressed by a
  schema-versioned digest of the full trace spec (benchmark/seed or
  kernel/params/hierarchy config), and validated on load by echoing the
  spec — corruption, hash collisions and schema skew degrade to a miss;
* traces are stored in the lossless JSON form of
  :meth:`repro.cpu.trace.Trace.to_jsonable`, so a cached trace is
  bit-identical to a freshly generated one (floats round-trip exactly);
* entries share the result cache's directory and therefore its LRU byte
  budget — ``--cache-dir``/``--cache-bytes`` govern both kinds, and
  ``--no-cache`` disables both (:func:`repro.experiments.runner.configure`
  keeps this module's process-wide config in sync).

Sharing one directory also means sharing it *across processes*: every
persistent serve worker, the supervisor and any concurrent CLI sweep may
read, write and evict the same store at once.  That is safe by
construction — writes are atomic (write-then-rename) and byte-budget
eviction is serialized by the base class's single-evictor ``flock``
lease (:attr:`~repro.experiments.executor.JsonFileCache.EVICTOR_LEASE_NAME`),
so concurrent evictors never double-unlink or over-evict; a process that
loses the lease race simply skips eviction until its next write.

In front of the persistent store sits a small always-on in-process memo
(:data:`MEMO_MAX_ENTRIES` traces, LRU): a design-space sweep replays the
same trace under every scheme and machine configuration, and re-reading —
let alone regenerating — it per job dominated front-end cost.  Traces are
immutable once built, so handing the same object to many worlds is safe.

Hit/miss counters are process-wide (:func:`counters`); the serving layer
ships them back from its persistent pool workers and reports the hit
ratio in ``/metrics``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

from repro.cpu.generator import make_trace
from repro.cpu.kernels import KERNELS, trace_through_hierarchy
from repro.cpu.spec_profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.cpu.trace import Trace
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, TraceError
from repro.experiments.executor import (
    CACHE_BYTES_ENV,
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    NO_CACHE_ENV,
    JsonFileCache,
    _jsonable,
)
from repro.mem.hierarchy import HierarchyConfig

#: Bumped whenever trace generation or the entry format changes in a way
#: that invalidates previously cached traces.  Participates in every trace
#: digest, so a bump orphans (rather than corrupts) old entries.
TRACE_SCHEMA_VERSION = 1


def _digest(kind: str, spec_jsonable: dict) -> str:
    """Content hash of one trace spec plus the trace schema version."""
    payload = {"schema": TRACE_SCHEMA_VERSION, "kind": kind, "spec": spec_jsonable}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SyntheticTraceSpec:
    """One synthetic benchmark trace, as :func:`repro.system.run_benchmark`
    builds it: a profile name, a request count and the generator seed."""

    benchmark: str
    num_requests: int
    seed: int

    #: Spec kind tag, part of the digest and the stored entry.
    kind: ClassVar[str] = "synthetic"

    def __post_init__(self) -> None:
        if self.benchmark not in SPEC_PROFILES:
            raise ConfigurationError(
                f"unknown benchmark {self.benchmark!r}; choose from {BENCHMARK_NAMES}"
            )
        if self.num_requests < 1:
            raise ConfigurationError("trace needs at least one request")

    def to_jsonable(self) -> dict:
        """The spec as a canonical JSON-ready dict (the digest input)."""
        return {
            "benchmark": self.benchmark,
            "num_requests": self.num_requests,
            "seed": self.seed,
        }

    def digest(self) -> str:
        """Content hash identifying this spec's cache entry."""
        return _digest(self.kind, self.to_jsonable())

    def build(self) -> Trace:
        """Generate the trace (the cache-miss path)."""
        return make_trace(
            SPEC_PROFILES[self.benchmark], self.num_requests, seed=self.seed
        )


@dataclass(frozen=True)
class KernelTraceSpec:
    """One application-kernel trace: a registered kernel filtered through a
    cache hierarchy, as :func:`repro.cpu.kernels.trace_through_hierarchy`
    produces it.

    ``params`` holds the kernel's keyword arguments as a sorted tuple of
    ``(name, value)`` pairs so the spec stays hashable; use :meth:`create`
    to pass them as plain keywords.  ``seed``, when set, seeds the kernel's
    :class:`~repro.crypto.rng.DeterministicRng`; None keeps each kernel's
    built-in default seed.
    """

    kernel: str
    params: tuple[tuple[str, int | float], ...] = ()
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    gap_ns: float = 2.0
    core_id: int = 0
    seed: int | None = None

    #: Spec kind tag, part of the digest and the stored entry.
    kind: ClassVar[str] = "kernel"

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; choose from {sorted(KERNELS)}"
            )
        for pair in self.params:
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not isinstance(pair[0], str)
                or not isinstance(pair[1], (int, float))
            ):
                raise ConfigurationError(
                    f"kernel params must be (name, number) pairs, got {pair!r}"
                )

    @classmethod
    def create(
        cls,
        kernel: str,
        hierarchy: HierarchyConfig | None = None,
        gap_ns: float = 2.0,
        core_id: int = 0,
        seed: int | None = None,
        **params: int | float,
    ) -> "KernelTraceSpec":
        """Convenience constructor taking kernel parameters as keywords."""
        return cls(
            kernel=kernel,
            params=tuple(sorted(params.items())),
            hierarchy=hierarchy or HierarchyConfig(),
            gap_ns=gap_ns,
            core_id=core_id,
            seed=seed,
        )

    def to_jsonable(self) -> dict:
        """The spec as a canonical JSON-ready dict (the digest input)."""
        return {
            "kernel": self.kernel,
            "params": dict(self.params),
            "hierarchy": _jsonable(self.hierarchy),
            "gap_ns": self.gap_ns,
            "core_id": self.core_id,
            "seed": self.seed,
        }

    def digest(self) -> str:
        """Content hash identifying this spec's cache entry."""
        return _digest(self.kind, self.to_jsonable())

    def build(self) -> Trace:
        """Run the kernel through the hierarchy (the cache-miss path)."""
        kwargs: dict = dict(self.params)
        if self.seed is not None:
            kwargs["rng"] = DeterministicRng(self.seed)
        stream = KERNELS[self.kernel](**kwargs)
        trace, _hierarchy = trace_through_hierarchy(
            stream,
            self.hierarchy,
            gap_ns=self.gap_ns,
            core_id=self.core_id,
            name=self.kernel,
        )
        return trace


#: Either trace spec kind (they share the digest/build/to_jsonable shape).
TraceSpec = SyntheticTraceSpec | KernelTraceSpec


class TraceCache(JsonFileCache):
    """Content-addressed persistent store of front-end traces.

    Entries are ``trace-<digest>.json`` files holding the schema version,
    the spec echo and the lossless JSON trace.  The cache is designed to
    share its directory with a :class:`~repro.experiments.executor.ResultCache`
    — the inherited eviction machinery walks every ``*.json`` entry, so
    results and traces compete inside one LRU byte budget.
    """

    def path_for(self, spec: TraceSpec) -> Path:
        """Where this spec's trace lives (whether or not it exists yet)."""
        return self.directory / f"trace-{spec.digest()}.json"

    def get(self, spec: TraceSpec) -> Trace | None:
        """The cached trace for ``spec``, or None on any miss or damage."""
        path = self.path_for(spec)
        payload = self.read_json(path)
        if payload is None or payload.get("schema") != TRACE_SCHEMA_VERSION:
            return None
        if payload.get("kind") != spec.kind:
            return None
        if payload.get("spec") != spec.to_jsonable():
            return None
        try:
            trace = Trace.from_jsonable(payload["trace"])
        except (TraceError, KeyError, TypeError, ValueError):
            return None
        self.touch(path)
        return trace

    def put(self, spec: TraceSpec, trace: Trace) -> Path:
        """Persist ``trace`` for ``spec``; returns the entry's path."""
        payload = {
            "schema": TRACE_SCHEMA_VERSION,
            "kind": spec.kind,
            "spec": spec.to_jsonable(),
            "trace": trace.to_jsonable(),
        }
        return self.write_json(self.path_for(spec), payload)


@dataclass
class TraceCacheConfig:
    """Process-wide trace-cache settings (mirrors the runner's cache flags)."""

    enabled: bool = True
    directory: Path = DEFAULT_CACHE_DIR
    #: LRU byte budget shared with co-located result entries; None unbounded.
    max_bytes: int | None = None


def _config_from_env() -> TraceCacheConfig:
    """Initial config from the ``REPRO_*`` cache environment variables.

    The same variables govern the result cache
    (:mod:`repro.experiments.runner` reads them for its own config), so a
    bare process — a forked serve child, a cross-process CI check — agrees
    with a configured one about where traces live and whether to cache.
    """
    try:
        max_bytes = int(os.environ[CACHE_BYTES_ENV])
    except (KeyError, ValueError):
        max_bytes = None
    return TraceCacheConfig(
        enabled=not os.environ.get(NO_CACHE_ENV),
        directory=Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)),
        max_bytes=max_bytes,
    )


_config = _config_from_env()
_lock = threading.Lock()
_hits = 0
_misses = 0

#: Upper bound on in-process memoized traces.  Traces are a few hundred
#: kilobytes at sweep-scale request counts, so this caps the memo at a few
#: megabytes while still covering every family of a large design-space sweep
#: (a sweep axis over schemes or machine knobs reuses one trace per
#: (benchmark, num_requests, seed) point).
MEMO_MAX_ENTRIES = 32

_memo: dict[str, Trace] = {}


def clear_memo() -> None:
    """Drop every in-process memoized trace (config changes and tests)."""
    with _lock:
        _memo.clear()


def _memo_get(digest: str) -> Trace | None:
    with _lock:
        trace = _memo.get(digest)
        if trace is not None:
            # dict preserves insertion order; re-insert to mark recency.
            del _memo[digest]
            _memo[digest] = trace
        return trace


def _memo_put(digest: str, trace: Trace) -> None:
    with _lock:
        _memo[digest] = trace
        while len(_memo) > MEMO_MAX_ENTRIES:
            _memo.pop(next(iter(_memo)))


def configure(
    enabled: bool | None = None,
    directory: str | Path | None = None,
    max_bytes: int | None = None,
) -> TraceCacheConfig:
    """Update the process-wide trace-cache config; None leaves a field as is.

    ``max_bytes`` accepts a negative value to mean "back to unbounded"
    (None is the leave-unchanged sentinel, as in
    :func:`repro.experiments.runner.configure`).
    """
    if enabled is not None:
        _config.enabled = bool(enabled)
    if directory is not None:
        _config.directory = Path(directory)
    if max_bytes is not None:
        _config.max_bytes = None if max_bytes < 0 else int(max_bytes)
    return _config


def sync(enabled: bool, directory: str | Path, max_bytes: int | None) -> None:
    """Overwrite every setting at once (the runner pushes its config here)."""
    _config.enabled = bool(enabled)
    _config.directory = Path(directory)
    _config.max_bytes = max_bytes if max_bytes is None else max(0, int(max_bytes))
    clear_memo()


def get_config() -> TraceCacheConfig:
    """The live process-wide trace-cache config."""
    return _config


def reset_config() -> TraceCacheConfig:
    """Re-derive the config from the environment (mainly for tests)."""
    global _config
    _config = _config_from_env()
    clear_memo()
    return _config


def active_cache() -> TraceCache | None:
    """The trace cache per current config, or None when caching is off."""
    if not _config.enabled:
        return None
    return TraceCache(_config.directory, max_bytes=_config.max_bytes)


def counters() -> tuple[int, int]:
    """Process-lifetime ``(hits, misses)`` of :func:`cached_trace`."""
    with _lock:
        return _hits, _misses


def reset_counters() -> None:
    """Zero the process-lifetime hit/miss counters (mainly for tests)."""
    global _hits, _misses
    with _lock:
        _hits = 0
        _misses = 0


def _count(hit: bool) -> None:
    global _hits, _misses
    with _lock:
        if hit:
            _hits += 1
        else:
            _misses += 1


def cached_trace(spec: TraceSpec) -> Trace:
    """Resolve one trace spec through the memo and cache tiers.

    Two tiers, checked in order: a small in-process memo (always on — a
    sweep replays the same trace under many schemes and machine configs,
    and rebuilding or re-reading it per job dominated front-end cost), then
    the persistent on-disk store when caching is enabled.  A hit in either
    tier counts toward :func:`counters`; with ``--no-cache`` only rebuilds
    the memo cannot absorb are counted as misses, so hit-ratio metrics
    still reflect front-end work actually skipped.
    """
    digest = spec.digest()
    trace = _memo_get(digest)
    if trace is not None:
        _count(hit=True)
        return trace
    cache = active_cache()
    if cache is not None:
        trace = cache.get(spec)
        if trace is not None:
            _count(hit=True)
            _memo_put(digest, trace)
            return trace
    _count(hit=False)
    trace = spec.build()
    if cache is not None:
        cache.put(spec, trace)
    _memo_put(digest, trace)
    return trace


def traces_for_benchmark(
    benchmark: str, num_requests: int, seed: int, cores: int = 1
) -> list[Trace]:
    """The per-core traces :func:`repro.system.run_benchmark` would build.

    Seeds follow the simulator's convention (``seed + 1000 * core``), so a
    warm cache hands back traces bit-identical to fresh generation and
    :meth:`repro.experiments.executor.JobSpec.execute` can feed them
    straight to :func:`repro.system.run_traces`.
    """
    return [
        cached_trace(SyntheticTraceSpec(benchmark, num_requests, seed + 1000 * core))
        for core in range(cores)
    ]
