"""§5.2 — impact on memory energy and lifetime.

Regenerates the paper's analytical comparison (ORAM ~780x read energy per
access vs ObfusMem 3.9x; ~200x PCM energy reduction; 800 vs 64/16 pads;
~100x lifetime improvement) and cross-checks the pad and cell-write counts
against what the simulator measured.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.energy import (
    EnergyComparison,
    MeasuredEnergy,
    analytical_comparison,
    measure_obfusmem,
    measure_oram,
)
from repro.experiments.executor import sweep_specs
from repro.experiments.runner import (
    DEFAULT_SEED,
    TableColumn,
    add_runner_arguments,
    cached_run,
    configure_from_args,
    format_table,
    prefetch,
)
from repro.system.config import MachineConfig, ProtectionLevel


@dataclass(frozen=True)
class EnergyResult:
    analytical: EnergyComparison
    obfusmem_measured: MeasuredEnergy
    oram_measured: MeasuredEnergy


def run(
    benchmark: str = "bwaves",
    num_requests: int = 2000,
    seed: int = DEFAULT_SEED,
    channels: int = 4,
) -> EnergyResult:
    """Run the §5.2 analysis (analytical + measured) for one benchmark."""
    machine = MachineConfig(channels=channels)
    prefetch(
        sweep_specs(
            [benchmark],
            [ProtectionLevel.OBFUSMEM_AUTH, ProtectionLevel.ORAM],
            machine=machine,
            num_requests=num_requests,
            seed=seed,
        ),
        label="energy",
    )
    obfus = cached_run(
        benchmark, ProtectionLevel.OBFUSMEM_AUTH, machine, num_requests, seed
    )
    oram = cached_run(benchmark, ProtectionLevel.ORAM, machine, num_requests, seed)
    return EnergyResult(
        analytical=analytical_comparison(channels=channels),
        obfusmem_measured=measure_obfusmem(obfus.stats, benchmark),
        oram_measured=measure_oram(oram.stats, benchmark),
    )


def format_results(result: EnergyResult) -> str:
    """Render the result as a fixed-width text table."""
    a = result.analytical
    columns = [
        TableColumn("Quantity", 36, "<"),
        TableColumn("ORAM", 10),
        TableColumn("ObfusMem", 10),
    ]
    rows = [
        [
            "Energy per access (read units)",
            f"{a.oram_energy_factor:.0f}x",
            f"{a.obfusmem_energy_factor:.1f}x",
        ],
        ["PCM energy reduction", "1x", f"{a.pcm_energy_reduction:.0f}x"],
        [
            "128-bit pads per access (worst)",
            f"{a.oram_pads_per_access}",
            f"{a.obfusmem_pads_worst_case}",
        ],
        [
            "128-bit pads per access (best)",
            f"{a.oram_pads_per_access}",
            f"{a.obfusmem_pads_best_case}",
        ],
        ["Lifetime improvement", "1x", f"{a.lifetime_improvement:.0f}x"],
        [
            "Measured pads/access",
            f"{result.oram_measured.pads_per_access:.0f}",
            f"{result.obfusmem_measured.pads_per_access:.0f}",
        ],
        [
            "Measured cell writes/access",
            f"{result.oram_measured.cell_writes_per_access:.1f}",
            f"{result.obfusmem_measured.cell_writes_per_access:.3f}",
        ],
        [
            "Dummy writes dropped",
            "0",
            f"{result.obfusmem_measured.dummy_writes_dropped}",
        ],
    ]
    return format_table(columns, rows)


def main(argv: list[str] | None = None) -> None:
    """Print the regenerated result (script entry point)."""
    parser = argparse.ArgumentParser(prog="repro.experiments.energy")
    add_runner_arguments(parser)
    configure_from_args(parser.parse_args(argv))
    print("Section 5.2 — energy and lifetime comparison")
    print(format_results(run()))


if __name__ == "__main__":
    main()
