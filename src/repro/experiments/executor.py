"""Parallel experiment execution with a persistent on-disk result cache.

The paper's evaluation is a grid of independent (benchmark x protection
level x machine config x seed) simulations.  This module is the execution
layer that grid rides on:

* :class:`JobSpec` — a content-hashable description of one simulation
  (benchmark, protection level, machine config, request count, seed,
  cores).  Two specs that are equal by value share one cache identity,
  no matter which process built them.
* :class:`ResultCache` — a content-addressed store of
  :class:`~repro.system.simulator.RunResult` JSON files under a directory
  (``.repro-cache/`` by convention), so regenerating any table or figure
  is a cache hit *across processes*, not just within one.
* :class:`ParallelRunner` — fans a list of jobs out over
  ``multiprocessing`` workers (``fork`` start method), collects results in
  job order, and records a :class:`RunManifest` of what ran, which cache
  layer served each job, and how long every job took.

Usage::

    from repro.experiments.executor import JobSpec, ParallelRunner, ResultCache
    from repro.system.config import ProtectionLevel

    specs = [JobSpec("mcf", level, num_requests=1000) for level in ProtectionLevel]
    runner = ParallelRunner(workers=4, cache=ResultCache(".repro-cache"))
    results = runner.run(specs, label="mcf-levels")  # ordered like specs
    print(f"{runner.manifest.cache_misses} simulated, "
          f"{runner.manifest.cache_hits} served from cache")

Determinism: every job is fully described by its spec and runs on its own
deterministically seeded system, so serial execution (``workers=1``, or a
platform without ``fork``) produces results bit-identical to parallel
execution, and a cached result is bit-identical to a fresh simulation up
to JSON float round-tripping (which Python performs exactly).
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import json
import multiprocessing
import os
import threading
import time
import typing
from dataclasses import dataclass, field
from pathlib import Path

try:  # POSIX file locking for the single-evictor lease (absent on win32).
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None

from repro.cpu.spec_profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.errors import ConfigurationError
from repro.schemes import level_for, resolve_scheme, scheme_name_of
from repro.sim.statistics import StatRegistry
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import RunResult, run_traces

#: Bumped whenever the simulation physics or the result format changes in a
#: way that invalidates previously cached results.  The version participates
#: in every job digest, so a bump orphans (rather than corrupts) old entries.
CACHE_SCHEMA_VERSION = 1

#: Version of the run-manifest JSON layout.  :meth:`RunManifest.load` rejects
#: files written under a different version (or damaged files) by returning
#: ``None`` — version skew degrades to "no manifest", never to a crash.
#: v2 added checkpoint warm-start provenance per record and sweep warnings.
MANIFEST_SCHEMA_VERSION = 2

#: Default location of the persistent result cache, relative to the working
#: directory.  Override with ``--cache-dir`` or ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = Path(".repro-cache")

#: Environment variables controlling the persistent caches.  Read by
#: :mod:`repro.experiments.runner` (which re-exports the names) and by the
#: trace cache's standalone defaults (:mod:`repro.experiments.trace_cache`).
NO_CACHE_ENV = "REPRO_NO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_BYTES_ENV = "REPRO_CACHE_BYTES"

DEFAULT_REQUESTS = 4000
DEFAULT_SEED = 2017


def _jsonable(value):
    """Canonical JSON-ready form of configs: dataclasses, enums, scalars."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(f"cannot serialize {type(value).__name__} in a job spec")


@dataclass(frozen=True)
class JobSpec:
    """One simulation job: everything :func:`repro.system.run_benchmark` needs.

    The spec is hashable by value (all fields are frozen dataclasses, enums
    or scalars) and content-addressable via :meth:`digest`, which is the
    persistent cache key.
    """

    benchmark: str
    #: A :class:`ProtectionLevel` member or a registry scheme name.  Both
    #: spellings of a built-in scheme share one cache identity (the digest
    #: serializes the scheme name either way).
    level: ProtectionLevel | str
    machine: MachineConfig = field(default_factory=MachineConfig)
    num_requests: int = DEFAULT_REQUESTS
    seed: int = DEFAULT_SEED
    cores: int = 1

    def __post_init__(self) -> None:
        if self.benchmark not in SPEC_PROFILES:
            raise ConfigurationError(
                f"unknown benchmark {self.benchmark!r}; choose from {BENCHMARK_NAMES}"
            )
        resolve_scheme(self.level)  # unknown schemes fail fast, with a hint

    def to_jsonable(self) -> dict:
        """The full job spec as a canonical JSON-ready dict."""
        return _jsonable(self)

    def digest(self) -> str:
        """Content hash of the spec plus the cache schema version."""
        payload = {"schema": CACHE_SCHEMA_VERSION, "spec": self.to_jsonable()}
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def prefix_digest(self) -> str:
        """Content hash of everything but ``num_requests``.

        Two specs differing only in request count simulate the *same world*
        for their shared trace prefix (the generator streams one rng, so the
        shorter trace is a bit-identical prefix of the longer).  This digest
        is the checkpoint-store key: a safe-prefix checkpoint saved under it
        by a short run can seed any longer run of the family.
        """
        prefix = self.to_jsonable()
        del prefix["num_requests"]
        payload = {"schema": CACHE_SCHEMA_VERSION, "prefix": prefix}
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def execute(self) -> RunResult:
        """Run the simulation this spec describes (the result is not cached).

        The front-end traces come through the process-wide persistent trace
        cache (:mod:`repro.experiments.trace_cache`): warm runs skip trace
        generation entirely, cold runs generate and persist.  Cached traces
        round-trip through JSON exactly, so the result is bit-identical to
        a direct :func:`repro.system.run_benchmark` either way.
        """
        # Imported lazily: trace_cache builds on this module's cache base.
        from repro.experiments.trace_cache import traces_for_benchmark

        profile = SPEC_PROFILES[self.benchmark]
        traces = traces_for_benchmark(
            self.benchmark, self.num_requests, self.seed, cores=self.cores
        )
        return run_traces(
            traces,
            self.level,
            machine=self.machine,
            window=profile.window,
            seed=self.seed,
        )


#: Sweep-construction warnings waiting to be attached to the next manifest.
#: :func:`sweep_specs` notes duplicate-axis canonicalizations here and
#: :meth:`ParallelRunner.run` drains the list into its
#: :attr:`RunManifest.warnings`, so a silently-redundant axis is visible in
#: the sweep's audit trail, not just on stderr.
_pending_warnings: list[str] = []


def note_sweep_warning(message: str) -> None:
    """Queue a sweep-construction warning for the next run's manifest."""
    _pending_warnings.append(message)


def drain_sweep_warnings() -> list[str]:
    """Take (and clear) every queued sweep-construction warning."""
    drained = list(_pending_warnings)
    _pending_warnings.clear()
    return drained


def canonicalize_axis(name: str, values, key=None) -> list:
    """Drop duplicate axis values (order-preserving), warning when any drop.

    ``key`` maps a value to its identity (defaults to the value itself);
    duplicates are redundant design points that would survive only until
    digest-level dedup, so they are removed here and the removal is noted
    via :func:`note_sweep_warning` for the next manifest.
    """
    seen: set = set()
    canonical = []
    for value in values:
        identity = key(value) if key is not None else value
        if identity in seen:
            continue
        seen.add(identity)
        canonical.append(value)
    dropped = len(list(values)) - len(canonical)
    if dropped:
        note_sweep_warning(
            f"axis {name!r}: dropped {dropped} duplicate value(s) "
            f"(kept {len(canonical)} unique)"
        )
    return canonical


def sweep_specs(
    benchmarks: list[str],
    levels: list[ProtectionLevel | str],
    machine: MachineConfig | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    cores: int = 1,
) -> list[JobSpec]:
    """The full (benchmark x level) grid as specs, in deterministic order.

    Duplicate axis values (a benchmark listed twice, two spellings of one
    scheme) are canonicalized away rather than compiled into redundant
    specs; each canonicalization is queued for the next run manifest's
    ``warnings`` via :func:`note_sweep_warning`.
    """
    machine = machine or MachineConfig()
    benchmarks = canonicalize_axis("benchmarks", list(benchmarks))
    levels = canonicalize_axis("levels", list(levels), key=scheme_name_of)
    return [
        JobSpec(benchmark, level, machine, num_requests, seed, cores)
        for benchmark in benchmarks
        for level in levels
    ]


def result_to_jsonable(result: RunResult) -> dict:
    """A ``RunResult`` as a JSON-ready dict (enums become their values)."""
    return {
        "benchmark": result.benchmark,
        "level": scheme_name_of(result.level),
        "channels": result.channels,
        "execution_time_ns": result.execution_time_ns,
        "num_requests": result.num_requests,
        "instructions": result.instructions,
        "stats": dict(result.stats),
    }


def result_from_jsonable(payload: dict) -> RunResult:
    """Rebuild a ``RunResult`` from :func:`result_to_jsonable` output."""
    return RunResult(
        benchmark=payload["benchmark"],
        level=level_for(payload["level"]) or str(payload["level"]),
        channels=int(payload["channels"]),
        execution_time_ns=float(payload["execution_time_ns"]),
        num_requests=int(payload["num_requests"]),
        instructions=float(payload["instructions"]),
        stats={str(k): float(v) for k, v in payload["stats"].items()},
    )


def _value_from_hint(hint, value):
    """Rebuild one field value from its JSON form, guided by its type hint."""
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        return _dataclass_from_jsonable(hint, value)
    if isinstance(hint, type) and issubclass(hint, enum.Enum):
        try:
            return hint(value)
        except ValueError:
            choices = [member.value for member in hint]
            raise ConfigurationError(
                f"invalid {hint.__name__} value {value!r}; choose from {choices}"
            ) from None
    return value


def _dataclass_from_jsonable(cls, payload):
    """Rebuild a (possibly nested) config dataclass from :func:`_jsonable` output."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"expected an object for {cls.__name__}, got {type(payload).__name__}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ConfigurationError(f"unknown {cls.__name__} fields: {unknown}")
    hints = typing.get_type_hints(cls)
    kwargs = {
        name: _value_from_hint(hints[name], value) for name, value in payload.items()
    }
    return cls(**kwargs)


def spec_from_jsonable(payload: dict) -> JobSpec:
    """Rebuild a :class:`JobSpec` from its :meth:`JobSpec.to_jsonable` form.

    This is the wire decoder for the serving layer: a client POSTs the
    JSON form of a spec (``level`` as a registry scheme name, the machine
    config as nested objects with enum values as strings) and the rebuilt
    spec is *digest-identical* to the one a local caller would construct,
    so remote submissions share cache entries with local sweeps.  Unknown
    fields, unknown benchmarks/schemes and invalid enum values all raise
    :class:`~repro.errors.ConfigurationError`.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"expected a job-spec object, got {type(payload).__name__}"
        )
    payload = dict(payload)
    if "benchmark" not in payload or "level" not in payload:
        raise ConfigurationError("a job spec needs at least 'benchmark' and 'level'")
    level = payload.pop("level")
    if not isinstance(level, str):
        raise ConfigurationError("'level' must be a scheme name string on the wire")
    machine_payload = payload.pop("machine", None)
    machine = (
        MachineConfig()
        if machine_payload is None
        else _dataclass_from_jsonable(MachineConfig, machine_payload)
    )
    names = {f.name for f in dataclasses.fields(JobSpec)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ConfigurationError(f"unknown JobSpec fields: {unknown}")
    scalars = {}
    for name, caster in (
        ("num_requests", int),
        ("seed", int),
        ("cores", int),
        ("benchmark", str),
    ):
        if name in payload:
            try:
                scalars[name] = caster(payload[name])
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"JobSpec field {name!r} must be {caster.__name__}-like, "
                    f"got {payload[name]!r}"
                ) from None
    # ProtectionLevel members and their registry names share one digest, so
    # decoding to the bare name keeps wire submissions cache-compatible.
    return JobSpec(level=level, machine=machine, **scalars)


class JsonFileCache:
    """Shared machinery for content-addressed JSON stores under one directory.

    Concrete caches — :class:`ResultCache` for simulation results, and
    :class:`repro.experiments.trace_cache.TraceCache` for front-end traces
    — provide the entry naming and payload validation; this base owns the
    durable parts: tolerant reads (damage degrades to a miss), atomic
    write-then-rename persistence, mtime-as-LRU-clock touching on hits,
    and byte-budget eviction over every ``*.json`` entry in the directory.
    Different entry kinds sharing one directory therefore also share one
    LRU byte budget: a burst of trace writes can evict cold results and
    vice versa, keeping the *directory* bounded, not each kind separately.

    With ``max_bytes`` set, every write evicts least-recently-used entries
    (by file mtime) until the directory fits the byte budget again.  A
    long-lived service can therefore point at one cache directory forever
    without unbounded growth.  Eviction removes oldest-first, so the entry
    just written is only ever evicted when it alone exceeds the budget.

    Many processes may share one directory (the worker pool does exactly
    that).  Writes are already safe under concurrency — write-then-rename
    means readers only ever see whole entries — and eviction is serialized
    by a *single-evictor lease*: a ``flock``-ed sentinel file in the cache
    directory that at most one process holds at a time.  A process that
    fails to take the lease simply skips eviction; the budget is enforced
    again on the next write by whoever wins the lease then.  Two evictors
    can therefore never race each other into double-unlinking or
    over-evicting a directory that a concurrent writer is refilling.
    """

    #: Sentinel file (not a ``*.json`` entry, so never itself evicted) that
    #: serializes eviction across processes sharing the directory.
    EVICTOR_LEASE_NAME = ".evictor-lease"

    def __init__(
        self,
        directory: str | Path = DEFAULT_CACHE_DIR,
        max_bytes: int | None = None,
    ):
        self.directory = Path(directory)
        self.max_bytes = None if max_bytes is None else max(0, int(max_bytes))

    def read_json(self, path: Path) -> dict | None:
        """Parse one entry; None on absence, damage or a non-object root."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def write_json(self, path: Path, payload: dict) -> Path:
        """Atomically persist one entry, then enforce the byte budget."""
        self.directory.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent writers (or a crash) can never
        # leave a half-written entry under the final name.
        scratch = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        scratch.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(scratch, path)
        if self.max_bytes is not None:
            self.evict()
        return path

    def touch(self, path: Path) -> None:
        """Refresh an entry's LRU clock (a cache hit is a "use")."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away; still a hit
            pass

    def size_bytes(self) -> int:
        """Total bytes currently held by cache entries."""
        return sum(size for _path, _mtime, size in self._entries())

    @contextlib.contextmanager
    def _evictor_lease(self):
        """Try to become the directory's sole evictor; yields True on success.

        The lease is a ``flock(LOCK_EX | LOCK_NB)`` on a sentinel file in
        the cache directory, released when the context exits.  On platforms
        without ``fcntl`` (no POSIX locks) the lease is granted
        unconditionally — single-process behaviour is unchanged there.
        """
        if fcntl is None:  # pragma: no cover - platform-dependent
            yield True
            return
        lease_path = self.directory / self.EVICTOR_LEASE_NAME
        try:
            handle = open(lease_path, "a+")
        except OSError:  # pragma: no cover - directory raced away
            yield False
            return
        try:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                yield False  # another process is evicting right now
                return
            try:
                yield True
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def evict(self, max_bytes: int | None = None) -> int:
        """Remove least-recently-used entries until the store fits the budget.

        ``max_bytes`` overrides the instance budget for this call; with
        neither set this is a no-op.  Returns the number of entries removed.
        Eviction runs under the single-evictor lease: if another process
        holds it, this call removes nothing (returns 0) and the budget is
        enforced by the lease holder — or by the next write here.  Entries
        that disappear concurrently are counted as already gone, not errors.
        """
        budget = self.max_bytes if max_bytes is None else max(0, int(max_bytes))
        if budget is None:
            return 0
        with self._evictor_lease() as held:
            if not held:
                return 0
            entries = self._entries()
            total = sum(size for _path, _mtime, size in entries)
            removed = 0
            # Oldest mtime first: the LRU end of the store.
            for path, _mtime, size in sorted(entries, key=lambda entry: entry[1]):
                if total <= budget:
                    break
                path.unlink(missing_ok=True)
                total -= size
                removed += 1
            return removed

    def _entries(self) -> list[tuple[Path, float, int]]:
        """Every live entry as ``(path, mtime, size)`` (racing files skipped)."""
        entries = []
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - raced with an eviction
                    continue
                entries.append((path, stat.st_mtime, stat.st_size))
        return entries

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


class ResultCache(JsonFileCache):
    """Content-addressed persistent store of simulation results.

    One JSON file per job digest under ``directory``.  Every entry embeds
    the schema version and the full spec it was computed from, so a load
    only succeeds when both match — hash collisions, stale schema versions
    and corrupted files all degrade to a cache miss, never to a wrong or
    crashing result.  Durability and LRU byte-budget eviction come from
    :class:`JsonFileCache`.
    """

    def path_for(self, spec: JobSpec) -> Path:
        """Where this spec's result lives (whether or not it exists yet)."""
        return self.directory / f"{spec.digest()}.json"

    def get(self, spec: JobSpec) -> RunResult | None:
        """The cached result for ``spec``, or None on any miss or damage."""
        path = self.path_for(spec)
        payload = self.read_json(path)
        if payload is None or payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("spec") != spec.to_jsonable():
            return None
        try:
            result = result_from_jsonable(payload["result"])
        except (ValueError, KeyError, TypeError):
            return None
        self.touch(path)
        return result

    def put(self, spec: JobSpec, result: RunResult) -> Path:
        """Persist ``result`` for ``spec``; returns the entry's path."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "spec": spec.to_jsonable(),
            "result": result_to_jsonable(result),
        }
        return self.write_json(self.path_for(spec), payload)


@dataclass(frozen=True)
class JobRecord:
    """One manifest line: a job's identity, cache provenance and wall-clock.

    ``checkpoint_hits`` / ``resumed_from_events`` record checkpoint
    warm-start provenance: a job that forked from a stored snapshot carries
    the number of snapshots it consumed (0 or 1) and the kernel-event depth
    it resumed from, so a warm-started sweep's speedup is auditable from
    the manifest instead of looking identical to a cold run.
    """

    digest: str
    benchmark: str
    level: str
    channels: int
    cores: int
    num_requests: int
    seed: int
    source: str  # "memory" | "disk" | "simulated"
    wall_ms: float
    #: Stored checkpoints this job consumed (0 = cold start, 1 = warm fork).
    checkpoint_hits: int = 0
    #: Kernel-event depth the job resumed from (0 for a cold start).
    resumed_from_events: int = 0


@dataclass
class RunManifest:
    """What one sweep did: job list, cache hits/misses, timing, workers.

    ``warnings`` carries sweep-construction notices (duplicate axis values
    canonicalized away, design points dropped by digest dedup) so audit
    trails capture what the sweep compiler changed, not just what ran.
    """

    label: str
    workers: int
    records: list[JobRecord]
    wall_clock_s: float
    stats: dict[str, float] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    @property
    def jobs(self) -> int:
        """Total number of jobs in the sweep."""
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        """Jobs served from the in-memory or on-disk cache."""
        return sum(1 for record in self.records if record.source != "simulated")

    @property
    def cache_misses(self) -> int:
        """Jobs that had to be simulated."""
        return sum(1 for record in self.records if record.source == "simulated")

    @property
    def checkpoint_hits(self) -> int:
        """Simulated jobs that warm-started from a stored checkpoint."""
        return sum(1 for record in self.records if record.checkpoint_hits > 0)

    @property
    def events_resumed(self) -> int:
        """Total kernel events skipped by forking from checkpoints."""
        return sum(record.resumed_from_events for record in self.records)

    def to_jsonable(self) -> dict:
        """The manifest as a JSON-ready dict."""
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "label": self.label,
            "workers": self.workers,
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "checkpoint_hits": self.checkpoint_hits,
            "events_resumed": self.events_resumed,
            "wall_clock_s": self.wall_clock_s,
            "stats": dict(self.stats),
            "warnings": list(self.warnings),
            "records": [dataclasses.asdict(record) for record in self.records],
        }

    def write(self, path: str | Path) -> Path:
        """Write the manifest as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_jsonable(), indent=1))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest | None":
        """Read a manifest written by :meth:`write`; ``None`` when unusable.

        Version skew (a manifest written under a different
        :data:`MANIFEST_SCHEMA_VERSION`), corruption and missing files all
        return ``None`` so callers re-run the sweep instead of crashing on
        stale observability data.
        """
        try:
            payload = json.loads(Path(path).read_text())
            if payload.get("schema") != MANIFEST_SCHEMA_VERSION:
                return None
            field_names = {f.name for f in dataclasses.fields(JobRecord)}
            records = [
                JobRecord(**{name: record[name] for name in field_names if name in record})
                for record in payload["records"]
            ]
            return cls(
                label=str(payload["label"]),
                workers=int(payload["workers"]),
                records=records,
                wall_clock_s=float(payload["wall_clock_s"]),
                stats={str(k): float(v) for k, v in payload.get("stats", {}).items()},
                warnings=[str(w) for w in payload.get("warnings", [])],
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None


@dataclass(frozen=True)
class ExecutionOutcome:
    """What executing one cache-missing job produced (worker wire format).

    Checkpoint-aware executors fill the provenance fields; the plain path
    leaves them at their cold-start defaults, so the manifest can always
    tell a warm fork from a cold run.
    """

    result: RunResult
    wall_ms: float
    #: Stored checkpoints consumed by this execution (0 or 1).
    checkpoint_hits: int = 0
    #: Kernel-event depth the execution resumed from (0 = cold).
    resumed_from_events: int = 0


def _execute_job(spec: JobSpec) -> ExecutionOutcome:
    """Worker entry point: simulate one spec, timing the job's wall-clock."""
    started = time.perf_counter()
    result = spec.execute()
    return ExecutionOutcome(result, (time.perf_counter() - started) * 1000.0)


def _fork_context():
    """The ``fork`` multiprocessing context, or None if the platform lacks it."""
    try:
        if "fork" not in multiprocessing.get_all_start_methods():
            return None
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        return None


class ParallelRunner:
    """Fan job specs over worker processes, memoized through two cache layers.

    Resolution order per job: the shared in-memory dict (``memory``), then
    the persistent :class:`ResultCache` (``cache``), then simulation.  All
    misses of one :meth:`run` call are executed together — in a ``fork``
    process pool when ``workers > 1``, serially otherwise — and results are
    returned in the order the specs were given.  After :meth:`run`, the
    :attr:`manifest` attribute describes the sweep.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        memory: dict[str, RunResult] | None = None,
        stats: StatRegistry | None = None,
        checkpoints=None,
        checkpoint_interval_events: int | None = None,
        checkpoint_save_milestones: tuple[float, ...] | None = None,
    ):
        self.workers = max(1, int(workers))
        self.cache = cache
        self.memory = memory if memory is not None else {}
        self.stats = stats or StatRegistry()
        self.manifest: RunManifest | None = None
        #: Optional :class:`~repro.experiments.checkpoints.CheckpointStore`.
        #: When set, cache-missing jobs run through
        #: :func:`~repro.experiments.checkpoints.execute_with_checkpoints`:
        #: they fork from the deepest stored snapshot of their spec family
        #: and persist fresh snapshots as they go, so a request-count sweep
        #: pays for each shared trace prefix once.
        self.checkpoints = checkpoints
        self.checkpoint_interval_events = checkpoint_interval_events
        #: Trace-progress fractions at which checkpointed jobs save
        #: snapshots (None = periodic per-interval saves; () = fork but
        #: never save).  See :func:`~repro.experiments.checkpoints.execute_with_checkpoints`.
        self.checkpoint_save_milestones = checkpoint_save_milestones

    def lookup(self, spec: JobSpec) -> tuple[RunResult | None, str]:
        """Probe both cache layers for one spec: ``(result, source)``.

        ``source`` is ``"memory"``, ``"disk"`` or ``"miss"`` (with a
        ``None`` result).  A disk hit is promoted into the in-memory layer,
        exactly as :meth:`run` does for sweep jobs.
        """
        digest = spec.digest()
        if digest in self.memory:
            return self.memory[digest], "memory"
        if self.cache is not None:
            cached = self.cache.get(spec)
            if cached is not None:
                self.memory[digest] = cached
                return cached, "disk"
        return None, "miss"

    def store(self, spec: JobSpec, result: RunResult) -> None:
        """Feed one freshly simulated result into both cache layers."""
        self.memory[spec.digest()] = result
        if self.cache is not None:
            self.cache.put(spec, result)

    def run(
        self,
        specs: list[JobSpec],
        label: str = "sweep",
        progress=None,
        warnings: list[str] | None = None,
    ) -> list[RunResult]:
        """Resolve every spec (cache or simulation); ordered like ``specs``.

        ``progress``, when given, is called with each job's
        :class:`JobRecord` as it resolves — cache hits during the probe
        pass, simulated jobs as each worker outcome lands — so callers can
        stream sweep progress instead of waiting for the manifest.

        ``warnings`` seeds the manifest's warning list; any warnings queued
        by sweep construction (:func:`note_sweep_warning`) are drained into
        it as well.
        """
        specs = list(specs)
        started = time.perf_counter()
        sweep_stats = StatRegistry()
        group = sweep_stats.group("executor")
        lifetime = self.stats.group("executor")

        results: list[RunResult | None] = [None] * len(specs)
        records: list[JobRecord | None] = [None] * len(specs)
        pending: list[int] = []
        digests = [spec.digest() for spec in specs]

        def resolve(
            index: int,
            source: str,
            wall_ms: float,
            checkpoint_hits: int = 0,
            resumed_from_events: int = 0,
        ) -> None:
            spec = specs[index]
            record = JobRecord(
                digest=digests[index],
                benchmark=spec.benchmark,
                level=scheme_name_of(spec.level),
                channels=spec.machine.channels,
                cores=spec.cores,
                num_requests=spec.num_requests,
                seed=spec.seed,
                source=source,
                wall_ms=wall_ms,
                checkpoint_hits=checkpoint_hits,
                resumed_from_events=resumed_from_events,
            )
            records[index] = record
            if progress is not None:
                progress(record)

        for index, digest in enumerate(digests):
            if digest in self.memory:
                results[index] = self.memory[digest]
                resolve(index, "memory", 0.0)
            elif self.cache is not None:
                cached = self.cache.get(specs[index])
                if cached is not None:
                    results[index] = cached
                    self.memory[digest] = cached
                    resolve(index, "disk", 0.0)
                else:
                    pending.append(index)
            else:
                pending.append(index)

        if pending:

            def on_outcome(position: int, outcome: ExecutionOutcome) -> None:
                index = pending[position]
                results[index] = outcome.result
                self.memory[digests[index]] = outcome.result
                if self.cache is not None:
                    self.cache.put(specs[index], outcome.result)
                resolve(
                    index,
                    "simulated",
                    outcome.wall_ms,
                    checkpoint_hits=outcome.checkpoint_hits,
                    resumed_from_events=outcome.resumed_from_events,
                )

            self._execute([specs[index] for index in pending], on_outcome)

        for record in records:
            assert record is not None
            counter = (
                "simulations"
                if record.source == "simulated"
                else f"{record.source}_hits"
            )
            for target in (group, lifetime):
                target.add("jobs")
                target.add(counter)
            if record.checkpoint_hits:
                for target in (group, lifetime):
                    target.add("checkpoint_forks")
                group.add("events_resumed", record.resumed_from_events)
            group.record("job_wall_ms", record.wall_ms, bucket_width=100.0)
        wall_clock_s = time.perf_counter() - started
        self.manifest = RunManifest(
            label=label,
            workers=self.workers,
            records=records,  # type: ignore[arg-type]
            wall_clock_s=wall_clock_s,
            stats=sweep_stats.as_dict(),
            warnings=list(warnings or []) + drain_sweep_warnings(),
        )
        return results  # type: ignore[return-value]

    def _execute(self, specs: list[JobSpec], on_outcome) -> None:
        """Simulate ``specs`` (parallel when possible), streaming outcomes.

        ``on_outcome(position, outcome)`` is called once per spec in list
        order with each job's :class:`ExecutionOutcome` as it lands.
        """
        if self.checkpoints is not None:
            # Imported lazily: the checkpoint store builds on this module.
            from repro.experiments.checkpoints import (
                DEFAULT_CHECKPOINT_INTERVAL_EVENTS,
                checkpointed_jobs,
            )

            interval = (
                DEFAULT_CHECKPOINT_INTERVAL_EVENTS
                if self.checkpoint_interval_events is None
                else self.checkpoint_interval_events
            )
            execute_one, payloads = checkpointed_jobs(
                self.checkpoints,
                interval,
                specs,
                save_milestones=self.checkpoint_save_milestones,
            )
        else:
            execute_one, payloads = _execute_job, specs
        context = _fork_context()
        workers = min(self.workers, len(specs))
        if workers <= 1 or context is None:
            for position, payload in enumerate(payloads):
                on_outcome(position, execute_one(payload))
            return
        with context.Pool(processes=workers) as pool:
            # imap (not map) so outcomes stream back in order as they land.
            for position, outcome in enumerate(
                pool.imap(execute_one, payloads, chunksize=1)
            ):
                on_outcome(position, outcome)


@dataclass(frozen=True)
class ControlledOutcome:
    """What one controlled (interruptible) job execution produced.

    ``status`` is ``"ok"`` (``result`` is set), ``"timeout"``,
    ``"cancelled"`` or ``"error"`` (``error`` holds the reason).
    ``sim_events`` counts kernel events executed by the simulation — the
    PR-3 profiling hook, surfaced per job so a service can report live
    events/sec without a profiler attached.  ``trace_cache_hits`` /
    ``trace_cache_misses`` are the job's persistent trace-cache deltas
    (how many front-end traces were reused vs generated), surfaced the
    same way for the serving layer's ``/metrics``.
    """

    status: str
    result: RunResult | None
    wall_ms: float
    sim_events: int = 0
    error: str | None = None
    trace_cache_hits: int = 0
    trace_cache_misses: int = 0


def _count_events(spec: JobSpec) -> tuple[RunResult, int, int, int]:
    """Run one spec counting engine events and trace-cache hits/misses."""
    from repro.experiments import trace_cache
    from repro.sim.engine import Engine
    from repro.sim.profiling import EventAccountant

    accountant = EventAccountant()
    previous = Engine.default_instrument
    Engine.default_instrument = accountant
    hits_before, misses_before = trace_cache.counters()
    try:
        result = spec.execute()
    finally:
        Engine.default_instrument = previous
    hits_after, misses_after = trace_cache.counters()
    return (
        result,
        accountant.events,
        hits_after - hits_before,
        misses_after - misses_before,
    )


def _controlled_child(connection, spec: JobSpec) -> None:
    """Child-process entry point for :func:`run_spec_controlled`."""
    try:
        result, events, trace_hits, trace_misses = _count_events(spec)
        connection.send(
            ("ok", result_to_jsonable(result), events, trace_hits, trace_misses)
        )
    except BaseException as exc:  # report, never hang the parent
        try:
            connection.send(("error", f"{type(exc).__name__}: {exc}", 0, 0, 0))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        connection.close()


def run_spec_controlled(
    spec: JobSpec,
    timeout_s: float | None = None,
    cancel: threading.Event | None = None,
    poll_s: float = 0.02,
) -> ControlledOutcome:
    """Simulate one spec in a child process with timeout and cancellation.

    The simulation runs in a forked child; the parent polls a result pipe,
    the optional ``cancel`` event and the deadline, and terminates the
    child on either — so a stuck or abandoned job releases its CPU instead
    of running to completion.  The result travels back in the cache's JSON
    form, making a controlled run bit-identical to a cached one.  On
    platforms without ``fork`` the job runs inline (no mid-run
    interruption; a pre-set ``cancel`` is still honoured).
    """
    started = time.perf_counter()
    if cancel is not None and cancel.is_set():
        return ControlledOutcome("cancelled", None, 0.0, error="cancelled before start")
    context = _fork_context()
    if context is None:  # pragma: no cover - platform-dependent fallback
        try:
            result, events, trace_hits, trace_misses = _count_events(spec)
        except Exception as exc:
            wall_ms = (time.perf_counter() - started) * 1000.0
            return ControlledOutcome(
                "error", None, wall_ms, error=f"{type(exc).__name__}: {exc}"
            )
        wall_ms = (time.perf_counter() - started) * 1000.0
        return ControlledOutcome(
            "ok",
            result,
            wall_ms,
            sim_events=events,
            trace_cache_hits=trace_hits,
            trace_cache_misses=trace_misses,
        )

    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_controlled_child, args=(child_conn, spec), daemon=True
    )
    process.start()
    child_conn.close()
    deadline = None if timeout_s is None else started + float(timeout_s)
    payload = None
    status = "error"
    try:
        while True:
            if parent_conn.poll(poll_s):
                try:
                    payload = parent_conn.recv()
                except EOFError:
                    payload = (
                        "error",
                        "worker exited without reporting a result",
                        0,
                        0,
                        0,
                    )
                break
            if cancel is not None and cancel.is_set():
                status = "cancelled"
                break
            if deadline is not None and time.perf_counter() >= deadline:
                status = "timeout"
                break
            if not process.is_alive() and not parent_conn.poll(0):
                payload = ("error", "worker died before reporting a result", 0, 0, 0)
                break
    finally:
        if payload is None:
            process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - terminate() was ignored
            process.kill()
            process.join(timeout=5.0)
        parent_conn.close()
    wall_ms = (time.perf_counter() - started) * 1000.0
    if payload is None:
        reason = "cancelled by request" if status == "cancelled" else (
            f"timed out after {timeout_s:.3f} s"
        )
        return ControlledOutcome(status, None, wall_ms, error=reason)
    kind, body, events, trace_hits, trace_misses = payload
    if kind == "ok":
        return ControlledOutcome(
            "ok",
            result_from_jsonable(body),
            wall_ms,
            sim_events=int(events),
            trace_cache_hits=int(trace_hits),
            trace_cache_misses=int(trace_misses),
        )
    return ControlledOutcome("error", None, wall_ms, error=str(body))
