"""Parallel experiment execution with a persistent on-disk result cache.

The paper's evaluation is a grid of independent (benchmark x protection
level x machine config x seed) simulations.  This module is the execution
layer that grid rides on:

* :class:`JobSpec` — a content-hashable description of one simulation
  (benchmark, protection level, machine config, request count, seed,
  cores).  Two specs that are equal by value share one cache identity,
  no matter which process built them.
* :class:`ResultCache` — a content-addressed store of
  :class:`~repro.system.simulator.RunResult` JSON files under a directory
  (``.repro-cache/`` by convention), so regenerating any table or figure
  is a cache hit *across processes*, not just within one.
* :class:`ParallelRunner` — fans a list of jobs out over
  ``multiprocessing`` workers (``fork`` start method), collects results in
  job order, and records a :class:`RunManifest` of what ran, which cache
  layer served each job, and how long every job took.

Usage::

    from repro.experiments.executor import JobSpec, ParallelRunner, ResultCache
    from repro.system.config import ProtectionLevel

    specs = [JobSpec("mcf", level, num_requests=1000) for level in ProtectionLevel]
    runner = ParallelRunner(workers=4, cache=ResultCache(".repro-cache"))
    results = runner.run(specs, label="mcf-levels")  # ordered like specs
    print(f"{runner.manifest.cache_misses} simulated, "
          f"{runner.manifest.cache_hits} served from cache")

Determinism: every job is fully described by its spec and runs on its own
deterministically seeded system, so serial execution (``workers=1``, or a
platform without ``fork``) produces results bit-identical to parallel
execution, and a cached result is bit-identical to a fresh simulation up
to JSON float round-tripping (which Python performs exactly).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cpu.spec_profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.errors import ConfigurationError
from repro.schemes import level_for, resolve_scheme, scheme_name_of
from repro.sim.statistics import StatRegistry
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import RunResult, run_benchmark

#: Bumped whenever the simulation physics or the result format changes in a
#: way that invalidates previously cached results.  The version participates
#: in every job digest, so a bump orphans (rather than corrupts) old entries.
CACHE_SCHEMA_VERSION = 1

#: Default location of the persistent result cache, relative to the working
#: directory.  Override with ``--cache-dir`` or ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = Path(".repro-cache")

DEFAULT_REQUESTS = 4000
DEFAULT_SEED = 2017


def _jsonable(value):
    """Canonical JSON-ready form of configs: dataclasses, enums, scalars."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(f"cannot serialize {type(value).__name__} in a job spec")


@dataclass(frozen=True)
class JobSpec:
    """One simulation job: everything :func:`repro.system.run_benchmark` needs.

    The spec is hashable by value (all fields are frozen dataclasses, enums
    or scalars) and content-addressable via :meth:`digest`, which is the
    persistent cache key.
    """

    benchmark: str
    #: A :class:`ProtectionLevel` member or a registry scheme name.  Both
    #: spellings of a built-in scheme share one cache identity (the digest
    #: serializes the scheme name either way).
    level: ProtectionLevel | str
    machine: MachineConfig = field(default_factory=MachineConfig)
    num_requests: int = DEFAULT_REQUESTS
    seed: int = DEFAULT_SEED
    cores: int = 1

    def __post_init__(self) -> None:
        if self.benchmark not in SPEC_PROFILES:
            raise ConfigurationError(
                f"unknown benchmark {self.benchmark!r}; choose from {BENCHMARK_NAMES}"
            )
        resolve_scheme(self.level)  # unknown schemes fail fast, with a hint

    def to_jsonable(self) -> dict:
        """The full job spec as a canonical JSON-ready dict."""
        return _jsonable(self)

    def digest(self) -> str:
        """Content hash of the spec plus the cache schema version."""
        payload = {"schema": CACHE_SCHEMA_VERSION, "spec": self.to_jsonable()}
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def execute(self) -> RunResult:
        """Run the simulation this spec describes (no caching)."""
        return run_benchmark(
            SPEC_PROFILES[self.benchmark],
            self.level,
            machine=self.machine,
            num_requests=self.num_requests,
            seed=self.seed,
            cores=self.cores,
        )


def sweep_specs(
    benchmarks: list[str],
    levels: list[ProtectionLevel | str],
    machine: MachineConfig | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    cores: int = 1,
) -> list[JobSpec]:
    """The full (benchmark x level) grid as specs, in deterministic order."""
    machine = machine or MachineConfig()
    return [
        JobSpec(benchmark, level, machine, num_requests, seed, cores)
        for benchmark in benchmarks
        for level in levels
    ]


def result_to_jsonable(result: RunResult) -> dict:
    """A ``RunResult`` as a JSON-ready dict (enums become their values)."""
    return {
        "benchmark": result.benchmark,
        "level": scheme_name_of(result.level),
        "channels": result.channels,
        "execution_time_ns": result.execution_time_ns,
        "num_requests": result.num_requests,
        "instructions": result.instructions,
        "stats": dict(result.stats),
    }


def result_from_jsonable(payload: dict) -> RunResult:
    """Rebuild a ``RunResult`` from :func:`result_to_jsonable` output."""
    return RunResult(
        benchmark=payload["benchmark"],
        level=level_for(payload["level"]) or str(payload["level"]),
        channels=int(payload["channels"]),
        execution_time_ns=float(payload["execution_time_ns"]),
        num_requests=int(payload["num_requests"]),
        instructions=float(payload["instructions"]),
        stats={str(k): float(v) for k, v in payload["stats"].items()},
    )


class ResultCache:
    """Content-addressed persistent store of simulation results.

    One JSON file per job digest under ``directory``.  Every entry embeds
    the schema version and the full spec it was computed from, so a load
    only succeeds when both match — hash collisions, stale schema versions
    and corrupted files all degrade to a cache miss, never to a wrong or
    crashing result.
    """

    def __init__(self, directory: str | Path = DEFAULT_CACHE_DIR):
        self.directory = Path(directory)

    def path_for(self, spec: JobSpec) -> Path:
        """Where this spec's result lives (whether or not it exists yet)."""
        return self.directory / f"{spec.digest()}.json"

    def get(self, spec: JobSpec) -> RunResult | None:
        """The cached result for ``spec``, or None on any miss or damage."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                return None
            if payload.get("spec") != spec.to_jsonable():
                return None
            return result_from_jsonable(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, spec: JobSpec, result: RunResult) -> Path:
        """Persist ``result`` for ``spec``; returns the entry's path."""
        path = self.path_for(spec)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "spec": spec.to_jsonable(),
            "result": result_to_jsonable(result),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent writers (or a crash) can never
        # leave a half-written entry under the final name.
        scratch = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        scratch.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(scratch, path)
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


@dataclass(frozen=True)
class JobRecord:
    """One manifest line: a job's identity, cache provenance and wall-clock."""

    digest: str
    benchmark: str
    level: str
    channels: int
    cores: int
    num_requests: int
    seed: int
    source: str  # "memory" | "disk" | "simulated"
    wall_ms: float


@dataclass
class RunManifest:
    """What one sweep did: job list, cache hits/misses, timing, workers."""

    label: str
    workers: int
    records: list[JobRecord]
    wall_clock_s: float
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def jobs(self) -> int:
        """Total number of jobs in the sweep."""
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        """Jobs served from the in-memory or on-disk cache."""
        return sum(1 for record in self.records if record.source != "simulated")

    @property
    def cache_misses(self) -> int:
        """Jobs that had to be simulated."""
        return sum(1 for record in self.records if record.source == "simulated")

    def to_jsonable(self) -> dict:
        """The manifest as a JSON-ready dict."""
        return {
            "label": self.label,
            "workers": self.workers,
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_clock_s": self.wall_clock_s,
            "stats": dict(self.stats),
            "records": [dataclasses.asdict(record) for record in self.records],
        }

    def write(self, path: str | Path) -> Path:
        """Write the manifest as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_jsonable(), indent=1))
        return path


def _execute_job(spec: JobSpec) -> tuple[RunResult, float]:
    """Worker entry point: simulate one spec, timing the job's wall-clock."""
    started = time.perf_counter()
    result = spec.execute()
    return result, (time.perf_counter() - started) * 1000.0


def _fork_context():
    """The ``fork`` multiprocessing context, or None if the platform lacks it."""
    try:
        if "fork" not in multiprocessing.get_all_start_methods():
            return None
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        return None


class ParallelRunner:
    """Fan job specs over worker processes, memoized through two cache layers.

    Resolution order per job: the shared in-memory dict (``memory``), then
    the persistent :class:`ResultCache` (``cache``), then simulation.  All
    misses of one :meth:`run` call are executed together — in a ``fork``
    process pool when ``workers > 1``, serially otherwise — and results are
    returned in the order the specs were given.  After :meth:`run`, the
    :attr:`manifest` attribute describes the sweep.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        memory: dict[str, RunResult] | None = None,
        stats: StatRegistry | None = None,
    ):
        self.workers = max(1, int(workers))
        self.cache = cache
        self.memory = memory if memory is not None else {}
        self.stats = stats or StatRegistry()
        self.manifest: RunManifest | None = None

    def run(self, specs: list[JobSpec], label: str = "sweep") -> list[RunResult]:
        """Resolve every spec (cache or simulation); ordered like ``specs``."""
        specs = list(specs)
        started = time.perf_counter()
        sweep_stats = StatRegistry()
        group = sweep_stats.group("executor")
        lifetime = self.stats.group("executor")

        results: list[RunResult | None] = [None] * len(specs)
        sources = ["simulated"] * len(specs)
        walls = [0.0] * len(specs)
        pending: list[int] = []
        digests = [spec.digest() for spec in specs]
        for index, digest in enumerate(digests):
            if digest in self.memory:
                results[index] = self.memory[digest]
                sources[index] = "memory"
            elif self.cache is not None:
                cached = self.cache.get(specs[index])
                if cached is not None:
                    results[index] = cached
                    sources[index] = "disk"
                    self.memory[digest] = cached
                else:
                    pending.append(index)
            else:
                pending.append(index)

        if pending:
            outcomes = self._execute([specs[index] for index in pending])
            for index, (result, wall_ms) in zip(pending, outcomes):
                results[index] = result
                walls[index] = wall_ms
                self.memory[digests[index]] = result
                if self.cache is not None:
                    self.cache.put(specs[index], result)

        for index, spec in enumerate(specs):
            counter = (
                "simulations"
                if sources[index] == "simulated"
                else f"{sources[index]}_hits"
            )
            for target in (group, lifetime):
                target.add("jobs")
                target.add(counter)
            group.record("job_wall_ms", walls[index], bucket_width=100.0)
        wall_clock_s = time.perf_counter() - started
        self.manifest = RunManifest(
            label=label,
            workers=self.workers,
            records=[
                JobRecord(
                    digest=digests[index],
                    benchmark=spec.benchmark,
                    level=scheme_name_of(spec.level),
                    channels=spec.machine.channels,
                    cores=spec.cores,
                    num_requests=spec.num_requests,
                    seed=spec.seed,
                    source=sources[index],
                    wall_ms=walls[index],
                )
                for index, spec in enumerate(specs)
            ],
            wall_clock_s=wall_clock_s,
            stats=sweep_stats.as_dict(),
        )
        return results  # type: ignore[return-value]

    def _execute(self, specs: list[JobSpec]) -> list[tuple[RunResult, float]]:
        """Simulate ``specs`` (parallel when possible); ordered outcomes."""
        context = _fork_context()
        workers = min(self.workers, len(specs))
        if workers <= 1 or context is None:
            return [_execute_job(spec) for spec in specs]
        with context.Pool(processes=workers) as pool:
            return pool.map(_execute_job, specs, chunksize=1)
