"""Table 4 — measured security comparison of ORAM and ObfusMem.

The qualitative rows of the paper's Table 4 are backed by measurements:

* the four access-pattern aspects (spatial, temporal, type, footprint) are
  scored by the attacker metrics of :mod:`repro.analysis.leakage` on real
  bus traces from the timing simulator — unprotected vs ObfusMem;
* storage overhead, write amplification and deadlock are measured on the
  functional Path ORAM;
* execution-time overheads come from the Table 3 runs.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.leakage import (
    channel_coactivity,
    ciphertext_repeat_fraction,
    footprint_leak,
    spatial_locality_score,
    type_inference_accuracy,
)
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.crypto.rng import DeterministicRng
from repro.errors import OramDeadlockError
from repro.experiments import table3
from repro.experiments.runner import (
    DEFAULT_SEED,
    TableColumn,
    add_runner_arguments,
    configure_from_args,
    format_table,
)
from repro.mem.bus import BusObserver, MemoryBus
from repro.oram.path_oram import PathOram
from repro.schemes import resolve_scheme
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_trace


@dataclass(frozen=True)
class LeakageMeasurement:
    """Wire-level metrics for one system on one workload."""

    spatial_locality: float
    ciphertext_repeats: float
    type_accuracy: float
    footprint_error: float
    channel_coactivity: float


@dataclass(frozen=True)
class OramMeasurement:
    """Functional Path ORAM accounting."""

    capacity_overhead_pct: float
    blocks_per_access: int
    max_stash: int
    deadlock_observed: bool


@dataclass(frozen=True)
class Table4Result:
    unprotected: LeakageMeasurement
    obfusmem: LeakageMeasurement
    oram: OramMeasurement
    oram_overhead_pct: float
    obfusmem_overhead_pct: float
    obfusmem_cell_writes: int
    obfusmem_real_writes: int

    @property
    def obfusmem_write_amplification(self) -> float:
        """Cell writes per real write (1.0 = none, ORAM ~100)."""
        if not self.obfusmem_real_writes:
            return 0.0
        return self.obfusmem_cell_writes / self.obfusmem_real_writes


def _measure_leakage(
    benchmark: str, level: ProtectionLevel, num_requests: int, seed: int
) -> tuple[LeakageMeasurement, dict[str, float]]:
    profile = SPEC_PROFILES[benchmark]
    machine = MachineConfig(channels=4)
    trace = make_trace(profile, num_requests, seed=seed)
    observer = BusObserver()
    bus = MemoryBus()
    bus.attach(observer)
    result = run_trace(
        trace, level, machine=machine, window=profile.window, seed=seed, bus=bus
    )
    transfers = observer.transfers
    leak = footprint_leak(transfers)
    return (
        LeakageMeasurement(
            spatial_locality=spatial_locality_score(transfers),
            ciphertext_repeats=ciphertext_repeat_fraction(transfers),
            type_accuracy=type_inference_accuracy(transfers),
            footprint_error=leak.relative_error,
            channel_coactivity=channel_coactivity(transfers, machine.channels),
        ),
        result.stats,
    )


def _measure_oram(seed: int, accesses: int = 2000, num_blocks: int = 2048) -> OramMeasurement:
    rng = DeterministicRng(seed)
    oram = PathOram(num_blocks, rng.fork("table4"), stash_limit=500)
    deadlock = False
    try:
        for i in range(accesses):
            address = rng.randrange(num_blocks)
            if i % 2:
                oram.read(address)
            else:
                oram.write(address, bytes([i % 256]) * 8)
    except OramDeadlockError:
        deadlock = True
    return OramMeasurement(
        capacity_overhead_pct=100.0 * oram.capacity_overhead,
        blocks_per_access=oram.blocks_per_access,
        max_stash=oram.max_stash_seen,
        deadlock_observed=deadlock,
    )


def run(
    benchmark: str = "bwaves",
    num_requests: int = 2000,
    seed: int = DEFAULT_SEED,
) -> Table4Result:
    """Measure every Table 4 row on live traffic and functional ORAM."""
    unprotected, _ = _measure_leakage(
        benchmark, ProtectionLevel.UNPROTECTED, num_requests, seed
    )
    obfusmem, obfus_stats = _measure_leakage(
        benchmark, ProtectionLevel.OBFUSMEM_AUTH, num_requests, seed
    )
    oram = _measure_oram(seed)
    overheads = table3.run(benchmarks=[benchmark], num_requests=num_requests, seed=seed)
    # The scheme's declared stat bindings say which groups own these
    # counters (pcm* for cell writes, channel* for scheduled writes), so
    # no endswith-guessing over the flattened stat dict.
    scheme = resolve_scheme(ProtectionLevel.OBFUSMEM_AUTH)
    cell_writes = int(scheme.stat_sum(obfus_stats, "array_writes"))
    real_writes = int(scheme.stat_sum(obfus_stats, "writes"))
    return Table4Result(
        unprotected=unprotected,
        obfusmem=obfusmem,
        oram=oram,
        oram_overhead_pct=overheads.avg_oram_pct,
        obfusmem_overhead_pct=overheads.avg_obfusmem_pct,
        obfusmem_cell_writes=cell_writes,
        obfusmem_real_writes=real_writes,
    )


def format_results(result: Table4Result) -> str:
    """Render the comparison as a fixed-width text table."""
    columns = [
        TableColumn("Aspect", 28, "<"),
        TableColumn("Unprotected", 12),
        TableColumn("ObfusMem", 12),
        TableColumn("ORAM", 12),
    ]
    u, o = result.unprotected, result.obfusmem
    rows = [
        ["Spatial locality visible", f"{u.spatial_locality:.2f}", f"{o.spatial_locality:.2f}", "hidden"],
        ["Temporal repeats visible", f"{u.ciphertext_repeats:.2f}", f"{o.ciphertext_repeats:.2f}", "hidden"],
        ["Type inference accuracy", f"{u.type_accuracy:.2f}", f"{o.type_accuracy:.2f}", "0.50"],
        ["Footprint estimate error", f"{u.footprint_error:.2f}", f"{o.footprint_error:.2f}", "large"],
        ["Channel co-activity", f"{u.channel_coactivity:.2f}", f"{o.channel_coactivity:.2f}", "n/a"],
        ["Command authentication", "no", "yes", "no"],
        ["TCB", "none", "Proc+Mem", "Proc only"],
        [
            "Exe time overhead",
            "0%",
            f"{result.obfusmem_overhead_pct:.1f}%",
            f"{result.oram_overhead_pct:.0f}%",
        ],
        [
            "Storage overhead",
            "0%",
            "0%",
            f"{result.oram.capacity_overhead_pct:.0f}%",
        ],
        [
            "Write amplification",
            "1.0x",
            f"{result.obfusmem_write_amplification:.1f}x",
            f"~{result.oram.blocks_per_access // 2}x",
        ],
        [
            "Deadlock possibility",
            "zero",
            "zero",
            "low" if not result.oram.deadlock_observed else "observed",
        ],
    ]
    return format_table(columns, rows)


def main(argv: list[str] | None = None) -> None:
    """Print the regenerated table (script entry point)."""
    parser = argparse.ArgumentParser(prog="repro.experiments.table4")
    add_runner_arguments(parser)
    configure_from_args(parser.parse_args(argv))
    print("Table 4 — measured security/overhead comparison")
    print(format_results(run()))


if __name__ == "__main__":
    main()
