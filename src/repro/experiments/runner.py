"""Shared experiment plumbing: cached runs and table formatting.

Every experiment module (table1/table3/figure4/figure5/table4/energy) runs
benchmarks through :func:`repro.system.run_benchmark`; this module caches
results so a full regeneration of the paper's evaluation reuses each
(benchmark, system) simulation instead of repeating it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.spec_profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.errors import ConfigurationError
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import RunResult, run_benchmark

DEFAULT_REQUESTS = 4000
DEFAULT_SEED = 2017

_cache: dict[tuple, RunResult] = {}


def clear_cache() -> None:
    """Drop all cached simulation results (mainly for tests)."""
    _cache.clear()


def cached_run(
    benchmark: str,
    level: ProtectionLevel,
    machine: MachineConfig | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    cores: int = 1,
) -> RunResult:
    """Run (or fetch) one benchmark at one protection level."""
    if benchmark not in SPEC_PROFILES:
        raise ConfigurationError(
            f"unknown benchmark {benchmark!r}; choose from {BENCHMARK_NAMES}"
        )
    machine = machine or MachineConfig()
    key = (benchmark, level, machine, num_requests, seed, cores)
    if key not in _cache:
        _cache[key] = run_benchmark(
            SPEC_PROFILES[benchmark],
            level,
            machine=machine,
            num_requests=num_requests,
            seed=seed,
            cores=cores,
        )
    return _cache[key]


def select_benchmarks(benchmarks: list[str] | None) -> list[str]:
    """Validate a benchmark subset; None means the full Table 1 suite."""
    if benchmarks is None:
        return list(BENCHMARK_NAMES)
    unknown = [name for name in benchmarks if name not in SPEC_PROFILES]
    if unknown:
        raise ConfigurationError(f"unknown benchmarks: {unknown}")
    return benchmarks


@dataclass(frozen=True)
class TableColumn:
    header: str
    width: int
    align: str = ">"


def format_table(columns: list[TableColumn], rows: list[list[str]]) -> str:
    """Render a fixed-width text table (the experiment CLIs print these)."""
    header = " ".join(f"{c.header:{c.align}{c.width}}" for c in columns)
    separator = "-" * len(header)
    body = [
        " ".join(f"{cell:{c.align}{c.width}}" for c, cell in zip(columns, row))
        for row in rows
    ]
    return "\n".join([header, separator, *body])
