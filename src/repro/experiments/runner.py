"""Shared experiment plumbing: cached runs, parallel prefetch, tables.

Every experiment module (table1/table3/figure4/figure5/table4/energy) runs
benchmarks through :func:`repro.system.run_benchmark`.  This module fronts
that call with a two-layer cache — a process-lifetime dict plus the
persistent on-disk :class:`~repro.experiments.executor.ResultCache` — and a
parallel prefetch step, so a full regeneration of the paper's evaluation
reuses each (benchmark, level, machine, seed) simulation across processes
and can fan cold jobs out over every core.

The execution surface is configured once per process::

    from repro.experiments import runner

    runner.configure(workers=4, cache_dir="/tmp/obfus-cache")
    rows = table1.run()          # cold jobs run on 4 workers, warm ones hit
    print(runner.runtime_stats())  # {'runner.memory_hits': ..., ...}

or from any experiment CLI / ``python -m repro experiments`` via
``--workers N``, ``--no-cache`` and ``--cache-dir PATH`` (environment
equivalents: ``REPRO_WORKERS``, ``REPRO_NO_CACHE``, ``REPRO_CACHE_DIR``).
Each :func:`prefetch` sweep records a run manifest; with the disk cache
enabled it is written under ``<cache-dir>/manifests/<label>.json``.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from pathlib import Path

from repro.cpu.spec_profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.errors import ConfigurationError
from repro.experiments import trace_cache
from repro.experiments.executor import (
    CACHE_BYTES_ENV,
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    DEFAULT_REQUESTS,
    DEFAULT_SEED,
    NO_CACHE_ENV,
    JobSpec,
    ParallelRunner,
    ResultCache,
    RunManifest,
)
from repro.attacks import add_attack_arguments
from repro.schemes import add_scheme_arguments
from repro.sim.statistics import StatRegistry
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import RunResult

WORKERS_ENV = "REPRO_WORKERS"
PROFILE_ENV = "REPRO_PROFILE"

_cache: dict[str, RunResult] = {}
_stats = StatRegistry()


@dataclass
class RunnerConfig:
    """Process-wide execution settings for experiment runs."""

    workers: int = 1
    cache_enabled: bool = True
    cache_dir: Path = DEFAULT_CACHE_DIR
    #: Byte budget for the persistent cache (LRU eviction on write); None
    #: leaves the store unbounded, which is fine for one-shot CLI runs.
    cache_bytes: int | None = None
    profile: bool = False


def _config_from_env() -> RunnerConfig:
    """Build the initial runner config from ``REPRO_*`` environment variables."""
    try:
        workers = int(os.environ.get(WORKERS_ENV, "1"))
    except ValueError:
        workers = 1
    try:
        cache_bytes = int(os.environ[CACHE_BYTES_ENV])
    except (KeyError, ValueError):
        cache_bytes = None
    return RunnerConfig(
        workers=max(1, workers),
        cache_enabled=not os.environ.get(NO_CACHE_ENV),
        cache_dir=Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)),
        cache_bytes=cache_bytes,
        profile=bool(os.environ.get(PROFILE_ENV)),
    )


_config = _config_from_env()


def _sync_trace_cache() -> None:
    """Push the runner's cache settings onto the front-end trace cache.

    Result and trace entries live in one directory under one byte budget,
    so a single set of flags (``--no-cache``/``--cache-dir``/
    ``--cache-bytes``) must govern both stores.
    """
    trace_cache.sync(_config.cache_enabled, _config.cache_dir, _config.cache_bytes)


_sync_trace_cache()


def configure(
    workers: int | None = None,
    cache_enabled: bool | None = None,
    cache_dir: str | Path | None = None,
    cache_bytes: int | None = None,
    profile: bool | None = None,
) -> RunnerConfig:
    """Update the process-wide runner config; None leaves a field unchanged.

    ``cache_bytes`` accepts a negative value to mean "back to unbounded"
    (None is the leave-unchanged sentinel shared by every parameter).
    """
    if workers is not None:
        _config.workers = max(1, int(workers))
    if cache_enabled is not None:
        _config.cache_enabled = bool(cache_enabled)
    if cache_dir is not None:
        _config.cache_dir = Path(cache_dir)
    if cache_bytes is not None:
        _config.cache_bytes = None if cache_bytes < 0 else int(cache_bytes)
    if profile is not None:
        _config.profile = bool(profile)
    _sync_trace_cache()
    return _config


def get_config() -> RunnerConfig:
    """The live process-wide runner config (mutable via :func:`configure`)."""
    return _config


def reset_config() -> RunnerConfig:
    """Re-derive the runner config from the environment (mainly for tests)."""
    global _config
    _config = _config_from_env()
    _sync_trace_cache()
    return _config


def _disk_cache() -> ResultCache | None:
    """The persistent cache per current config, or None when disabled."""
    if not _config.cache_enabled:
        return None
    return ResultCache(_config.cache_dir, max_bytes=_config.cache_bytes)


def clear_cache() -> None:
    """Drop the in-memory result cache and counters (the disk cache stays)."""
    _cache.clear()
    global _stats
    _stats = StatRegistry()


def runtime_stats() -> dict[str, float]:
    """Process-lifetime cache/simulation counters, flattened to one dict."""
    return _stats.as_dict()


def simulations_performed() -> int:
    """How many actual simulations this process has executed so far."""
    return int(
        sum(v for k, v in _stats.as_dict().items() if k.endswith(".simulations"))
    )


def cached_run(
    benchmark: str,
    level: ProtectionLevel,
    machine: MachineConfig | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    cores: int = 1,
) -> RunResult:
    """Run (or fetch) one benchmark at one protection level.

    Resolution order: in-memory cache, then the persistent disk cache (when
    enabled), then a fresh simulation whose result feeds both layers.
    """
    spec = JobSpec(
        benchmark=benchmark,
        level=level,
        machine=machine or MachineConfig(),
        num_requests=num_requests,
        seed=seed,
        cores=cores,
    )
    return run_spec(spec)


def run_spec(spec: JobSpec) -> RunResult:
    """Resolve one :class:`JobSpec` through both cache layers."""
    group = _stats.group("runner")
    digest = spec.digest()
    if digest in _cache:
        group.add("memory_hits")
        return _cache[digest]
    disk = _disk_cache()
    if disk is not None:
        cached = disk.get(spec)
        if cached is not None:
            group.add("disk_hits")
            _cache[digest] = cached
            return cached
    group.add("simulations")
    result = spec.execute()
    _cache[digest] = result
    if disk is not None:
        disk.put(spec, result)
    return result


def prefetch(specs: list[JobSpec], label: str = "sweep", progress=None) -> RunManifest:
    """Resolve a whole sweep up front, fanning cold jobs over workers.

    Populates both cache layers, so subsequent :func:`cached_run` calls for
    the same specs are pure in-memory hits.  Returns the sweep's manifest;
    with the disk cache enabled it is also written to
    ``<cache-dir>/manifests/<label>.json``.  ``progress`` (a callable
    taking one :class:`~repro.experiments.executor.JobRecord`) streams
    per-job resolution as the sweep advances.

    With profiling enabled (``--profile`` / ``REPRO_PROFILE``), the sweep
    runs serially in-process under cProfile + event accounting, and the
    hotspot reports are written alongside the manifest as
    ``<label>.profile.json`` / ``<label>.profile.txt``.
    """
    if _config.profile:
        return _prefetch_profiled(specs, label)
    parallel = ParallelRunner(
        workers=_config.workers,
        cache=_disk_cache(),
        memory=_cache,
        stats=_stats,
    )
    parallel.run(list(specs), label=label, progress=progress)
    manifest = parallel.manifest
    assert manifest is not None
    if _config.cache_enabled:
        manifest.write(_config.cache_dir / "manifests" / f"{label}.json")
    return manifest


def _prefetch_profiled(specs: list[JobSpec], label: str) -> RunManifest:
    """Profiled sweep: serial, in-process, with hotspot reports on disk.

    Fork workers cannot feed a parent-side profiler, so profiling forces
    ``workers=1``; cold simulations still populate both cache layers.
    """
    from repro.sim import profiling

    parallel = ParallelRunner(
        workers=1,
        cache=_disk_cache(),
        memory=_cache,
        stats=_stats,
    )
    with profiling.capture() as session:
        parallel.run(list(specs), label=label)
    manifest = parallel.manifest
    assert manifest is not None
    manifest_dir = _config.cache_dir / "manifests"
    if _config.cache_enabled:
        manifest.write(manifest_dir / f"{label}.json")
    json_path, text_path = session.write_reports(manifest_dir, label)
    print(f"[profile] {label}: {session.accountant.events} events in "
          f"{session.wall_s:.3f} s -> {json_path} / {text_path}")
    return manifest


def add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--workers/--no-cache/--cache-dir`` flags.

    Also attaches ``--list-schemes`` and ``--list-attacks`` so every
    experiment CLI can print the protection-scheme and attacker registries
    without running anything.
    """
    add_scheme_arguments(parser)
    add_attack_arguments(parser)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for cold simulations (default: current config)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"persistent result cache directory (default {DEFAULT_CACHE_DIR}/)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="byte budget for the persistent cache; least-recently-used "
        "entries are evicted on write (default: unbounded)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile cold simulations (cProfile + event counts); forces "
        "serial execution and writes <label>.profile.{json,txt} next to "
        "the run manifest",
    )


def configure_from_args(args: argparse.Namespace) -> RunnerConfig:
    """Apply parsed :func:`add_runner_arguments` flags to the global config."""
    return configure(
        workers=getattr(args, "workers", None),
        cache_enabled=False if getattr(args, "no_cache", False) else None,
        cache_dir=getattr(args, "cache_dir", None),
        cache_bytes=getattr(args, "cache_bytes", None),
        profile=True if getattr(args, "profile", False) else None,
    )


def select_benchmarks(benchmarks: list[str] | None) -> list[str]:
    """Validate a benchmark subset; None means the full Table 1 suite."""
    if benchmarks is None:
        return list(BENCHMARK_NAMES)
    unknown = [name for name in benchmarks if name not in SPEC_PROFILES]
    if unknown:
        raise ConfigurationError(f"unknown benchmarks: {unknown}")
    return benchmarks


@dataclass(frozen=True)
class TableColumn:
    """One column of a fixed-width text table (header, width, alignment)."""

    header: str
    width: int
    align: str = ">"


def format_table(columns: list[TableColumn], rows: list[list[str]]) -> str:
    """Render a fixed-width text table (the experiment CLIs print these)."""
    header = " ".join(f"{c.header:{c.align}{c.width}}" for c in columns)
    separator = "-" * len(header)
    body = [
        " ".join(f"{cell:{c.align}{c.width}}" for c, cell in zip(columns, row))
        for row in rows
    ]
    return "\n".join([header, separator, *body])
