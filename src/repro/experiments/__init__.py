"""Experiment runners: one module per table/figure of the paper.

- :mod:`repro.experiments.table1` — benchmark characteristics.
- :mod:`repro.experiments.table3` — ORAM vs ObfusMem+Auth overheads.
- :mod:`repro.experiments.figure4` — overhead breakdown by level.
- :mod:`repro.experiments.figure5` — channel-count sweep, UNOPT vs OPT.
- :mod:`repro.experiments.table4` — measured security comparison.
- :mod:`repro.experiments.energy` — §5.2 energy/lifetime analysis.
- :mod:`repro.experiments.related` — §7 related-work comparison (HIDE/ORAM).
- :mod:`repro.experiments.matrix` — scheme×attack leakage matrix over the
  attacker registry (:mod:`repro.attacks`), with verdicts checked against
  trait-derived expectations.
- :mod:`repro.experiments.report` — one-shot Markdown report of everything.
- :mod:`repro.experiments.export` — CSV writers for every result type.
- :mod:`repro.experiments.executor` — parallel job execution + persistent
  on-disk result cache + run manifests.
- :mod:`repro.experiments.runner` — cached-run frontend, process-wide
  worker/cache configuration, table formatting.
- :mod:`repro.experiments.trace_cache` — persistent content-addressed
  cache of front-end traces, sharing the result cache's directory and
  byte budget.
- :mod:`repro.experiments.checkpoints` — persistent checkpoint store and
  warm-started execution for request-count sweep families.
- :mod:`repro.experiments.sweep` — declarative design-space sweeps
  (``SweepSpec``) compiled to deduplicated jobs and executed on a
  prefix-sharing warm-start schedule (``plan_sweep``/``run_sweep``).
- :mod:`repro.experiments.pareto` — streaming Pareto aggregation of sweep
  results into the overhead/leakage/energy frontier.

Each experiment module exposes ``run(...)`` returning structured results
and a ``main()`` that prints the regenerated table; run them as scripts,
e.g. ``python -m repro.experiments.table3 --workers 4``.  The shared flags
``--workers``, ``--no-cache`` and ``--cache-dir`` (or the environment
variables ``REPRO_WORKERS``, ``REPRO_NO_CACHE``, ``REPRO_CACHE_DIR``)
control parallel fan-out and the persistent result cache.
"""

from repro.experiments.executor import JobSpec, ParallelRunner, ResultCache, RunManifest
from repro.experiments.pareto import ParetoAggregator
from repro.experiments.runner import (
    cached_run,
    clear_cache,
    configure,
    prefetch,
    select_benchmarks,
)
from repro.experiments.sweep import SweepSpec, plan_sweep, run_sweep

__all__ = [
    "JobSpec",
    "ParallelRunner",
    "ParetoAggregator",
    "ResultCache",
    "RunManifest",
    "SweepSpec",
    "cached_run",
    "clear_cache",
    "configure",
    "plan_sweep",
    "prefetch",
    "run_sweep",
    "select_benchmarks",
]
