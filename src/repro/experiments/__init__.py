"""Experiment runners: one module per table/figure of the paper.

- :mod:`repro.experiments.table1` — benchmark characteristics.
- :mod:`repro.experiments.table3` — ORAM vs ObfusMem+Auth overheads.
- :mod:`repro.experiments.figure4` — overhead breakdown by level.
- :mod:`repro.experiments.figure5` — channel-count sweep, UNOPT vs OPT.
- :mod:`repro.experiments.table4` — measured security comparison.
- :mod:`repro.experiments.energy` — §5.2 energy/lifetime analysis.
- :mod:`repro.experiments.related` — §7 related-work comparison (HIDE/ORAM).
- :mod:`repro.experiments.report` — one-shot Markdown report of everything.
- :mod:`repro.experiments.export` — CSV writers for every result type.

Each module exposes ``run(...)`` returning structured results and a
``main()`` that prints the regenerated table; run them as scripts, e.g.
``python -m repro.experiments.table3``.
"""

from repro.experiments.runner import cached_run, clear_cache, select_benchmarks

__all__ = ["cached_run", "clear_cache", "select_benchmarks"]
