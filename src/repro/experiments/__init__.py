"""Experiment runners: one module per table/figure of the paper.

- :mod:`repro.experiments.table1` — benchmark characteristics.
- :mod:`repro.experiments.table3` — ORAM vs ObfusMem+Auth overheads.
- :mod:`repro.experiments.figure4` — overhead breakdown by level.
- :mod:`repro.experiments.figure5` — channel-count sweep, UNOPT vs OPT.
- :mod:`repro.experiments.table4` — measured security comparison.
- :mod:`repro.experiments.energy` — §5.2 energy/lifetime analysis.
- :mod:`repro.experiments.related` — §7 related-work comparison (HIDE/ORAM).
- :mod:`repro.experiments.matrix` — scheme×attack leakage matrix over the
  attacker registry (:mod:`repro.attacks`), with verdicts checked against
  trait-derived expectations.
- :mod:`repro.experiments.report` — one-shot Markdown report of everything.
- :mod:`repro.experiments.export` — CSV writers for every result type.
- :mod:`repro.experiments.executor` — parallel job execution + persistent
  on-disk result cache + run manifests.
- :mod:`repro.experiments.runner` — cached-run frontend, process-wide
  worker/cache configuration, table formatting.
- :mod:`repro.experiments.trace_cache` — persistent content-addressed
  cache of front-end traces, sharing the result cache's directory and
  byte budget.

Each experiment module exposes ``run(...)`` returning structured results
and a ``main()`` that prints the regenerated table; run them as scripts,
e.g. ``python -m repro.experiments.table3 --workers 4``.  The shared flags
``--workers``, ``--no-cache`` and ``--cache-dir`` (or the environment
variables ``REPRO_WORKERS``, ``REPRO_NO_CACHE``, ``REPRO_CACHE_DIR``)
control parallel fan-out and the persistent result cache.
"""

from repro.experiments.executor import JobSpec, ParallelRunner, ResultCache, RunManifest
from repro.experiments.runner import (
    cached_run,
    clear_cache,
    configure,
    prefetch,
    select_benchmarks,
)

__all__ = [
    "JobSpec",
    "ParallelRunner",
    "ResultCache",
    "RunManifest",
    "cached_run",
    "clear_cache",
    "configure",
    "prefetch",
    "select_benchmarks",
]
