"""The scheme×attack leakage matrix: every defense against every adversary.

Fans every registered protection scheme against every registered attacker
(:mod:`repro.attacks`) over a small workload suite, through the same
:class:`~repro.experiments.executor.ParallelRunner` + persistent-cache
machinery the paper tables use.  Each cell is one
:class:`~repro.attacks.AttackOutcome` — a normalized advantage in
``[0, 1]`` over the attack's random-guess baseline — plus a leak verdict
(advantage at or above the attacker's threshold) checked against the
trait-derived prediction of :func:`repro.analysis.leakage.expected_leakage`.

The matrix is the paper's security claims run as one experiment: plaintext
and ECB-style wires light up under fingerprinting and the §3.2 dictionary
attack, ObfusMem's counter-mode wire drives the address/type/footprint
attackers to random guessing, and the rebuild-timing attacker flags exactly
the ORAM backends whose amortized maintenance pulses in countable bursts.

Run it with ``python -m repro matrix`` (``--workers N`` parallelizes the
cold captures; cells are content-addressed in the result cache, so reruns
are pure cache hits).
"""

from __future__ import annotations

import argparse
import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.analysis.leakage import expected_leakage
from repro.attacks import (
    AttackInput,
    AttackOutcome,
    WorkloadCapture,
    attacker_names,
    get_attacker,
)
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.errors import ConfigurationError
from repro.experiments import runner, trace_cache
from repro.experiments.executor import (
    DEFAULT_SEED,
    JsonFileCache,
    ParallelRunner,
    RunManifest,
)
from repro.experiments.runner import TableColumn, format_table
from repro.mem.bus import BusObserver, MemoryBus
from repro.schemes import resolve_scheme, scheme_names
from repro.schemes.stages import TRAIT_REBUILD_BURSTS
from repro.system.config import MachineConfig
from repro.system.simulator import run_traces

#: Version of the attack-cell cache payload; bumped when attacker scoring
#: or the outcome format changes, orphaning (never corrupting) old entries.
ATTACK_SCHEMA_VERSION = "attack-cell-1"

#: Default workload suite: one streaming, one pointer-chasing and one
#: mixed-locality benchmark — enough behavioural spread for the
#: fingerprinting attacker to have something to distinguish.
DEFAULT_WORKLOADS = ("bwaves", "mcf", "astar")
DEFAULT_MATRIX_REQUESTS = 1200
DEFAULT_MATRIX_CHANNELS = 4

#: Ring-buffer cap on each capture (satellite: bounded observer memory).
#: Generously above the transfer count of the default capture length, so
#: default matrices observe complete traces (``dropped == 0``).
CAPTURE_MAX_TRANSFERS = 200_000


@lru_cache(maxsize=32)
def capture_workload(
    level: str,
    workload: str,
    num_requests: int,
    seed: int,
    channels: int,
) -> WorkloadCapture:
    """Simulate one workload under one scheme with a bus observer attached.

    Front-end traces come from the persistent trace cache, so captures of
    the same workload under different schemes replay identical request
    streams.  Memoized per process (the matrix reuses one capture across
    every passive attacker of a scheme).
    """
    profile = SPEC_PROFILES[workload]
    bus = MemoryBus()
    observer = BusObserver("matrix", max_transfers=CAPTURE_MAX_TRANSFERS)
    bus.attach(observer)
    traces = trace_cache.traces_for_benchmark(workload, num_requests, seed)
    run_traces(
        traces,
        level,
        machine=MachineConfig(channels=channels),
        window=profile.window,
        seed=seed,
        bus=bus,
    )
    return WorkloadCapture(workload, seed, tuple(observer.transfers), observer.dropped)


@dataclass(frozen=True)
class AttackCellSpec:
    """One matrix cell: run one attacker against one scheme's captures.

    Duck-typed to ride :class:`~repro.experiments.executor.ParallelRunner`
    exactly like a :class:`~repro.experiments.executor.JobSpec`: it is
    hashable by value, content-addressable via :meth:`digest`, and
    :meth:`execute` produces the cell's :class:`AttackOutcome`.
    """

    attack: str
    level: str
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS
    num_requests: int = DEFAULT_MATRIX_REQUESTS
    seed: int = DEFAULT_SEED
    channels: int = DEFAULT_MATRIX_CHANNELS

    def __post_init__(self) -> None:
        get_attacker(self.attack)  # unknown attackers fail fast, with a hint
        resolve_scheme(self.level)
        if not self.workloads:
            raise ConfigurationError("an attack cell needs at least one workload")
        unknown = [name for name in self.workloads if name not in SPEC_PROFILES]
        if unknown:
            raise ConfigurationError(f"unknown workloads: {unknown}")
        if self.num_requests < 1:
            raise ConfigurationError("num_requests must be positive")

    @property
    def benchmark(self) -> str:
        """Manifest label for the cell's workload suite."""
        return "+".join(self.workloads)

    @property
    def machine(self) -> MachineConfig:
        """The machine configuration the captures run on."""
        return MachineConfig(channels=self.channels)

    @property
    def cores(self) -> int:
        """Captures are single-core (manifest bookkeeping field)."""
        return 1

    def to_jsonable(self) -> dict:
        """The cell spec as a canonical JSON-ready dict."""
        return {
            "attack": self.attack,
            "level": self.level,
            "workloads": list(self.workloads),
            "num_requests": self.num_requests,
            "seed": self.seed,
            "channels": self.channels,
        }

    def digest(self) -> str:
        """Content hash of the spec plus the attack schema version."""
        payload = {"schema": ATTACK_SCHEMA_VERSION, "spec": self.to_jsonable()}
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def execute(self) -> AttackOutcome:
        """Capture the scheme's bus traffic and run the attacker over it.

        Passive attackers get ``seeds_needed`` captures per workload at
        consecutive seeds; active attackers (``seeds_needed == 0``) drive
        the functional stack themselves and get an empty capture map.
        """
        attacker = get_attacker(self.attack)
        captures = {
            workload: tuple(
                capture_workload(
                    self.level,
                    workload,
                    self.num_requests,
                    self.seed + offset,
                    self.channels,
                )
                for offset in range(attacker.seeds_needed)
            )
            for workload in self.workloads
        }
        observed = AttackInput(
            scheme=self.level, channels=self.channels, captures=captures
        )
        return attacker.attack(observed)


class AttackCache(JsonFileCache):
    """Content-addressed persistent store of attack-cell outcomes.

    One JSON file per cell digest, mirroring
    :class:`~repro.experiments.executor.ResultCache`: every entry embeds
    the schema token and the spec it was computed from, so stale schemas,
    collisions and damage all degrade to a miss.
    """

    def path_for(self, spec: AttackCellSpec) -> Path:
        """Where this cell's outcome lives (whether or not it exists yet)."""
        return self.directory / f"{spec.digest()}.json"

    def get(self, spec: AttackCellSpec) -> AttackOutcome | None:
        """The cached outcome for ``spec``, or None on any miss or damage."""
        path = self.path_for(spec)
        payload = self.read_json(path)
        if payload is None or payload.get("schema") != ATTACK_SCHEMA_VERSION:
            return None
        if payload.get("spec") != spec.to_jsonable():
            return None
        try:
            outcome = AttackOutcome.from_jsonable(payload["result"])
        except (ValueError, KeyError, TypeError):
            return None
        self.touch(path)
        return outcome

    def put(self, spec: AttackCellSpec, outcome: AttackOutcome) -> Path:
        """Persist ``outcome`` for ``spec``; returns the entry's path."""
        payload = {
            "schema": ATTACK_SCHEMA_VERSION,
            "spec": spec.to_jsonable(),
            "result": outcome.to_jsonable(),
        }
        return self.write_json(self.path_for(spec), payload)


# Process-lifetime outcome cache, shared across matrix runs like
# runner._cache is shared across table/figure regenerations.
_memory: dict[str, AttackOutcome] = {}


def clear_memory() -> None:
    """Drop the in-process outcome cache (the disk cache stays)."""
    _memory.clear()


def _disk_cache() -> AttackCache | None:
    """The persistent attack-cell cache per runner config, or None."""
    config = runner.get_config()
    if not config.cache_enabled:
        return None
    return AttackCache(config.cache_dir / "attacks", max_bytes=config.cache_bytes)


def prefetch_cells(
    specs: list[AttackCellSpec], label: str = "matrix", progress=None
) -> RunManifest:
    """Resolve every cell (cache or execution), fanning cold cells out.

    Mirrors :func:`repro.experiments.runner.prefetch` for attack cells:
    outcomes populate the in-process dict and the persistent attack cache,
    the sweep manifest lands under ``<cache-dir>/manifests/<label>.json``,
    and ``--profile`` runs the sweep serially under cProfile + event
    accounting with hotspot reports next to the manifest.
    """
    config = runner.get_config()
    if config.profile:
        return _prefetch_profiled(specs, label)
    parallel = ParallelRunner(
        workers=config.workers, cache=_disk_cache(), memory=_memory
    )
    parallel.run(list(specs), label=label, progress=progress)
    manifest = parallel.manifest
    assert manifest is not None
    if config.cache_enabled:
        manifest.write(config.cache_dir / "manifests" / f"{label}.json")
    return manifest


def _prefetch_profiled(specs: list[AttackCellSpec], label: str) -> RunManifest:
    """Profiled cell sweep: serial, in-process, hotspot reports on disk."""
    from repro.sim import profiling

    config = runner.get_config()
    parallel = ParallelRunner(workers=1, cache=_disk_cache(), memory=_memory)
    with profiling.capture() as session:
        parallel.run(list(specs), label=label)
    manifest = parallel.manifest
    assert manifest is not None
    manifest_dir = config.cache_dir / "manifests"
    if config.cache_enabled:
        manifest.write(manifest_dir / f"{label}.json")
    json_path, text_path = session.write_reports(manifest_dir, label)
    print(
        f"[profile] {label}: {session.accountant.events} events in "
        f"{session.wall_s:.3f} s -> {json_path} / {text_path}"
    )
    return manifest


@dataclass(frozen=True)
class MatrixCell:
    """One resolved matrix cell: outcome, verdict and the trait prediction."""

    scheme: str
    attack: str
    outcome: AttackOutcome
    #: What :func:`~repro.analysis.leakage.expected_leakage` predicts for
    #: this (scheme, attack) pair via the attacker's ``expects_leak``.
    expected_leak: bool
    #: The attacker's advantage threshold for calling the scheme leaky.
    threshold: float

    @property
    def leaked(self) -> bool:
        """Measured verdict: advantage at or above the attack's threshold."""
        return self.outcome.advantage >= self.threshold

    @property
    def agrees(self) -> bool:
        """Whether the measured verdict matches the trait prediction."""
        return self.leaked == self.expected_leak


@dataclass
class MatrixResult:
    """The full scheme×attack sweep plus its execution manifest."""

    workloads: tuple[str, ...]
    num_requests: int
    seed: int
    channels: int
    cells: list[MatrixCell]
    manifest: RunManifest | None = None

    def schemes(self) -> list[str]:
        """Scheme names in first-appearance (registry) order."""
        return list(dict.fromkeys(cell.scheme for cell in self.cells))

    def attacks(self) -> list[str]:
        """Attack names in first-appearance (registry) order."""
        return list(dict.fromkeys(cell.attack for cell in self.cells))

    def cell(self, scheme: str, attack: str) -> MatrixCell:
        """The single cell at (scheme, attack); KeyError if absent."""
        for cell in self.cells:
            if cell.scheme == scheme and cell.attack == attack:
                return cell
        raise KeyError((scheme, attack))

    @property
    def agreement(self) -> tuple[int, int]:
        """``(agreeing_cells, total_cells)`` against the trait predictions."""
        return sum(1 for cell in self.cells if cell.agrees), len(self.cells)

    def check_orderings(self) -> list[tuple[str, bool]]:
        """Evaluate the paper's security orderings over the measured cells.

        Three claims, each skipped (absent from the list) when the sweep
        did not include the cells it needs:

        1. every observable wire the fingerprinting attacker is *expected*
           to beat (plaintext/ECB-style and encrypted-data-only schemes)
           actually leaks above threshold;
        2. ObfusMem's counter-mode wire drives the address/type/footprint
           attackers to within 0.15 of random guessing;
        3. the rebuild-timing attacker flags exactly the schemes carrying
           :data:`~repro.schemes.stages.TRAIT_REBUILD_BURSTS`.
        """
        checks: list[tuple[str, bool]] = []
        fingerprint = [cell for cell in self.cells if cell.attack == "fingerprint"]
        expected_hot = [cell for cell in fingerprint if cell.expected_leak]
        if expected_hot:
            checks.append(
                (
                    "observable wires leak to fingerprinting",
                    all(cell.leaked for cell in expected_hot),
                )
            )
        address_attacks = ("fingerprint", "type_recovery", "footprint")
        obfus = [
            cell
            for cell in self.cells
            if cell.scheme.startswith("obfusmem") and cell.attack in address_attacks
        ]
        if obfus:
            checks.append(
                (
                    "obfusmem address/type/footprint advantage ~ random guess",
                    all(cell.outcome.advantage <= 0.15 for cell in obfus),
                )
            )
        timing = [cell for cell in self.cells if cell.attack == "rebuild_timing"]
        if timing:
            checks.append(
                (
                    "rebuild-timing flags exactly the bursty ORAM backends",
                    all(
                        cell.leaked
                        == (TRAIT_REBUILD_BURSTS in resolve_scheme(cell.scheme).traits)
                        for cell in timing
                    ),
                )
            )
        return checks


def matrix_specs(
    schemes: list[str] | None = None,
    attacks: list[str] | None = None,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    num_requests: int = DEFAULT_MATRIX_REQUESTS,
    seed: int = DEFAULT_SEED,
    channels: int = DEFAULT_MATRIX_CHANNELS,
) -> list[AttackCellSpec]:
    """The (scheme × attack) grid as cell specs, in deterministic order.

    ``None`` for ``schemes``/``attacks`` means the full respective
    registry; unknown names fail fast with close-match hints.
    """
    scheme_list = list(schemes) if schemes is not None else scheme_names()
    attack_list = list(attacks) if attacks is not None else attacker_names()
    return [
        AttackCellSpec(
            attack=attack,
            level=scheme,
            workloads=tuple(workloads),
            num_requests=num_requests,
            seed=seed,
            channels=channels,
        )
        for scheme in scheme_list
        for attack in attack_list
    ]


def run(
    schemes: list[str] | None = None,
    attacks: list[str] | None = None,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    num_requests: int = DEFAULT_MATRIX_REQUESTS,
    seed: int = DEFAULT_SEED,
    channels: int = DEFAULT_MATRIX_CHANNELS,
    progress=None,
) -> MatrixResult:
    """Run the scheme×attack sweep and assemble the verdict matrix."""
    specs = matrix_specs(schemes, attacks, workloads, num_requests, seed, channels)
    manifest = prefetch_cells(specs, label="matrix", progress=progress)
    cells = []
    for spec in specs:
        outcome = _memory[spec.digest()]
        attacker = get_attacker(spec.attack)
        expected = expected_leakage(resolve_scheme(spec.level))
        cells.append(
            MatrixCell(
                scheme=spec.level,
                attack=spec.attack,
                outcome=outcome,
                expected_leak=attacker.expects_leak(expected),
                threshold=attacker.leak_threshold,
            )
        )
    return MatrixResult(
        workloads=tuple(workloads),
        num_requests=num_requests,
        seed=seed,
        channels=channels,
        cells=cells,
        manifest=manifest,
    )


def format_matrix(result: MatrixResult) -> str:
    """Render the matrix as a fixed-width table with a verdict legend.

    Each cell shows the normalized advantage and the verdict mark
    (``+`` leak / ``-`` resist); a trailing ``*`` flags disagreement with
    the trait-derived expectation.
    """
    schemes = result.schemes()
    attacks = result.attacks()
    columns = [
        TableColumn("scheme", max(6, *(len(name) for name in schemes)), "<"),
        *[TableColumn(name, max(len(name), 7)) for name in attacks],
        TableColumn("agree", 5),
    ]
    rows = []
    for scheme in schemes:
        row = [scheme]
        agreeing = total = 0
        for attack in attacks:
            cell = result.cell(scheme, attack)
            mark = "+" if cell.leaked else "-"
            flag = "" if cell.agrees else "*"
            row.append(f"{cell.outcome.advantage:.2f}{mark}{flag}")
            agreeing += cell.agrees
            total += 1
        row.append(f"{agreeing}/{total}")
        rows.append(row)
    legend = (
        "cells: advantage with verdict (+ leak / - resist at the attack's "
        "threshold); * = disagrees with expected_leakage"
    )
    return format_table(columns, rows) + "\n" + legend


def main(argv: list[str] | None = None) -> None:
    """Run the leakage matrix and print the report (script entry point).

    Exits non-zero when any of the paper's security orderings
    (:meth:`MatrixResult.check_orderings`) fails over the selected cells.
    """
    parser = argparse.ArgumentParser(
        prog="repro.experiments.matrix",
        description="scheme x attack leakage matrix",
    )
    runner.add_runner_arguments(parser)
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=None,
        help="scheme subset (default: every registered scheme)",
    )
    parser.add_argument(
        "--attacks",
        nargs="+",
        default=None,
        help="attacker subset (default: every registered attacker)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        help=f"workload suite (default: {' '.join(DEFAULT_WORKLOADS)})",
    )
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_MATRIX_REQUESTS,
        help="requests per capture",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--channels", type=int, default=DEFAULT_MATRIX_CHANNELS,
        help="memory channels for the captures",
    )
    parser.add_argument(
        "--csv", default=None, help="also write the matrix as CSV to this path"
    )
    args = parser.parse_args(argv)
    runner.configure_from_args(args)
    result = run(
        schemes=args.schemes,
        attacks=args.attacks,
        workloads=tuple(args.workloads),
        num_requests=args.requests,
        seed=args.seed,
        channels=args.channels,
    )
    title = (
        f"Leakage matrix — {len(result.schemes())} schemes x "
        f"{len(result.attacks())} attacks over {'+'.join(result.workloads)} "
        f"({result.num_requests} requests, {result.channels} channels)"
    )
    print(title)
    print(format_matrix(result))
    agreeing, total = result.agreement
    print(f"expected-leakage agreement: {agreeing}/{total} cells")
    failures = []
    for claim, passed in result.check_orderings():
        print(f"{'OK  ' if passed else 'FAIL'} {claim}")
        if not passed:
            failures.append(claim)
    if result.manifest is not None:
        print(
            f"cells: {result.manifest.jobs} "
            f"({result.manifest.cache_misses} executed, "
            f"{result.manifest.cache_hits} cached) in "
            f"{result.manifest.wall_clock_s:.1f} s"
        )
    if args.csv:
        from repro.experiments.export import write_matrix

        path = write_matrix(result, args.csv)
        print(f"wrote {path}")
    if failures:
        raise SystemExit(f"{len(failures)} security ordering(s) failed")


if __name__ == "__main__":
    main()
