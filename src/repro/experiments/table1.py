"""Table 1 — characteristics of the evaluated benchmarks.

Regenerates the paper's Table 1 (IPC, LLC MPKI, average gap between memory
requests) by simulating each calibrated synthetic workload on the
unprotected baseline machine and measuring the same three quantities.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.experiments.executor import JobSpec
from repro.experiments.runner import (
    DEFAULT_REQUESTS,
    DEFAULT_SEED,
    TableColumn,
    add_runner_arguments,
    cached_run,
    configure_from_args,
    format_table,
    prefetch,
    select_benchmarks,
)
from repro.system.config import MachineConfig, ProtectionLevel


@dataclass(frozen=True)
class Table1Row:
    benchmark: str
    measured_ipc: float
    measured_mpki: float
    measured_gap_ns: float
    paper_ipc: float
    paper_mpki: float
    paper_gap_ns: float

    @property
    def gap_error_pct(self) -> float:
        """Relative error of the measured gap vs the paper's (percent)."""
        return 100.0 * (self.measured_gap_ns / self.paper_gap_ns - 1.0)


def run(
    benchmarks: list[str] | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
) -> list[Table1Row]:
    """Measure Table 1's three characteristics per benchmark."""
    rows = []
    machine = MachineConfig()
    names = select_benchmarks(benchmarks)
    prefetch(
        [
            JobSpec(name, ProtectionLevel.UNPROTECTED, machine, num_requests, seed)
            for name in names
        ],
        label="table1",
    )
    for name in names:
        profile = SPEC_PROFILES[name]
        result = cached_run(
            name, ProtectionLevel.UNPROTECTED, machine, num_requests, seed
        )
        # MPKI is fixed by trace construction (instructions per request);
        # IPC and gap are measured from the simulation.
        rows.append(
            Table1Row(
                benchmark=name,
                measured_ipc=result.ipc(machine.cpu_clock_ghz),
                measured_mpki=1000.0 / profile.instructions_per_request,
                measured_gap_ns=result.average_gap_ns,
                paper_ipc=profile.ipc,
                paper_mpki=profile.llc_mpki,
                paper_gap_ns=profile.avg_gap_ns,
            )
        )
    return rows


def format_results(rows: list[Table1Row]) -> str:
    """Render the rows as a fixed-width text table."""
    columns = [
        TableColumn("Benchmark", 12, "<"),
        TableColumn("IPC", 6),
        TableColumn("MPKI", 7),
        TableColumn("Gap(ns)", 9),
        TableColumn("pIPC", 6),
        TableColumn("pMPKI", 7),
        TableColumn("pGap(ns)", 9),
        TableColumn("gap err%", 9),
    ]
    body = [
        [
            row.benchmark,
            f"{row.measured_ipc:.2f}",
            f"{row.measured_mpki:.2f}",
            f"{row.measured_gap_ns:.1f}",
            f"{row.paper_ipc:.2f}",
            f"{row.paper_mpki:.2f}",
            f"{row.paper_gap_ns:.1f}",
            f"{row.gap_error_pct:+.1f}",
        ]
        for row in rows
    ]
    return format_table(columns, body)


def main(argv: list[str] | None = None) -> None:
    """Print the regenerated table (script entry point)."""
    parser = argparse.ArgumentParser(prog="repro.experiments.table1")
    add_runner_arguments(parser)
    configure_from_args(parser.parse_args(argv))
    print("Table 1 — benchmark characteristics (measured vs paper 'p' columns)")
    print(format_results(run()))


if __name__ == "__main__":
    main()
