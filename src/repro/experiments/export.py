"""CSV export for every experiment result type.

Each ``write_*`` function renders one experiment's structured result to a
CSV file so the series can be plotted or diffed outside Python.  The column
layout mirrors the corresponding table/figure, with paper reference values
in ``paper_*`` columns where the paper publishes per-row numbers.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.energy import EnergyResult
from repro.experiments.figure4 import Figure4Result
from repro.experiments.figure5 import Figure5Result
from repro.experiments.matrix import MatrixResult
from repro.experiments.pareto import FrontierPoint
from repro.experiments.table1 import Table1Row
from repro.experiments.table3 import Table3Result
from repro.experiments.table4 import Table4Result


def _write(path: str | Path, header: list[str], rows: list[list]) -> Path:
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def write_table1(rows: list[Table1Row], path: str | Path) -> Path:
    """Write Table 1 rows to CSV; returns the path."""
    return _write(
        path,
        [
            "benchmark",
            "ipc",
            "mpki",
            "gap_ns",
            "paper_ipc",
            "paper_mpki",
            "paper_gap_ns",
        ],
        [
            [
                row.benchmark,
                f"{row.measured_ipc:.4f}",
                f"{row.measured_mpki:.4f}",
                f"{row.measured_gap_ns:.4f}",
                row.paper_ipc,
                row.paper_mpki,
                row.paper_gap_ns,
            ]
            for row in rows
        ],
    )


def write_table3(result: Table3Result, path: str | Path) -> Path:
    """Write Table 3 rows to CSV; returns the path."""
    return _write(
        path,
        [
            "benchmark",
            "oram_overhead_pct",
            "obfusmem_auth_overhead_pct",
            "speedup",
            "paper_oram_pct",
            "paper_obfusmem_pct",
        ],
        [
            [
                row.benchmark,
                f"{row.oram_overhead_pct:.4f}",
                f"{row.obfusmem_auth_overhead_pct:.4f}",
                f"{row.speedup:.4f}",
                row.paper_oram_pct,
                row.paper_obfusmem_pct,
            ]
            for row in result.rows
        ],
    )


def write_figure4(result: Figure4Result, path: str | Path) -> Path:
    """Write Figure 4 rows to CSV; returns the path."""
    return _write(
        path,
        ["benchmark", "encryption_pct", "obfusmem_pct", "obfusmem_auth_pct"],
        [
            [
                row.benchmark,
                f"{row.encryption_pct:.4f}",
                f"{row.obfusmem_pct:.4f}",
                f"{row.obfusmem_auth_pct:.4f}",
            ]
            for row in result.rows
        ],
    )


def write_figure5(result: Figure5Result, path: str | Path) -> Path:
    """Write Figure 5 points to CSV; returns the path."""
    return _write(
        path,
        ["channels", "injection", "authenticated", "avg_overhead_pct"],
        [
            [
                point.channels,
                point.injection.value,
                int(point.authenticated),
                f"{point.avg_overhead_pct:.4f}",
            ]
            for point in sorted(
                result.points, key=lambda p: (p.channels, p.injection.value, p.authenticated)
            )
        ],
    )


def write_table4(result: Table4Result, path: str | Path) -> Path:
    """Write Table 4 rows to CSV; returns the path."""
    u, o = result.unprotected, result.obfusmem
    return _write(
        path,
        ["aspect", "unprotected", "obfusmem", "oram"],
        [
            ["spatial_locality", u.spatial_locality, o.spatial_locality, ""],
            ["ciphertext_repeats", u.ciphertext_repeats, o.ciphertext_repeats, ""],
            ["type_accuracy", u.type_accuracy, o.type_accuracy, 0.5],
            ["footprint_error", u.footprint_error, o.footprint_error, ""],
            ["channel_coactivity", u.channel_coactivity, o.channel_coactivity, ""],
            ["exe_overhead_pct", 0.0, result.obfusmem_overhead_pct, result.oram_overhead_pct],
            ["storage_overhead_pct", 0.0, 0.0, result.oram.capacity_overhead_pct],
            [
                "write_amplification",
                1.0,
                result.obfusmem_write_amplification,
                result.oram.blocks_per_access / 2,
            ],
        ],
    )


def write_matrix(result: MatrixResult, path: str | Path) -> Path:
    """Write the scheme×attack leakage matrix cells to CSV; returns the path."""
    return _write(
        path,
        [
            "scheme",
            "attack",
            "advantage",
            "baseline",
            "score",
            "threshold",
            "leaked",
            "expected_leak",
            "agrees",
        ],
        [
            [
                cell.scheme,
                cell.attack,
                f"{cell.outcome.advantage:.4f}",
                f"{cell.outcome.baseline:.4f}",
                f"{cell.outcome.score:.4f}",
                f"{cell.threshold:.2f}",
                int(cell.leaked),
                int(cell.expected_leak),
                int(cell.agrees),
            ]
            for cell in result.cells
        ],
    )


def write_pareto(points: list[FrontierPoint], path: str | Path) -> Path:
    """Write Pareto frontier points (or the full cloud) to CSV.

    Pass :meth:`ParetoAggregator.frontier` for the non-dominated report or
    :meth:`ParetoAggregator.points` for every design point; returns the path.
    """
    return _write(
        path,
        [
            "scheme",
            "benchmark",
            "channels",
            "num_requests",
            "seed",
            "cores",
            "overhead_pct",
            "leakage",
            "energy_pj_per_access",
            "execution_time_ns",
            "digest",
        ],
        [
            [
                point.scheme,
                point.benchmark,
                point.channels,
                point.num_requests,
                point.seed,
                point.cores,
                f"{point.overhead_pct:.4f}",
                f"{point.leakage:.4f}",
                f"{point.energy_pj_per_access:.4f}",
                f"{point.execution_time_ns:.4f}",
                point.digest,
            ]
            for point in points
        ],
    )


def write_energy(result: EnergyResult, path: str | Path) -> Path:
    """Write the §5.2 quantities to CSV; returns the path."""
    a = result.analytical
    return _write(
        path,
        ["quantity", "oram", "obfusmem"],
        [
            ["energy_factor", a.oram_energy_factor, a.obfusmem_energy_factor],
            ["pads_worst", a.oram_pads_per_access, a.obfusmem_pads_worst_case],
            ["pads_best", a.oram_pads_per_access, a.obfusmem_pads_best_case],
            ["lifetime_improvement", 1.0, a.lifetime_improvement],
            [
                "measured_pads_per_access",
                result.oram_measured.pads_per_access,
                result.obfusmem_measured.pads_per_access,
            ],
            [
                "measured_cell_writes_per_access",
                result.oram_measured.cell_writes_per_access,
                result.obfusmem_measured.cell_writes_per_access,
            ],
        ],
    )
