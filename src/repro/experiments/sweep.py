"""Fleet-scale design-space sweeps: declarative specs, prefix-sharing waves.

The repo's execution machinery — :class:`~repro.experiments.executor.ParallelRunner`,
the persistent result/trace caches, the :class:`~repro.experiments.checkpoints.CheckpointStore`
— answered the paper's six tables one hand-written module at a time.  This
module turns it into an instrument: describe *thousands* of design points
declaratively, compile them to deduplicated :class:`~repro.experiments.executor.JobSpec`\\ s,
and execute them on a schedule that **plans** the sharing the lower layers
only make possible.

Three pieces:

* :class:`SweepSpec` — a declarative sweep: named axes (``benchmark``,
  ``level``, ``num_requests``, ``seed``, ``cores`` and any
  ``machine.<field>`` knob of :class:`~repro.system.config.MachineConfig`)
  combined by ``grid`` (cartesian product, via the
  :func:`~repro.experiments.executor.sweep_specs` primitive), ``zip``
  (element-wise) or ``random`` (seeded sampling of the grid).  Compilation
  canonicalizes duplicate axis values, dedups design points by content
  digest, and can add the ``unprotected`` baseline anchor each
  configuration needs for overhead reporting.

* the **prefix-sharing scheduler** (:func:`plan_sweep` /
  :func:`run_sweep`) — the performance core.  Compiled specs are grouped
  into *families* by :meth:`~repro.experiments.executor.JobSpec.prefix_digest`
  (everything but ``num_requests``); members of a family simulate the same
  world over a shared trace prefix.  The plan orders execution in
  topological *waves*: wave 0 runs each family's shortest point cold and
  seeds the checkpoint store, wave *k+1* forks each next-longer point from
  the snapshots wave *k* left behind, so a family of request counts
  ``n_1 < n_2 < ... < n_k`` costs roughly ``n_k`` events instead of
  ``sum(n_i)``.  A :class:`CostModel` decides per point whether forking is
  worth the checkpoint save/restore overhead (singleton families skip the
  store entirely), and each wave is sorted so same-workload points land
  adjacent — trace-cache-aware batching.

* the streaming Pareto aggregation lives in
  :mod:`repro.experiments.pareto`: :func:`run_sweep` streams every
  resolved result into a :class:`~repro.experiments.pareto.ParetoAggregator`
  so the overhead/leakage/energy frontier is ready the moment the last
  wave lands.

CLI: ``python -m repro sweep --spec sweep.json [--workers N] [--pareto
out.csv] [--dry-run]``.  ``--dry-run`` prints the planned waves and
warm-start counts without simulating anything.
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.errors import ConfigurationError
from repro.experiments.executor import (
    DEFAULT_REQUESTS,
    DEFAULT_SEED,
    JobSpec,
    ParallelRunner,
    ResultCache,
    RunManifest,
    _dataclass_from_jsonable,
    canonicalize_axis,
    drain_sweep_warnings,
    sweep_specs,
)
from repro.schemes import resolve_scheme, scheme_name_of
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import RunResult

#: Version token embedded in sweep-spec files; unknown versions are
#: rejected loudly rather than silently compiled to the wrong grid.
SWEEP_SCHEMA_VERSION = 1

#: Axis names addressing :class:`JobSpec` scalars directly.
SCALAR_AXES = ("benchmark", "level", "num_requests", "seed", "cores")

#: Prefix addressing :class:`MachineConfig` fields (``machine.channels``).
MACHINE_AXIS_PREFIX = "machine."

_MODES = ("grid", "zip", "random")


def _machine_field_names() -> set[str]:
    """Every MachineConfig field addressable as a ``machine.<name>`` axis."""
    import dataclasses

    return {f.name for f in dataclasses.fields(MachineConfig)}


@dataclass(frozen=True)
class SweepAxis:
    """One named axis of a sweep: a knob and the values it ranges over."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")
        if self.name in SCALAR_AXES:
            self._validate_scalar()
        elif self.name.startswith(MACHINE_AXIS_PREFIX):
            fname = self.name[len(MACHINE_AXIS_PREFIX) :]
            if fname not in _machine_field_names():
                known = sorted(_machine_field_names())
                raise ConfigurationError(
                    f"unknown machine axis {self.name!r}; machine fields: {known}"
                )
        else:
            raise ConfigurationError(
                f"unknown axis {self.name!r}; choose from {SCALAR_AXES} "
                f"or '{MACHINE_AXIS_PREFIX}<field>'"
            )

    def _validate_scalar(self) -> None:
        if self.name == "benchmark":
            unknown = [v for v in self.values if v not in SPEC_PROFILES]
            if unknown:
                raise ConfigurationError(f"unknown benchmarks: {unknown}")
        elif self.name == "level":
            for value in self.values:
                resolve_scheme(value)  # fails fast with a close-match hint
        else:
            for value in self.values:
                if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                    raise ConfigurationError(
                        f"axis {self.name!r} needs positive integers, got {value!r}"
                    )


@dataclass(frozen=True)
class CompiledSweep:
    """A sweep spec flattened to executable jobs, with its audit trail."""

    spec: "SweepSpec"
    #: Deduplicated job specs, in deterministic compile order (baseline
    #: anchors, when added, come last).
    jobs: tuple[JobSpec, ...]
    #: Design points described by the spec before digest-level dedup.
    requested: int
    #: Digest-identical points removed by dedup.
    duplicates_dropped: int
    #: ``unprotected`` anchor jobs added for overhead reporting.
    baselines_added: int
    #: Compile-time notices, destined for the run manifest.
    warnings: tuple[str, ...]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative design-space sweep over simulation knobs.

    ``mode`` selects how axes combine: ``grid`` takes the cartesian
    product, ``zip`` walks all axes in lockstep (length-1 axes broadcast),
    ``random`` draws ``samples`` seeded points from the grid.  Axes may
    address :class:`~repro.experiments.executor.JobSpec` scalars
    (``benchmark``, ``level``, ``num_requests``, ``seed``, ``cores``) or
    any :class:`~repro.system.config.MachineConfig` field via
    ``machine.<field>`` (enum values spelled as their JSON form, e.g.
    ``"opt"`` for a channel-injection mode).

    With ``baselines`` set (the default), compilation appends one
    ``unprotected`` job per distinct (benchmark, machine, num_requests,
    seed, cores) configuration so the Pareto report can compute overheads
    without a separate baseline sweep.
    """

    axes: tuple[SweepAxis, ...]
    mode: str = "grid"
    samples: int = 0
    sample_seed: int = DEFAULT_SEED
    baselines: bool = True

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(f"unknown sweep mode {self.mode!r}; one of {_MODES}")
        if not self.axes:
            raise ConfigurationError("a sweep needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axes: {sorted(names)}")
        for required in ("benchmark", "level"):
            if required not in names:
                raise ConfigurationError(
                    f"a sweep needs a {required!r} axis (a single value is fine)"
                )
        if self.mode == "random" and self.samples < 1:
            raise ConfigurationError("random mode needs samples >= 1")
        if self.mode == "zip":
            lengths = {len(axis.values) for axis in self.axes if len(axis.values) > 1}
            if len(lengths) > 1:
                raise ConfigurationError(
                    f"zip mode needs equal-length axes (or length 1); got {sorted(lengths)}"
                )

    # -- wire form -----------------------------------------------------------

    def to_jsonable(self) -> dict:
        """The spec as a JSON-ready dict (inverse of :meth:`from_jsonable`)."""
        return {
            "schema": SWEEP_SCHEMA_VERSION,
            "mode": self.mode,
            "axes": {axis.name: list(axis.values) for axis in self.axes},
            "samples": self.samples,
            "sample_seed": self.sample_seed,
            "baselines": self.baselines,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "SweepSpec":
        """Build a spec from its JSON form; raises ``ConfigurationError``."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"expected a sweep-spec object, got {type(payload).__name__}"
            )
        schema = payload.get("schema", SWEEP_SCHEMA_VERSION)
        if schema != SWEEP_SCHEMA_VERSION:
            raise ConfigurationError(
                f"sweep schema {schema!r} != {SWEEP_SCHEMA_VERSION}"
            )
        axes_payload = payload.get("axes")
        if not isinstance(axes_payload, dict) or not axes_payload:
            raise ConfigurationError("a sweep spec needs a non-empty 'axes' object")
        known = {"schema", "mode", "axes", "samples", "sample_seed", "baselines"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown sweep-spec fields: {unknown}")
        axes = tuple(
            SweepAxis(name, tuple(values if isinstance(values, list) else [values]))
            for name, values in axes_payload.items()
        )
        return cls(
            axes=axes,
            mode=str(payload.get("mode", "grid")),
            samples=int(payload.get("samples", 0)),
            sample_seed=int(payload.get("sample_seed", DEFAULT_SEED)),
            baselines=bool(payload.get("baselines", True)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        """Read a spec from a JSON file; raises ``ConfigurationError``."""
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise ConfigurationError(f"cannot read sweep spec {path}: {exc}") from None
        except ValueError as exc:
            raise ConfigurationError(f"sweep spec {path} is not JSON: {exc}") from None
        return cls.from_jsonable(payload)

    # -- compilation ---------------------------------------------------------

    def _canonical_axes(self) -> list[SweepAxis]:
        """Axes with duplicate values removed (queuing manifest warnings)."""
        canonical = []
        for axis in self.axes:
            key = scheme_name_of if axis.name == "level" else None
            if axis.name.startswith(MACHINE_AXIS_PREFIX):
                key = lambda v: json.dumps(v, sort_keys=True)  # noqa: E731
            values = canonicalize_axis(axis.name, list(axis.values), key=key)
            canonical.append(SweepAxis(axis.name, tuple(values)))
        return canonical

    def _points(self) -> list[dict]:
        """Every described design point as an axis-name -> value dict."""
        axes = self._canonical_axes()
        if self.mode == "zip":
            length = max(len(axis.values) for axis in axes)
            rows = []
            for i in range(length):
                rows.append(
                    {
                        axis.name: axis.values[i if len(axis.values) > 1 else 0]
                        for axis in axes
                    }
                )
            return rows
        if self.mode == "random":
            rng = random.Random(self.sample_seed)
            return [
                {axis.name: rng.choice(axis.values) for axis in axes}
                for _ in range(self.samples)
            ]
        names = [axis.name for axis in axes]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(axis.values for axis in axes))
        ]

    @staticmethod
    def _machine_for(point: dict) -> MachineConfig:
        """Build the point's machine config from its ``machine.*`` entries."""
        payload = {
            name[len(MACHINE_AXIS_PREFIX) :]: value
            for name, value in point.items()
            if name.startswith(MACHINE_AXIS_PREFIX)
        }
        if not payload:
            return MachineConfig()
        return _dataclass_from_jsonable(MachineConfig, payload)

    def compile(self) -> CompiledSweep:
        """Flatten the spec to deduplicated jobs plus its audit trail.

        Grid mode rides the :func:`~repro.experiments.executor.sweep_specs`
        primitive: for each combination of the non-(benchmark, level) axes
        the (benchmark x level) inner grid is built by that function, so
        the two layers cannot drift apart.  Every mode dedups the final
        job list by content digest and (optionally) appends ``unprotected``
        baseline anchors.
        """
        points = self._points()
        specs: list[JobSpec] = []
        if self.mode == "grid":
            benchmarks = [a for a in self._canonical_axes() if a.name == "benchmark"][0]
            levels = [a for a in self._canonical_axes() if a.name == "level"][0]
            outer_names = [
                a.name
                for a in self._canonical_axes()
                if a.name not in ("benchmark", "level")
            ]
            seen_outer = set()
            for point in points:
                outer_key = json.dumps(
                    {name: point[name] for name in outer_names}, sort_keys=True
                )
                if outer_key in seen_outer:
                    continue
                seen_outer.add(outer_key)
                specs.extend(
                    sweep_specs(
                        list(benchmarks.values),
                        list(levels.values),
                        machine=self._machine_for(point),
                        num_requests=int(point.get("num_requests", DEFAULT_REQUESTS)),
                        seed=int(point.get("seed", DEFAULT_SEED)),
                        cores=int(point.get("cores", 1)),
                    )
                )
        else:
            for point in points:
                specs.append(
                    JobSpec(
                        benchmark=point["benchmark"],
                        level=point["level"],
                        machine=self._machine_for(point),
                        num_requests=int(point.get("num_requests", DEFAULT_REQUESTS)),
                        seed=int(point.get("seed", DEFAULT_SEED)),
                        cores=int(point.get("cores", 1)),
                    )
                )
        requested = len(specs)
        deduped: list[JobSpec] = []
        seen: set[str] = set()
        for spec in specs:
            digest = spec.digest()
            if digest in seen:
                continue
            seen.add(digest)
            deduped.append(spec)
        duplicates = requested - len(deduped)
        warnings = drain_sweep_warnings()
        if duplicates:
            warnings.append(
                f"compile: dropped {duplicates} digest-identical design point(s)"
            )
        baselines_added = 0
        if self.baselines:
            for spec in list(deduped):
                anchor = JobSpec(
                    spec.benchmark,
                    ProtectionLevel.UNPROTECTED,
                    spec.machine,
                    spec.num_requests,
                    spec.seed,
                    spec.cores,
                )
                digest = anchor.digest()
                if digest not in seen:
                    seen.add(digest)
                    deduped.append(anchor)
                    baselines_added += 1
            if baselines_added:
                warnings.append(
                    f"compile: added {baselines_added} unprotected baseline anchor(s)"
                )
        return CompiledSweep(
            spec=self,
            jobs=tuple(deduped),
            requested=requested,
            duplicates_dropped=duplicates,
            baselines_added=baselines_added,
            warnings=tuple(warnings),
        )


# ---------------------------------------------------------------------------
# Prefix-sharing scheduler
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostModel:
    """Decides when forking from a checkpoint beats running cold.

    The decision is made at plan time from request counts alone (requests
    are the spec-level proxy for kernel events, which scale linearly with
    them).  Forking pays a fixed restore-and-retarget toll plus periodic
    snapshot saves, so tiny shared prefixes are not worth it: a point
    warm-starts only when the shared prefix clears both an absolute floor
    and a fraction of its own length.
    """

    #: Minimum shared-prefix length (requests) that can amortize one
    #: checkpoint restore + retarget.
    min_shared_requests: int = 100
    #: Minimum fraction of the point's own length the shared prefix must
    #: cover for the fork to matter.
    min_shared_fraction: float = 0.10
    #: Conservative kernel-events-per-request floor across schemes (an
    #: opaque ORAM backend runs ~2 events/request; wire schemes run 3-11).
    #: Sizing the probe slice from the floor guarantees several slice
    #: boundaries land inside even the lightest scheme's shared prefix.
    min_events_per_request: float = 2.0
    #: Trace-progress fraction at which seeding runs persist a snapshot.
    #: Saves cost a full world pickle each (milliseconds — comparable to
    #: simulating thousands of events), so each seeding member saves once,
    #: as late as the probe granularity can catch: the deeper the
    #: snapshot, the less of its prefix the next family member replays.
    save_milestones: tuple[float, ...] = (0.9,)

    def interval_for(self, plan: "SweepPlan") -> int | None:
        """A probe-slice interval sized to the plan's shortest fork.

        Slice boundaries are where progress is checked against
        :attr:`save_milestones`, so one must land between the last
        milestone and the end of even the *lightest* scheme's shortest
        seeding run (~``min_events_per_request`` events per request) — or
        that run finishes before ever observing the milestone and its
        family runs cold.  Pausing the engine this often is free; the
        50k-event default assumes full-length jobs and overshoots short
        sweep families entirely.  Returns ``None`` when the plan has no
        warm starts (the interval is then irrelevant).
        """
        shared = [
            job.shared_requests
            for wave in plan.waves
            for job in wave
            if job.warm_start
        ]
        if not shared:
            return None
        tail = 1.0 - max(self.save_milestones)
        events = min(shared) * self.min_events_per_request
        return max(32, int(events * tail / 2))

    def worth_forking(self, shared_requests: int, total_requests: int) -> bool:
        """True when forking from a ``shared_requests``-deep snapshot pays."""
        if shared_requests <= 0 or total_requests <= 0:
            return False
        return (
            shared_requests >= self.min_shared_requests
            and shared_requests / total_requests >= self.min_shared_fraction
        )


@dataclass(frozen=True)
class PlannedJob:
    """One scheduled design point: its family, wave and execution flavour."""

    spec: JobSpec
    #: The spec family (prefix digest) this point belongs to.
    family: str
    #: Topological wave index; wave *k* runs only after wave *k-1*.
    wave: int
    #: Whether the scheduler expects this point to fork from a snapshot a
    #: shorter family member left behind.
    warm_start: bool
    #: Planned fork depth in requests (the preceding member's length).
    shared_requests: int
    #: Whether the point runs through the checkpoint store at all (it
    #: forks, or a longer member will fork from its snapshots).
    use_store: bool
    #: Whether the point should persist snapshots as it runs — True only
    #: when the next family member is planned to fork from them; the
    #: family's deepest member reads the store but never writes it.
    save_snapshots: bool = False


@dataclass
class SweepPlan:
    """The scheduler's output: jobs ordered into warm-start waves."""

    waves: list[list[PlannedJob]]
    families: int
    singletons: int

    @property
    def jobs(self) -> int:
        """Total planned design points across all waves."""
        return sum(len(wave) for wave in self.waves)

    @property
    def warm_starts_planned(self) -> int:
        """Points the scheduler expects to fork from a checkpoint."""
        return sum(1 for wave in self.waves for job in wave if job.warm_start)

    @property
    def requests_total(self) -> int:
        """Requests a naive cold execution would simulate."""
        return sum(job.spec.num_requests for wave in self.waves for job in wave)

    @property
    def requests_shared(self) -> int:
        """Requests the warm-start schedule expects to skip."""
        return sum(
            job.shared_requests for wave in self.waves for job in wave if job.warm_start
        )

    def describe(self) -> str:
        """Human-readable plan summary (the ``--dry-run`` output)."""
        lines = [
            f"sweep plan: {self.jobs} jobs, {self.families} families "
            f"({self.singletons} singleton), {len(self.waves)} wave(s)",
            f"warm starts planned: {self.warm_starts_planned}",
            f"requests: {self.requests_total} cold, "
            f"~{self.requests_shared} shared via checkpoints "
            f"({100.0 * self.requests_shared / max(1, self.requests_total):.0f}%)",
        ]
        for index, wave in enumerate(self.waves):
            warm = sum(1 for job in wave if job.warm_start)
            stored = sum(1 for job in wave if job.use_store)
            workloads = len({(j.spec.benchmark, j.spec.seed, j.spec.cores) for j in wave})
            lines.append(
                f"  wave {index}: {len(wave)} job(s), {warm} warm-start, "
                f"{stored} through the store, {workloads} workload batch(es)"
            )
        return "\n".join(lines)


def _wave_sort_key(job: PlannedJob) -> tuple:
    """Trace-cache-aware batching: same-workload points land adjacent.

    Points sharing (benchmark, seed, cores, num_requests) replay one cached
    trace; sorting each wave by that key (then scheme, then digest) keeps
    them on the same stretch of the worker pool so the first one to run
    warms the persistent trace cache for its batch-mates.
    """
    spec = job.spec
    return (
        spec.benchmark,
        spec.seed,
        spec.cores,
        spec.num_requests,
        scheme_name_of(spec.level),
        spec.digest(),
    )


def plan_sweep(
    jobs: list[JobSpec] | tuple[JobSpec, ...],
    cost_model: CostModel | None = None,
) -> SweepPlan:
    """Group jobs into prefix families and order them into warm-start waves.

    Families (same :meth:`~repro.experiments.executor.JobSpec.prefix_digest`)
    are sorted shortest-first; member *k* is planned for wave *k* when the
    cost model judges its fork worthwhile, so every point's seed snapshot
    exists before the point runs.  Points whose fork is not worth the toll
    stay in the earliest wave consistent with their family's snapshot
    needs; singleton families bypass the checkpoint store entirely.
    """
    model = cost_model or CostModel()
    families: dict[str, list[JobSpec]] = {}
    for spec in jobs:
        families.setdefault(spec.prefix_digest(), []).append(spec)
    waves: dict[int, list[PlannedJob]] = {}
    singletons = 0
    for family, members in families.items():
        members = sorted(members, key=lambda spec: spec.num_requests)
        if len(members) == 1:
            singletons += 1
            waves.setdefault(0, []).append(
                PlannedJob(members[0], family, 0, False, 0, False)
            )
            continue
        warm_flags = [
            rank > 0
            and model.worth_forking(
                members[rank - 1].num_requests, spec.num_requests
            )
            for rank, spec in enumerate(members)
        ]
        depth = 0
        for rank, spec in enumerate(members):
            warm = warm_flags[rank]
            if warm:
                depth += 1
            saves = rank + 1 < len(members) and warm_flags[rank + 1]
            waves.setdefault(depth, []).append(
                PlannedJob(
                    spec=spec,
                    family=family,
                    wave=depth,
                    warm_start=warm,
                    shared_requests=members[rank - 1].num_requests if warm else 0,
                    use_store=warm or saves,
                    save_snapshots=saves,
                )
            )
    ordered = [sorted(waves[index], key=_wave_sort_key) for index in sorted(waves)]
    return SweepPlan(waves=ordered, families=len(families), singletons=singletons)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class SweepRun:
    """What one scheduled sweep execution produced."""

    plan: SweepPlan
    #: Result per job digest (every planned job resolves exactly once).
    results: dict[str, RunResult]
    #: Merged manifest over every wave batch, in execution order.
    manifest: RunManifest
    wall_clock_s: float

    def result_for(self, spec: JobSpec) -> RunResult:
        """The resolved result for one compiled spec; KeyError if absent."""
        return self.results[spec.digest()]


def run_sweep(
    compiled: CompiledSweep | list[JobSpec],
    workers: int = 1,
    cache: ResultCache | None = None,
    checkpoints=None,
    checkpoint_interval_events: int | None = None,
    cost_model: CostModel | None = None,
    label: str = "sweep",
    progress=None,
    aggregator=None,
) -> SweepRun:
    """Execute a compiled sweep on the prefix-sharing schedule.

    Each wave runs through :class:`~repro.experiments.executor.ParallelRunner`
    in two batches — checkpoint-store jobs (they fork and/or seed snapshots)
    and pure cold jobs — sharing one in-memory result dict and the given
    persistent ``cache``.  Wave *k+1* starts only after wave *k* finishes,
    so every planned warm start finds its seed snapshot.  Results are
    bit-identical to cold execution (the checkpoint protocol guarantees it;
    the sweep-scaling benchmark asserts it end to end).

    ``progress(record)`` streams each job's manifest record as it resolves;
    ``aggregator`` (a :class:`~repro.experiments.pareto.ParetoAggregator`)
    is fed every ``(spec, result)`` pair as waves land, keeping the Pareto
    fold streaming rather than post-hoc.
    """
    import time as _time

    if isinstance(compiled, CompiledSweep):
        jobs = list(compiled.jobs)
        warnings = list(compiled.warnings)
    else:
        jobs = list(compiled)
        warnings = []
    model = cost_model or CostModel()
    plan = plan_sweep(jobs, cost_model=model)
    if checkpoint_interval_events is None and checkpoints is not None:
        checkpoint_interval_events = model.interval_for(plan)
    started = _time.perf_counter()
    memory: dict[str, RunResult] = {}
    records = []
    results: dict[str, RunResult] = {}

    def run_batch(specs: list[JobSpec], store, milestones) -> None:
        if not specs:
            return
        runner = ParallelRunner(
            workers=workers,
            cache=cache,
            memory=memory,
            checkpoints=store,
            checkpoint_interval_events=checkpoint_interval_events,
            checkpoint_save_milestones=milestones,
        )
        batch_results = runner.run(specs, label=label, progress=progress)
        assert runner.manifest is not None
        records.extend(runner.manifest.records)
        for spec, result in zip(specs, batch_results):
            results[spec.digest()] = result
            if aggregator is not None:
                aggregator.add(spec, result)

    for wave in plan.waves:
        # Three execution flavours per wave: members that seed snapshots
        # for the next wave, members that only fork (the family's deepest),
        # and cold singletons that should skip the store's overhead.
        run_batch(
            [job.spec for job in wave if job.use_store and job.save_snapshots],
            checkpoints,
            model.save_milestones,
        )
        run_batch(
            [job.spec for job in wave if job.use_store and not job.save_snapshots],
            checkpoints,
            (),
        )
        run_batch([job.spec for job in wave if not job.use_store], None, None)

    wall_clock_s = _time.perf_counter() - started
    manifest = RunManifest(
        label=label,
        workers=workers,
        records=records,
        wall_clock_s=wall_clock_s,
        warnings=warnings,
    )
    return SweepRun(
        plan=plan, results=results, manifest=manifest, wall_clock_s=wall_clock_s
    )
