"""Figure 5 — impact of the channel count on ObfusMem overhead.

Sweeps 1/2/4/8 memory channels and compares the two inter-channel
dummy-injection strategies of §3.4 — UNOPT (replicate dummies on every
other channel) and OPT (inject only on idle channels) — with and without
authentication, each normalized to an unprotected system with the *same*
number of channels.  Paper peaks at 8 channels: UNOPT 18.8%/16.3%
(with/without auth), OPT 13.2%/10.1%.
"""

from __future__ import annotations

import argparse
import statistics
from dataclasses import dataclass, replace

from repro.core.config import ChannelInjection
from repro.experiments.executor import JobSpec
from repro.experiments.runner import (
    DEFAULT_SEED,
    TableColumn,
    add_runner_arguments,
    cached_run,
    configure_from_args,
    format_table,
    prefetch,
    select_benchmarks,
)
from repro.system.config import MachineConfig, ProtectionLevel

DEFAULT_CHANNELS = (1, 2, 4, 8)
DEFAULT_FIG5_REQUESTS = 1200  # per core; the sweep is 4x wider and 4-core
DEFAULT_FIG5_CORES = 4  # Table 2's CMP: multi-channel load needs multi-core


@dataclass(frozen=True)
class Figure5Point:
    channels: int
    injection: ChannelInjection
    authenticated: bool
    avg_overhead_pct: float


@dataclass(frozen=True)
class Figure5Result:
    points: list[Figure5Point]

    def series(self, injection: ChannelInjection, authenticated: bool) -> list[Figure5Point]:
        """All points of one (injection, auth) series, by channel count."""
        return sorted(
            (
                p
                for p in self.points
                if p.injection is injection and p.authenticated == authenticated
            ),
            key=lambda p: p.channels,
        )

    def point(
        self, channels: int, injection: ChannelInjection, authenticated: bool
    ) -> Figure5Point:
        """The single point at (channels, injection, auth); KeyError if absent."""
        for p in self.points:
            if (
                p.channels == channels
                and p.injection is injection
                and p.authenticated == authenticated
            ):
                return p
        raise KeyError((channels, injection, authenticated))


def run(
    benchmarks: list[str] | None = None,
    channel_counts: tuple[int, ...] = DEFAULT_CHANNELS,
    num_requests: int = DEFAULT_FIG5_REQUESTS,
    seed: int = DEFAULT_SEED,
    cores: int = DEFAULT_FIG5_CORES,
) -> Figure5Result:
    """Sweep channel counts and injection strategies (4-core by default)."""
    names = select_benchmarks(benchmarks)
    specs = []
    for channels in channel_counts:
        base_machine = MachineConfig(channels=channels)
        specs += [
            JobSpec(name, ProtectionLevel.UNPROTECTED, base_machine, num_requests, seed, cores)
            for name in names
        ]
        for injection in (ChannelInjection.UNOPT, ChannelInjection.OPT):
            machine = replace(base_machine, channel_injection=injection)
            for level in (ProtectionLevel.OBFUSMEM, ProtectionLevel.OBFUSMEM_AUTH):
                specs += [
                    JobSpec(name, level, machine, num_requests, seed, cores)
                    for name in names
                ]
    prefetch(specs, label="figure5")
    points = []
    for channels in channel_counts:
        base_machine = MachineConfig(channels=channels)
        baselines = {
            name: cached_run(
                name, ProtectionLevel.UNPROTECTED, base_machine, num_requests, seed,
                cores=cores,
            )
            for name in names
        }
        for injection in (ChannelInjection.UNOPT, ChannelInjection.OPT):
            machine = replace(base_machine, channel_injection=injection)
            for authenticated in (False, True):
                level = (
                    ProtectionLevel.OBFUSMEM_AUTH
                    if authenticated
                    else ProtectionLevel.OBFUSMEM
                )
                overheads = [
                    cached_run(
                        name, level, machine, num_requests, seed, cores=cores
                    ).overhead_pct(baselines[name])
                    for name in names
                ]
                points.append(
                    Figure5Point(
                        channels=channels,
                        injection=injection,
                        authenticated=authenticated,
                        avg_overhead_pct=statistics.mean(overheads),
                    )
                )
    return Figure5Result(points)


def format_results(result: Figure5Result) -> str:
    """Render the sweep as a fixed-width text table."""
    columns = [
        TableColumn("Series", 22, "<"),
        *[TableColumn(f"{c}ch", 8) for c in sorted({p.channels for p in result.points})],
    ]
    body = []
    for injection in (ChannelInjection.UNOPT, ChannelInjection.OPT):
        for authenticated in (False, True):
            series = result.series(injection, authenticated)
            label = f"ObfusMem-{injection.value.upper()}" + ("+Auth" if authenticated else "")
            body.append([label, *[f"{p.avg_overhead_pct:.1f}%" for p in series]])
    body.append(["Paper UNOPT+Auth @8ch", "", "", "", "18.8%"])
    body.append(["Paper OPT+Auth   @8ch", "", "", "", "13.2%"])
    return format_table(columns, body)


def main(argv: list[str] | None = None) -> None:
    """Print the regenerated figure (script entry point)."""
    parser = argparse.ArgumentParser(prog="repro.experiments.figure5")
    add_runner_arguments(parser)
    configure_from_args(parser.parse_args(argv))
    print("Figure 5 — channel-count sweep (avg overhead vs equal-channel baseline)")
    print(format_results(run()))


if __name__ == "__main__":
    main()
