"""Streaming Pareto-frontier aggregation over sweep results.

ObfusMem's whole argument is a trade: performance overhead bought back
against access-pattern leakage, with energy as the third axis (§5).  A
design-space sweep produces hundreds of :class:`~repro.system.simulator.RunResult`\\ s;
this module folds them — *as they land*, not post-hoc — into the frontier
of non-dominated designs:

* **overhead_pct** — execution-time overhead vs the matching
  ``unprotected`` baseline anchor (same benchmark, machine, request count,
  seed, cores).  Points whose anchor never arrives stay pending and are
  reported separately rather than silently dropped.
* **leakage** — the scheme's expected leaky fraction of the
  :mod:`repro.attacks` battery (:func:`repro.analysis.leakage.leakage_surface`),
  optionally overridden per scheme by measured advantage from a
  scheme×attack matrix run.
* **energy_pj_per_access** — measured memory energy per request
  (:func:`repro.analysis.energy.measured_energy_pj`).

All three axes are minimized.  Point *a* dominates *b* when it is no worse
on every axis and strictly better on at least one; the aggregator maintains
the frontier incrementally (each insert evicts newly dominated members), so
:meth:`ParetoAggregator.frontier` is O(frontier) at read time.  The
:meth:`aggregate_digest` content hash over every folded point lets the
sweep-scaling benchmark assert bit-identical aggregates between scheduled
and naive executions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.analysis.energy import measured_energy_pj
from repro.analysis.leakage import leakage_surface
from repro.experiments.executor import JobSpec
from repro.schemes import scheme_name_of
from repro.system.config import ProtectionLevel
from repro.system.simulator import RunResult

#: The frontier's objective axes, in report order; all are minimized.
OBJECTIVES = ("overhead_pct", "leakage", "energy_pj_per_access")


@dataclass(frozen=True)
class FrontierPoint:
    """One design point positioned in the overhead/leakage/energy space."""

    scheme: str
    benchmark: str
    channels: int
    num_requests: int
    seed: int
    cores: int
    overhead_pct: float
    #: Expected (or measured, when supplied) leaky fraction in [0, 1].
    leakage: float
    energy_pj_per_access: float
    execution_time_ns: float
    #: Content digest of the originating :class:`JobSpec`.
    digest: str

    def objectives(self) -> tuple[float, float, float]:
        """The minimized coordinates, in :data:`OBJECTIVES` order."""
        return (self.overhead_pct, self.leakage, self.energy_pj_per_access)

    def dominates(self, other: "FrontierPoint") -> bool:
        """True when this point is no worse everywhere and better somewhere."""
        mine, theirs = self.objectives(), other.objectives()
        return all(a <= b for a, b in zip(mine, theirs)) and any(
            a < b for a, b in zip(mine, theirs)
        )


def _anchor_key(spec: JobSpec) -> str:
    """The baseline identity: everything about a spec except its scheme."""
    payload = spec.to_jsonable()
    payload.pop("level", None)
    return json.dumps(payload, sort_keys=True)


class ParetoAggregator:
    """Folds ``(spec, result)`` pairs into a live Pareto frontier.

    Feed it every result of a sweep — baselines and protected points in any
    order.  ``unprotected`` results become baseline anchors; every other
    result waits (pending) until its anchor arrives, then materializes as a
    :class:`FrontierPoint` and is offered to the frontier, which prunes
    dominated members on the spot.

    ``attackers`` defaults to the full registered battery from
    :mod:`repro.attacks`; ``measured_leakage`` maps scheme name to a
    measured advantage in [0, 1] that overrides the trait-derived surface
    for that scheme (the matrix's measured column).
    """

    def __init__(self, attackers=None, measured_leakage: dict | None = None):
        if attackers is None:
            from repro.attacks import available_attackers

            attackers = available_attackers()
        self._attackers = list(attackers)
        self._measured = dict(measured_leakage or {})
        self._surface_cache: dict[str, float] = {}
        self._baselines: dict[str, RunResult] = {}
        self._waiting: dict[str, list[tuple[JobSpec, RunResult]]] = {}
        self._points: list[FrontierPoint] = []
        self._frontier: list[FrontierPoint] = []

    # -- folding -------------------------------------------------------------

    def _leakage_for(self, spec: JobSpec) -> float:
        name = scheme_name_of(spec.level)
        if name in self._measured:
            return float(self._measured[name])
        if name not in self._surface_cache:
            self._surface_cache[name] = leakage_surface(
                spec.level, self._attackers
            ).score
        return self._surface_cache[name]

    def _materialize(
        self, spec: JobSpec, result: RunResult, baseline: RunResult
    ) -> None:
        point = FrontierPoint(
            scheme=scheme_name_of(spec.level),
            benchmark=spec.benchmark,
            channels=spec.machine.channels,
            num_requests=spec.num_requests,
            seed=spec.seed,
            cores=spec.cores,
            overhead_pct=result.overhead_pct(baseline),
            leakage=self._leakage_for(spec),
            energy_pj_per_access=measured_energy_pj(result.stats)
            / max(1, result.num_requests),
            execution_time_ns=result.execution_time_ns,
            digest=spec.digest(),
        )
        self._points.append(point)
        if any(member.dominates(point) for member in self._frontier):
            return
        self._frontier = [m for m in self._frontier if not point.dominates(m)]
        self._frontier.append(point)

    def add(self, spec: JobSpec, result: RunResult) -> None:
        """Fold one sweep result in; order-independent and idempotent-free.

        An ``unprotected`` result registers as the baseline anchor for its
        configuration and flushes any protected points already waiting on
        it; any other result materializes immediately when its anchor is
        known, or queues until it is.
        """
        key = _anchor_key(spec)
        if scheme_name_of(spec.level) == scheme_name_of(ProtectionLevel.UNPROTECTED):
            self._baselines[key] = result
            for waiting_spec, waiting_result in self._waiting.pop(key, []):
                self._materialize(waiting_spec, waiting_result, result)
            return
        baseline = self._baselines.get(key)
        if baseline is None:
            self._waiting.setdefault(key, []).append((spec, result))
            return
        self._materialize(spec, result, baseline)

    # -- reporting -----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Protected points still waiting for their baseline anchor."""
        return sum(len(queue) for queue in self._waiting.values())

    def points(self) -> list[FrontierPoint]:
        """Every materialized point, in fold order (dominated ones included)."""
        return list(self._points)

    def frontier(self) -> list[FrontierPoint]:
        """The non-dominated set, sorted by ascending overhead.

        Every returned point is guaranteed non-dominated with respect to
        every point ever folded in (pending points excluded — they have no
        coordinates yet).
        """
        return sorted(self._frontier, key=lambda p: p.objectives())

    def aggregate_digest(self) -> str:
        """Content hash over every folded point, independent of fold order.

        Two executions of the same compiled sweep — whatever their schedule
        — must produce the same digest; the sweep-scaling benchmark holds
        the prefix-sharing scheduler to exactly that.
        """
        rows = sorted(
            (
                point.digest,
                f"{point.overhead_pct:.9f}",
                f"{point.leakage:.9f}",
                f"{point.energy_pj_per_access:.9f}",
                f"{point.execution_time_ns:.6f}",
            )
            for point in self._points
        )
        blob = json.dumps(rows).encode()
        return hashlib.sha256(blob).hexdigest()


@dataclass
class ParetoReport:
    """The finished report: frontier, full cloud, and bookkeeping."""

    frontier: list[FrontierPoint]
    points: list[FrontierPoint]
    pending: int
    digest: str = field(default="")

    @classmethod
    def from_aggregator(cls, aggregator: ParetoAggregator) -> "ParetoReport":
        """Freeze an aggregator's current state into a report."""
        return cls(
            frontier=aggregator.frontier(),
            points=aggregator.points(),
            pending=aggregator.pending,
            digest=aggregator.aggregate_digest(),
        )
