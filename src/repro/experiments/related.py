"""Related-work comparison (§7): chunk permutation vs ObfusMem vs ORAM.

The paper positions ObfusMem against the chunk-permuting obfuscators
(HIDE et al.) and the ORAMs.  This experiment makes the positioning
measurable: one workload, every registered system — unprotected, HIDE,
ObfusMem+Auth, and the full ORAM backend family (Path, Ring, Pyramid,
Palermo) — with overhead next to what each actually hides on the wire.

A finding worth calling out: on the PCM substrate, chunk permutation is
not only *partial* (chunk-grain locality, temporal reuse and request type
all stay visible) — it is also *expensive*, because randomizing placement
destroys row-buffer locality.  That is §6.2's core argument measured from
the other side: "that ObfusMem does not reshuffle data locations in the
main memory is its key advantage (resulting in low overheads)".

``python -m repro.experiments.related``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.leakage import (
    chunk_locality_score,
    ciphertext_repeat_fraction,
    expected_leakage,
    spatial_locality_score,
    type_inference_accuracy,
)
from repro.cpu.generator import make_trace
from repro.cpu.spec_profiles import SPEC_PROFILES
from repro.experiments.runner import (
    DEFAULT_SEED,
    TableColumn,
    add_runner_arguments,
    configure_from_args,
    format_table,
)
from repro.mem.bus import BusObserver, MemoryBus
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_trace


@dataclass(frozen=True)
class RelatedRow:
    system: str
    overhead_pct: float
    block_locality: float  # visible intra-chunk spatial pattern
    chunk_locality: float  # visible chunk-grain spatial pattern
    temporal_repeats: float
    type_accuracy: float


@dataclass(frozen=True)
class RelatedResult:
    rows: list[RelatedRow]

    def row(self, system: str) -> RelatedRow:
        """The row for one system name; KeyError if absent."""
        for row in self.rows:
            if row.system == system:
                return row
        raise KeyError(system)


def run(
    benchmark: str = "bwaves",
    num_requests: int = 2000,
    seed: int = DEFAULT_SEED,
) -> RelatedResult:
    """Measure overhead and leakage for all four systems on one workload."""
    profile = SPEC_PROFILES[benchmark]
    trace = make_trace(profile, num_requests, seed=seed)
    machine = MachineConfig()

    def observe(level):
        observer = BusObserver()
        bus = MemoryBus()
        bus.attach(observer)
        result = run_trace(
            trace, level, machine=machine, window=profile.window, seed=seed, bus=bus
        )
        return result.execution_time_ns, observer.transfers

    base_time, base_transfers = observe(ProtectionLevel.UNPROTECTED)
    obfus_time, obfus_transfers = observe(ProtectionLevel.OBFUSMEM_AUTH)
    # HIDE is a first-class registry scheme now: same builder path as the
    # others, no hand-assembled stack.
    hide_time, hide_transfers = observe(ProtectionLevel.HIDE)

    def leak_row(system, time_ns, transfers):
        return RelatedRow(
            system=system,
            overhead_pct=100.0 * (time_ns / base_time - 1.0),
            block_locality=spatial_locality_score(transfers),
            chunk_locality=chunk_locality_score(transfers),
            temporal_repeats=ciphertext_repeat_fraction(transfers),
            type_accuracy=type_inference_accuracy(transfers),
        )

    def opaque_row(system, scheme):
        # Opaque backends have no wire model; their leakage columns come
        # from the registry's declarative traits (everything hidden by
        # construction, type inference reduced to the 0.5 coin flip).
        time_ns, _ = observe(scheme)
        expectation = expected_leakage(scheme)
        return RelatedRow(
            system=system,
            overhead_pct=100.0 * (time_ns / base_time - 1.0),
            block_locality=0.0 if expectation.spatial_hidden else 1.0,
            chunk_locality=0.0 if expectation.chunk_hidden else 1.0,
            temporal_repeats=0.0 if expectation.temporal_hidden else 1.0,
            type_accuracy=expectation.type_accuracy,
        )

    rows = [
        leak_row("unprotected", base_time, base_transfers),
        leak_row("hide-chunk-permute", hide_time, hide_transfers),
        leak_row("obfusmem+auth", obfus_time, obfus_transfers),
        opaque_row("path-oram", ProtectionLevel.ORAM),
        opaque_row("ring-oram", "oram_ring"),
        opaque_row("pyramid-oram", "pyramid"),
        opaque_row("palermo-oram", "palermo"),
    ]
    return RelatedResult(rows)


def format_results(result: RelatedResult) -> str:
    """Render the comparison as a fixed-width text table."""
    columns = [
        TableColumn("System", 20, "<"),
        TableColumn("Overhead", 9),
        TableColumn("BlockLoc", 9),
        TableColumn("ChunkLoc", 9),
        TableColumn("Repeats", 8),
        TableColumn("TypeAcc", 8),
    ]
    body = [
        [
            row.system,
            f"{row.overhead_pct:+.1f}%",
            f"{row.block_locality:.2f}",
            f"{row.chunk_locality:.2f}",
            f"{row.temporal_repeats:.2f}",
            f"{row.type_accuracy:.2f}",
        ]
        for row in result.rows
    ]
    return format_table(columns, body)


def main(argv: list[str] | None = None) -> None:
    """Print the comparison (script entry point)."""
    parser = argparse.ArgumentParser(prog="repro.experiments.related")
    add_runner_arguments(parser)
    configure_from_args(parser.parse_args(argv))
    print("Related-work comparison (§7): what each scheme costs and hides")
    print("(leakage columns: lower = better hidden; TypeAcc 0.5 = blind)")
    print(format_results(run()))


if __name__ == "__main__":
    main()
