"""Figure 4 — execution-time overhead breakdown by protection level.

For each benchmark, the overhead (normalized to the unprotected system) of:
memory encryption only, plain ObfusMem, and ObfusMem with authenticated
communication.  Paper averages: 2.2% / 8.3% / 10.9%, with the observation
that authentication adds little because it overlaps encryption.
"""

from __future__ import annotations

import argparse
import statistics
from dataclasses import dataclass

from repro.experiments.executor import sweep_specs
from repro.experiments.runner import (
    DEFAULT_REQUESTS,
    DEFAULT_SEED,
    TableColumn,
    add_runner_arguments,
    cached_run,
    configure_from_args,
    format_table,
    prefetch,
    select_benchmarks,
)
from repro.system.config import MachineConfig, ProtectionLevel


@dataclass(frozen=True)
class Figure4Row:
    benchmark: str
    encryption_pct: float
    obfusmem_pct: float
    obfusmem_auth_pct: float


@dataclass(frozen=True)
class Figure4Result:
    rows: list[Figure4Row]

    @property
    def avg_encryption_pct(self) -> float:
        """Mean encryption-only overhead across benchmarks (paper: 2.2%)."""
        return statistics.mean(r.encryption_pct for r in self.rows)

    @property
    def avg_obfusmem_pct(self) -> float:
        """Mean plain-ObfusMem overhead across benchmarks (paper: 8.3%)."""
        return statistics.mean(r.obfusmem_pct for r in self.rows)

    @property
    def avg_obfusmem_auth_pct(self) -> float:
        """Mean ObfusMem+Auth overhead across benchmarks (paper: 10.9%)."""
        return statistics.mean(r.obfusmem_auth_pct for r in self.rows)


def run(
    benchmarks: list[str] | None = None,
    num_requests: int = DEFAULT_REQUESTS,
    seed: int = DEFAULT_SEED,
    machine: MachineConfig | None = None,
) -> Figure4Result:
    """Measure the per-level overhead breakdown for each benchmark."""
    machine = machine or MachineConfig()
    rows = []
    names = select_benchmarks(benchmarks)
    prefetch(
        sweep_specs(
            names,
            [
                ProtectionLevel.UNPROTECTED,
                ProtectionLevel.ENCRYPTION_ONLY,
                ProtectionLevel.OBFUSMEM,
                ProtectionLevel.OBFUSMEM_AUTH,
            ],
            machine=machine,
            num_requests=num_requests,
            seed=seed,
        ),
        label="figure4",
    )
    for name in names:
        baseline = cached_run(name, ProtectionLevel.UNPROTECTED, machine, num_requests, seed)
        enc = cached_run(name, ProtectionLevel.ENCRYPTION_ONLY, machine, num_requests, seed)
        obf = cached_run(name, ProtectionLevel.OBFUSMEM, machine, num_requests, seed)
        auth = cached_run(name, ProtectionLevel.OBFUSMEM_AUTH, machine, num_requests, seed)
        rows.append(
            Figure4Row(
                benchmark=name,
                encryption_pct=enc.overhead_pct(baseline),
                obfusmem_pct=obf.overhead_pct(baseline),
                obfusmem_auth_pct=auth.overhead_pct(baseline),
            )
        )
    return Figure4Result(rows)


def format_results(result: Figure4Result) -> str:
    """Render the result as a fixed-width text table."""
    columns = [
        TableColumn("Benchmark", 12, "<"),
        TableColumn("Enc%", 7),
        TableColumn("ObfMem%", 8),
        TableColumn("+Auth%", 7),
    ]
    body = [
        [
            row.benchmark,
            f"{row.encryption_pct:.1f}",
            f"{row.obfusmem_pct:.1f}",
            f"{row.obfusmem_auth_pct:.1f}",
        ]
        for row in result.rows
    ]
    body.append(
        [
            "Avg",
            f"{result.avg_encryption_pct:.1f}",
            f"{result.avg_obfusmem_pct:.1f}",
            f"{result.avg_obfusmem_auth_pct:.1f}",
        ]
    )
    body.append(["Paper avg", "2.2", "8.3", "10.9"])
    return format_table(columns, body)


def main(argv: list[str] | None = None) -> None:
    """Print the regenerated figure (script entry point)."""
    parser = argparse.ArgumentParser(prog="repro.experiments.figure4")
    add_runner_arguments(parser)
    configure_from_args(parser.parse_args(argv))
    print("Figure 4 — overhead breakdown vs unprotected system")
    print(format_results(run()))


if __name__ == "__main__":
    main()
