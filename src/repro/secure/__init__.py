"""Secure-processor substrate: counter-mode memory encryption + integrity."""

from repro.secure.counters import (
    BLOCKS_PER_PAGE,
    MINOR_COUNTER_LIMIT,
    PAGE_SIZE_BYTES,
    CounterStore,
    PageCounters,
    pack_iv,
)
from repro.secure.memory_encryption import SecureMemoryController

__all__ = [
    "BLOCKS_PER_PAGE",
    "MINOR_COUNTER_LIMIT",
    "PAGE_SIZE_BYTES",
    "CounterStore",
    "PageCounters",
    "pack_iv",
    "SecureMemoryController",
]
