"""Counter state for counter-mode memory encryption (paper §2.4, Fig. 2).

State-of-the-art memory encryption (Yan et al., ISCA 2006) builds the IV of
each block from: a unique page id, the page offset of the block, a per-block
*minor* counter bumped on every write to that block, and a per-page *major*
counter bumped when any minor counter overflows (forcing a page
re-encryption).  One 64-byte counter block holds a page's major counter and
all 64 minor counters, which is what the counter cache caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

PAGE_SIZE_BYTES = 4096
BLOCKS_PER_PAGE = 64
MINOR_COUNTER_BITS = 7
MINOR_COUNTER_LIMIT = (1 << MINOR_COUNTER_BITS) - 1


@dataclass
class PageCounters:
    """Major counter plus the 64 per-block minor counters of one page."""

    major: int = 0
    minors: list[int] = field(default_factory=lambda: [0] * BLOCKS_PER_PAGE)

    def bump_minor(self, block_offset: int) -> bool:
        """Increment a block's minor counter before a write.

        Returns True when the minor counter overflowed: the major counter is
        bumped, all minors reset, and the caller must re-encrypt the whole
        page under the new major counter.
        """
        if not 0 <= block_offset < BLOCKS_PER_PAGE:
            raise ConfigurationError(f"block offset {block_offset} out of page")
        if self.minors[block_offset] >= MINOR_COUNTER_LIMIT:
            self.major += 1
            self.minors = [0] * BLOCKS_PER_PAGE
            self.minors[block_offset] = 1
            return True
        self.minors[block_offset] += 1
        return False


class CounterStore:
    """All page counters of one protected memory (the in-memory copy).

    In hardware these live in a reserved memory region and are fetched
    through the counter cache; functionally we keep them here and let the
    timing layer issue the corresponding fetch traffic.
    """

    def __init__(self):
        self._pages: dict[int, PageCounters] = {}

    def page(self, page_id: int) -> PageCounters:
        """Counter block of a page (created zeroed on first touch)."""
        if page_id not in self._pages:
            self._pages[page_id] = PageCounters()
        return self._pages[page_id]

    def iv_components(self, address: int) -> tuple[int, int, int, int]:
        """(page_id, page_offset, major, minor) for a block address."""
        page_id = address // PAGE_SIZE_BYTES
        block_offset = (address % PAGE_SIZE_BYTES) // BLOCKS_PER_PAGE
        counters = self.page(page_id)
        return page_id, block_offset, counters.major, counters.minors[block_offset]

    def pages_touched(self) -> int:
        """Number of pages with materialized counters."""
        return len(self._pages)


def pack_iv(page_id: int, block_offset: int, major: int, minor: int) -> bytes:
    """Pack IV components into the 16-byte AES input.

    Layout: page id (6 bytes) | offset (1) | major (6) | minor (1) | pad (2).
    Uniqueness argument: the (page, offset) pair names the block; (major,
    minor) never repeats for a block because every write bumps the pair
    lexicographically.
    """
    if page_id >= 1 << 48 or major >= 1 << 48:
        raise ConfigurationError("IV field overflow")
    return (
        page_id.to_bytes(6, "big")
        + block_offset.to_bytes(1, "big")
        + major.to_bytes(6, "big")
        + minor.to_bytes(1, "big")
        + b"\x00\x00"
    )
