"""Functional counter-mode encryption of data at rest (no timing).

A small, synchronous engine used by the functional full-stack path: it
implements exactly the IV construction of §2.4 (page id | page offset |
major | minor) over the shared :class:`CounterStore`, without the counter
cache / traffic modelling of
:class:`repro.secure.memory_encryption.SecureMemoryController`.
"""

from __future__ import annotations

from repro.crypto.aes import AES128
from repro.crypto.ctr import ctr_keystream, xor_bytes
from repro.errors import CryptoError
from repro.mem.request import BLOCK_SIZE_BYTES
from repro.secure.counters import BLOCKS_PER_PAGE, PAGE_SIZE_BYTES, CounterStore, pack_iv


class AtRestEncryption:
    """Counter-mode block encryption keyed by the processor's memory key."""

    def __init__(self, memory_key: bytes):
        self._cipher = AES128(memory_key)
        self.counters = CounterStore()

    def _pad(self, address: int) -> bytes:
        iv = pack_iv(*self.counters.iv_components(address))
        return ctr_keystream(self._cipher, iv, BLOCK_SIZE_BYTES)

    def encrypt_for_write(self, address: int, plaintext: bytes) -> bytes:
        """Bump the block's minor counter and encrypt under the fresh IV."""
        if len(plaintext) != BLOCK_SIZE_BYTES:
            raise CryptoError(f"block must be {BLOCK_SIZE_BYTES} bytes")
        page_id = address // PAGE_SIZE_BYTES
        offset = (address % PAGE_SIZE_BYTES) // BLOCKS_PER_PAGE
        self.counters.page(page_id).bump_minor(offset)
        return xor_bytes(plaintext, self._pad(address))

    def decrypt_after_read(self, address: int, ciphertext: bytes) -> bytes:
        """Decrypt with the block's current counters."""
        if len(ciphertext) != BLOCK_SIZE_BYTES:
            raise CryptoError(f"block must be {BLOCK_SIZE_BYTES} bytes")
        return xor_bytes(ciphertext, self._pad(address))
