"""Secure memory controller: counter-mode encryption of data at rest.

Sits between the LLC and the (possibly ObfusMem-protected) memory system.
Per Table 2, it owns a 256KB, 8-way, 5-cycle *counter cache*; each 64-byte
line holds one page's (major, minors) counter block.

Timing behaviour per the paper:

* Counter-cache **hit** on a read: pad generation (24-cycle AES) overlaps
  with the LLC-miss latency; only the XOR is exposed.
* Counter-cache **miss**: an extra memory read fetches the counter block,
  pad generation starts when it returns — both the extra traffic and the
  late pad are modelled.
* Writes bump the minor counter (dirtying the counter line; dirty counter
  evictions write back to memory), and a minor-counter overflow triggers a
  whole-page re-encryption (64 reads + 64 writes of traffic).

Integrity: counters are covered by a Merkle tree whose root stays on-chip
(Rogers et al.).  The tree here is functional — it detects tampering in the
security tests — while its timing cost is folded into the counter-fetch
traffic (a standard Bonsai-Merkle-style assumption, noted in DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import partial

from repro.crypto.aes import AES128
from repro.crypto.ctr import ctr_keystream, xor_bytes
from repro.crypto.merkle import MerkleTree
from repro.errors import ConfigurationError
from repro.mem.cache import MesiState, SetAssociativeCache
from repro.mem.dram_timing import EngineTiming
from repro.mem.request import BLOCK_SIZE_BYTES, MemoryRequest, RequestType
from repro.secure.counters import (
    BLOCKS_PER_PAGE,
    PAGE_SIZE_BYTES,
    CounterStore,
    pack_iv,
)
from repro.sim.engine import Engine
from repro.sim.statistics import StatRegistry

CompletionCallback = Callable[[MemoryRequest], None]


@dataclass
class _PendingRead:
    request: MemoryRequest
    callback: CompletionCallback | None
    data_done_ps: int | None = None
    pad_ready_ps: int | None = None


class SecureMemoryController:
    """Counter-mode memory encryption with counter-cache timing."""

    def __init__(
        self,
        engine: Engine,
        downstream,
        capacity_bytes: int,
        stats: StatRegistry,
        engines: EngineTiming | None = None,
        counter_cache_bytes: int = 256 << 10,
        counter_cache_assoc: int = 8,
        functional_key: bytes | None = None,
        merkle_arity: int = 8,
        with_merkle: bool = False,
        sequential_prefetch: bool = True,
    ):
        self.engine = engine
        self.downstream = downstream
        self.engines = engines or EngineTiming()
        self.stats = stats.group("memenc")
        # Hot-path binding: counter-cache hit/miss accounting runs once per
        # protected read, so increments go through the live dict.
        self._counters = self.stats.counters()
        self._exposed_hist = None
        self.counters = CounterStore()
        self.counter_cache = SetAssociativeCache(
            "counter_cache",
            counter_cache_bytes,
            counter_cache_assoc,
            latency_cycles=5,
            stats=stats.group("counter_cache"),
        )
        self._num_pages = capacity_bytes // PAGE_SIZE_BYTES
        # Counters live in a reserved region at the top of physical memory:
        # one 64B counter block per page.
        counter_region_bytes = self._num_pages * BLOCK_SIZE_BYTES
        self._counter_base = capacity_bytes - counter_region_bytes
        if self._counter_base <= 0:
            raise ConfigurationError("memory too small for its counter region")
        self._sequential_prefetch = sequential_prefetch
        self._prefetched_counter_blocks: set[int] = set()
        self._capacity_bytes = capacity_bytes
        # AES pad latency minus the un-modelled on-chip overlap window.
        self._aes_exposed_ps = max(
            0, self.engines.aes_latency_ps - self.engines.pad_overlap_ps
        )
        self._cipher = AES128(functional_key) if functional_key is not None else None
        # The Merkle tree is functional (tamper detection in the security
        # tests); the timing path skips building it — its latency cost is
        # folded into counter-fetch traffic (see module docstring) — because
        # materializing a tree over millions of pages has no timing effect.
        self.merkle = (
            MerkleTree(max(self._num_pages, 1), arity=merkle_arity)
            if with_merkle
            else None
        )

    # ------------------------------------------------------------------
    # Functional encryption (used when payloads carry real bytes)
    # ------------------------------------------------------------------

    @property
    def is_functional(self) -> bool:
        return self._cipher is not None

    def _pad_for(self, address: int) -> bytes:
        if self._cipher is None:
            raise ConfigurationError("controller built without a functional key")
        iv = pack_iv(*self.counters.iv_components(address))
        return ctr_keystream(self._cipher, iv, BLOCK_SIZE_BYTES)

    def encrypt_block(self, address: int, plaintext: bytes) -> bytes:
        """Counter-mode encrypt a block for writing to memory.

        Bumps the minor counter first (each write uses a fresh IV), updating
        the Merkle tree over the page's counter block.
        """
        page_id = address // PAGE_SIZE_BYTES
        offset = (address % PAGE_SIZE_BYTES) // BLOCKS_PER_PAGE
        overflowed = self.counters.page(page_id).bump_minor(offset)
        if overflowed:
            self.stats.add("minor_overflows")
        self._update_merkle(page_id)
        return xor_bytes(plaintext, self._pad_for(address))

    def decrypt_block(self, address: int, ciphertext: bytes) -> bytes:
        """Counter-mode decrypt a block read from memory."""
        self.verify_page_counters(address // PAGE_SIZE_BYTES)
        return xor_bytes(ciphertext, self._pad_for(address))

    def _page_counter_payload(self, page_id: int) -> bytes:
        counters = self.counters.page(page_id)
        return counters.major.to_bytes(8, "big") + bytes(counters.minors)

    def _update_merkle(self, page_id: int) -> None:
        if self.merkle is not None and page_id < self.merkle.num_blocks:
            self.merkle.update(page_id, self._page_counter_payload(page_id))

    def verify_page_counters(self, page_id: int) -> None:
        """Merkle-verify a page's counter block (raises IntegrityError)."""
        if self.merkle is not None and page_id < self.merkle.num_blocks:
            self.merkle.verify(page_id, self._page_counter_payload(page_id))

    # ------------------------------------------------------------------
    # Timing path
    # ------------------------------------------------------------------

    def counter_block_address(self, data_address: int) -> int:
        """Memory address of the counter block covering a data address."""
        page_id = data_address // PAGE_SIZE_BYTES
        return self._counter_base + page_id * BLOCK_SIZE_BYTES

    def _counter_access(self, address: int, for_write: bool) -> bool:
        """Probe the counter cache; returns True on hit.

        On a miss the caller is responsible for issuing the counter fetch;
        this method handles insertion and any dirty counter write-back.
        """
        page_block = self.counter_block_address(address) >> 6
        line = self.counter_cache.lookup(page_block)
        if line is not None:
            if for_write:
                self.counter_cache.set_state(page_block, MesiState.MODIFIED)
            self._counters["counter_hits"] += 1
            if page_block in self._prefetched_counter_blocks:
                # First use of a prefetched counter block: keep the stream
                # running by prefetching the next page (standard stream-
                # prefetcher chaining).
                self._prefetched_counter_blocks.discard(page_block)
                self._prefetch_next_page_counters(address)
            return True
        self._counters["counter_misses"] += 1
        eviction = self.counter_cache.insert(
            page_block, MesiState.MODIFIED if for_write else MesiState.EXCLUSIVE
        )
        if eviction is not None and eviction.dirty:
            # Write the evicted counter block back to its memory home.
            self._counters["counter_writebacks"] += 1
            self.downstream.issue(
                MemoryRequest(eviction.block << 6, RequestType.WRITE), None
            )
        return False

    def issue(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        """Protect and forward one LLC-level request."""
        if request.is_dummy:
            self.downstream.issue(request, callback)
            return
        if request.request_type is RequestType.READ:
            self._issue_read(request, callback)
        else:
            self._issue_write(request, callback)

    def _issue_read(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        pending = _PendingRead(request, callback)
        hit = self._counter_access(request.address, for_write=False)
        now = self.engine._now_ps
        # Completion hooks are bound-method partials (picklable) so queued
        # events survive a checkpoint; closures would not.
        data_done = partial(self._data_done, pending)

        if hit:
            # Pad generation starts immediately and overlaps the fetch.
            pending.pad_ready_ps = now + self._aes_exposed_ps
            self.downstream.issue(request, data_done)
        else:
            counter_fetch = MemoryRequest(
                self.counter_block_address(request.address), RequestType.READ
            )
            # Data first: it is the critical word; the counter fetch rides
            # in the next bus slot (the pad cannot be built before the
            # counter returns either way).
            self.downstream.issue(request, data_done)
            self.downstream.issue(counter_fetch, partial(self._counter_done, pending))
            self._prefetch_next_page_counters(request.address)

    def _data_done(self, pending: _PendingRead, req: MemoryRequest) -> None:
        """Downstream data fetch completed for a pending read."""
        pending.data_done_ps = self.engine._now_ps
        self._maybe_finish_read(pending)

    def _counter_done(self, pending: _PendingRead, req: MemoryRequest) -> None:
        """Counter-block fetch completed: the pad pipeline can start."""
        pending.pad_ready_ps = self.engine._now_ps + self._aes_exposed_ps
        self._maybe_finish_read(pending)

    def _prefetch_next_page_counters(self, address: int) -> None:
        """Sequential counter prefetch: hide the page-crossing miss.

        Counter caches in real secure-memory controllers prefetch the next
        page's counter block on a miss, which turns streaming workloads'
        compulsory counter misses into hits.  The prefetch is issued off the
        critical path (no completion dependency).
        """
        if not self._sequential_prefetch:
            return
        # Stream detection: only prefetch if the previous page's counters
        # are resident, i.e. the access pattern looks sequential.  This
        # avoids wasting bandwidth on pointer-chasing misses.
        previous_page_address = address - PAGE_SIZE_BYTES
        if previous_page_address >= 0:
            previous_block = self.counter_block_address(previous_page_address) >> 6
            if not self.counter_cache.contains(previous_block):
                return
        next_page_address = address + PAGE_SIZE_BYTES
        if next_page_address >= self._counter_base:
            return
        page_block = self.counter_block_address(next_page_address) >> 6
        if self.counter_cache.contains(page_block):
            return
        self.stats.add("counter_prefetches")
        self._prefetched_counter_blocks.add(page_block)
        eviction = self.counter_cache.insert(page_block, MesiState.EXCLUSIVE)
        if eviction is not None and eviction.dirty:
            self._counters["counter_writebacks"] += 1
            self.downstream.issue(
                MemoryRequest(eviction.block << 6, RequestType.WRITE), None
            )
        self.downstream.issue(
            MemoryRequest(
                self.counter_block_address(next_page_address), RequestType.READ
            ),
            None,
        )

    def _maybe_finish_read(self, pending: _PendingRead) -> None:
        if pending.data_done_ps is None or pending.pad_ready_ps is None:
            return
        data_done = pending.data_done_ps
        pad_ready = pending.pad_ready_ps
        finish_ps = (data_done if data_done > pad_ready else pad_ready) + self.engines.xor_ps
        hist = self._exposed_hist
        if hist is None:
            hist = self._exposed_hist = self.stats.live_histogram("decrypt_exposed_ns")
        hist.record((finish_ps - data_done) / 1000.0)
        self.engine.post_at(finish_ps, partial(self._deliver, pending))

    def _deliver(self, pending: _PendingRead) -> None:
        """Hand a decrypted read back to its issuer."""
        pending.request.complete_time_ps = self.engine._now_ps
        if pending.callback is not None:
            pending.callback(pending.request)

    def _issue_write(self, request: MemoryRequest, callback: CompletionCallback | None) -> None:
        hit = self._counter_access(request.address, for_write=True)
        if not hit:
            # Fetch the counter block before the write's pad can be built.
            self.downstream.issue(
                MemoryRequest(
                    self.counter_block_address(request.address), RequestType.READ
                ),
                None,
            )
        page_id = request.address // PAGE_SIZE_BYTES
        offset = (request.address % PAGE_SIZE_BYTES) // BLOCKS_PER_PAGE
        if self.counters.page(page_id).bump_minor(offset):
            self._reencrypt_page_traffic(page_id)
        self._counters["pads_generated"] += 4  # four 16B pads per 64B block
        self.downstream.issue(request, callback)

    def _reencrypt_page_traffic(self, page_id: int) -> None:
        """Minor overflow: re-encrypt the page (64 block reads + writes)."""
        self.stats.add("minor_overflows")
        page_base = page_id * PAGE_SIZE_BYTES
        for block in range(BLOCKS_PER_PAGE):
            address = page_base + block * BLOCK_SIZE_BYTES
            self.downstream.issue(MemoryRequest(address, RequestType.READ), None)
            self.downstream.issue(MemoryRequest(address, RequestType.WRITE), None)
