"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list            benchmarks, protection levels and experiments available
run             simulate one benchmark at one protection level
experiments     regenerate one (or all) of the paper's tables/figures
table1 ...      shortcut: ``repro table1`` == ``repro experiments table1``
attacks         run the §3.5 active-attack suite against the live stack
report          full Markdown evaluation report (see experiments.report)
serve           run the HTTP simulation service (see repro.serve)
sweep           execute a declarative design-space sweep (repro.experiments.sweep)

Every experiment command accepts ``--profile``, which wraps the cold
simulations in cProfile + event accounting and writes hotspot reports next
to the sweep's run manifest (``<cache-dir>/manifests/<label>.profile.*``).
"""

from __future__ import annotations

import argparse
import sys

from repro.cpu.spec_profiles import BENCHMARK_NAMES, SPEC_PROFILES
from repro.errors import ConfigurationError
from repro.schemes import add_scheme_arguments, format_scheme_list, get_scheme
from repro.system.config import MachineConfig, ProtectionLevel
from repro.system.simulator import run_benchmark

_EXPERIMENTS = (
    "table1",
    "table3",
    "figure4",
    "figure5",
    "table4",
    "energy",
    "related",
    "matrix",
)


def _cmd_list(args: argparse.Namespace) -> None:
    print("benchmarks (Table 1):")
    for name in BENCHMARK_NAMES:
        profile = SPEC_PROFILES[name]
        print(
            f"  {name:12s} IPC {profile.ipc:5.2f}  MPKI {profile.llc_mpki:6.2f}  "
            f"gap {profile.avg_gap_ns:8.2f} ns"
        )
    print()
    print(format_scheme_list())
    print("\nexperiments:", ", ".join(_EXPERIMENTS))


def _cmd_run(args: argparse.Namespace) -> None:
    if args.benchmark not in SPEC_PROFILES:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}; try 'list'")
    try:
        # Any registered scheme works here, hybrids included; unknown
        # names exit with the registry's close-match hint.
        level = get_scheme(args.level)
    except ConfigurationError as error:
        raise SystemExit(str(error))
    machine = MachineConfig(channels=args.channels)
    profile = SPEC_PROFILES[args.benchmark]
    if args.profile:
        from repro.experiments.executor import DEFAULT_CACHE_DIR
        from repro.sim import profiling

        with profiling.capture() as session:
            result = run_benchmark(
                profile,
                level,
                machine=machine,
                num_requests=args.requests,
                seed=args.seed,
                cores=args.cores,
            )
        label = f"run_{args.benchmark}_{level.name}"
        json_path, text_path = session.write_reports(
            DEFAULT_CACHE_DIR / "manifests", label
        )
        print(f"profile reports  : {json_path} / {text_path}")
    else:
        result = run_benchmark(
            profile,
            level,
            machine=machine,
            num_requests=args.requests,
            seed=args.seed,
            cores=args.cores,
        )
    print(f"benchmark        : {args.benchmark}")
    print(f"scheme           : {level.name} ({level.stack_summary()})")
    print(f"channels / cores : {args.channels} / {args.cores}")
    print(f"requests         : {result.num_requests}")
    print(f"execution time   : {result.execution_time_ns / 1000:.1f} us")
    print(f"avg request gap  : {result.average_gap_ns:.1f} ns")
    print(f"IPC              : {result.ipc(machine.cpu_clock_ghz):.2f}")
    if args.baseline:
        baseline = run_benchmark(
            profile,
            ProtectionLevel.UNPROTECTED,
            machine=machine,
            num_requests=args.requests,
            seed=args.seed,
            cores=args.cores,
        )
        print(f"overhead         : {result.overhead_pct(baseline):+.1f}% vs unprotected")
    if args.stats:
        for key in sorted(result.stats):
            print(f"  {key} = {result.stats[key]:.2f}")


def _experiment_modules() -> dict:
    from repro.experiments import (
        energy,
        figure4,
        figure5,
        matrix,
        related,
        table1,
        table3,
        table4,
    )

    return {
        "table1": table1,
        "table3": table3,
        "figure4": figure4,
        "figure5": figure5,
        "table4": table4,
        "energy": energy,
        "related": related,
        "matrix": matrix,
    }


def _cmd_experiments(args: argparse.Namespace) -> None:
    from repro.experiments.runner import configure_from_args

    configure_from_args(args)
    modules = _experiment_modules()
    names = _EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        if name not in modules:
            raise SystemExit(f"unknown experiment {name!r}; one of {_EXPERIMENTS}")
        modules[name].main([])
        print()


def _cmd_experiment_shortcut(args: argparse.Namespace) -> None:
    """``repro table1 --profile`` == ``repro experiments table1 --profile``."""
    from repro.experiments.runner import configure_from_args

    configure_from_args(args)
    _experiment_modules()[args.command].main([])


def _cmd_attacks(args: argparse.Namespace) -> None:
    from repro.analysis.attacks import (
        command_bitflip_attack,
        data_tamper_attack,
        injection_attack,
        message_drop_attack,
        replay_attack,
    )

    scenarios = [
        ("command bit-flip", command_bitflip_attack, True),
        ("message drop", message_drop_attack, True),
        ("replay", replay_attack, True),
        ("injection", injection_attack, True),
        ("data tamper (deferred to Merkle)", data_tamper_attack, False),
    ]
    failures = 0
    for name, attack, expect_detected in scenarios:
        outcome = attack()
        ok = outcome.detected == expect_detected
        failures += 0 if ok else 1
        status = "detected" if outcome.detected else "not detected at bus"
        print(f"{'OK ' if ok else 'BAD'} {name:34s} -> {status}")
    if failures:
        raise SystemExit(f"{failures} attack scenario(s) behaved unexpectedly")


def _cmd_sweep(args: argparse.Namespace) -> None:
    from repro.experiments.checkpoints import CheckpointStore
    from repro.experiments.export import write_pareto
    from repro.experiments.pareto import ParetoAggregator
    from repro.experiments.runner import configure_from_args, get_config
    from repro.experiments.sweep import SweepSpec, plan_sweep, run_sweep

    configure_from_args(args)
    config = get_config()
    try:
        spec = SweepSpec.load(args.spec)
        compiled = spec.compile()
    except ConfigurationError as error:
        raise SystemExit(str(error))
    plan = plan_sweep(list(compiled.jobs))
    print(
        f"compiled {len(compiled.jobs)} job(s) from {compiled.requested} "
        f"design point(s) ({compiled.duplicates_dropped} duplicate(s) dropped, "
        f"{compiled.baselines_added} baseline anchor(s) added)"
    )
    print(plan.describe())
    for warning in compiled.warnings:
        print(f"  note: {warning}")
    if args.dry_run:
        return
    cache = None
    store = None
    if config.cache_enabled:
        from repro.experiments.executor import ResultCache

        cache = ResultCache(config.cache_dir, max_bytes=config.cache_bytes)
        store = CheckpointStore(config.cache_dir, max_bytes=config.cache_bytes)
    aggregator = ParetoAggregator()
    run = run_sweep(
        compiled,
        workers=config.workers,
        cache=cache,
        checkpoints=store,
        aggregator=aggregator,
        label=args.label,
    )
    manifest = run.manifest
    print(
        f"executed {manifest.jobs} job(s) in {run.wall_clock_s:.2f} s: "
        f"{manifest.cache_hits} cache hit(s), {manifest.cache_misses} simulated, "
        f"{manifest.checkpoint_hits} checkpoint warm-start(s), "
        f"{manifest.events_resumed} event(s) resumed"
    )
    if config.cache_enabled:
        manifest.write(config.cache_dir / "manifests" / f"{args.label}.json")
    frontier = aggregator.frontier()
    print(
        f"pareto frontier: {len(frontier)} non-dominated of "
        f"{len(aggregator.points())} point(s)"
        + (f" ({aggregator.pending} pending without baseline)" if aggregator.pending else "")
    )
    for point in frontier:
        print(
            f"  {point.scheme:24s} {point.benchmark:10s} "
            f"overhead {point.overhead_pct:8.2f}%  leakage {point.leakage:.2f}  "
            f"energy {point.energy_pj_per_access:10.1f} pJ/access"
        )
    if args.pareto:
        path = write_pareto(frontier, args.pareto)
        print(f"frontier csv     : {path}")


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.serve import cli as serve_cli

    serve_cli.run_from_args(args)


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.experiments import report

    forwarded = []
    if args.output:
        forwarded += ["-o", args.output]
    if args.fast:
        forwarded += ["--fast"]
    forwarded += ["--requests", str(args.requests)]
    if args.workers is not None:
        forwarded += ["--workers", str(args.workers)]
    if args.no_cache:
        forwarded += ["--no-cache"]
    if args.cache_dir is not None:
        forwarded += ["--cache-dir", str(args.cache_dir)]
    report.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI with all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    add_scheme_arguments(parser)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="show benchmarks, levels, experiments")

    run_parser = subparsers.add_parser("run", help="simulate one benchmark")
    add_scheme_arguments(run_parser)
    run_parser.add_argument("benchmark")
    run_parser.add_argument(
        "--level",
        default="obfusmem_auth",
        help="protection scheme (any registry name; see --list-schemes)",
    )
    run_parser.add_argument("--channels", type=int, default=1)
    run_parser.add_argument("--cores", type=int, default=1)
    run_parser.add_argument("--requests", type=int, default=4000)
    run_parser.add_argument("--seed", type=int, default=2017)
    run_parser.add_argument(
        "--baseline", action="store_true", help="also run unprotected and show overhead"
    )
    run_parser.add_argument("--stats", action="store_true", help="dump all statistics")
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the simulation (cProfile + event counts) and write "
        "hotspot reports under the result cache's manifests directory",
    )

    from repro.experiments.runner import add_runner_arguments

    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate a paper table/figure"
    )
    experiments_parser.add_argument("name", choices=(*_EXPERIMENTS, "all"))
    add_runner_arguments(experiments_parser)

    for name in _EXPERIMENTS:
        shortcut = subparsers.add_parser(
            name, help=f"shortcut for 'experiments {name}'"
        )
        add_runner_arguments(shortcut)

    subparsers.add_parser("attacks", help="run the active-attack suite")

    from repro.serve.cli import add_serve_arguments

    serve_parser = subparsers.add_parser(
        "serve", help="run the HTTP simulation service"
    )
    add_serve_arguments(serve_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="execute a declarative design-space sweep"
    )
    sweep_parser.add_argument(
        "--spec", required=True, help="sweep spec JSON file (see EXPERIMENTS.md)"
    )
    sweep_parser.add_argument(
        "--pareto", default=None, help="write the Pareto frontier CSV here"
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the planned wave/warm-start schedule without simulating",
    )
    sweep_parser.add_argument(
        "--label", default="sweep", help="manifest label (default: sweep)"
    )
    add_runner_arguments(sweep_parser)

    report_parser = subparsers.add_parser("report", help="full Markdown report")
    report_parser.add_argument("-o", "--output")
    report_parser.add_argument("--requests", type=int, default=4000)
    report_parser.add_argument("--fast", action="store_true")
    add_runner_arguments(report_parser)

    return parser


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiments": _cmd_experiments,
        "attacks": _cmd_attacks,
        "serve": _cmd_serve,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
    }
    handler = handlers.get(args.command, _cmd_experiment_shortcut)
    handler(args)


if __name__ == "__main__":
    main()
