"""Discrete-event simulation kernel: engine, clock domains and statistics."""

from repro.sim.clock import Clock
from repro.sim.engine import Engine, EventHandle, PS_PER_NS, ns_to_ps, ps_to_ns
from repro.sim.statistics import Histogram, StatGroup, StatRegistry

__all__ = [
    "Clock",
    "Engine",
    "EventHandle",
    "PS_PER_NS",
    "ns_to_ps",
    "ps_to_ns",
    "Histogram",
    "StatGroup",
    "StatRegistry",
]
