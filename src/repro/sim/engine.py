"""Discrete-event simulation engine.

A deliberately small, deterministic event kernel in the style of gem5's
event queue: events are (time, priority, sequence, callback) entries ordered
by time, then priority, then insertion order.  The sequence number makes
simultaneous events deterministic, which every experiment in this repository
relies on for reproducibility.

The kernel is the hottest code in the repository — every simulated
nanosecond flows through :meth:`Engine.run` — so its data layout is chosen
for throughput:

* Heap entries are plain ``[time_ps, priority, sequence, callback]`` lists.
  ``heapq`` compares them with C-level lexicographic comparison; because the
  sequence number is unique, the callback element is never compared and no
  Python ``__lt__`` ever runs.
* Cancellation is a lazy tombstone: :meth:`EventHandle.cancel` nulls the
  entry's callback slot in place and the run loop discards tombstones when
  they surface at the heap top.  Nothing is ever removed from the middle of
  the heap.
* A live-event counter makes :meth:`Engine.pending_events` O(1) regardless
  of how many tombstones are queued.
* Hot call sites that never cancel use :meth:`Engine.post` /
  :meth:`Engine.post_at`, which skip allocating an :class:`EventHandle`.

Time is kept in **picoseconds** as integers.  All the DDR/PCM timing
parameters in the paper are exact multiples of 0.25 ns, so integer
picoseconds keep arithmetic exact; helpers on :class:`Clock` convert to and
from nanoseconds and CPU cycles.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import ClassVar

from repro.errors import SimulationError

PS_PER_NS = 1000

class _FiredSentinel:
    """Singleton sentinel marking an entry's callback slot as executed.

    Handles distinguish fired events (this sentinel) from cancelled ones
    (``None``) by identity.  A bare ``object()`` would lose that identity
    through pickling, so checkpointed engines use this class: ``__new__``
    always hands back the module singleton and ``__reduce__`` pickles to a
    call of the class, making ``is _FIRED`` survive snapshot/restore even
    across processes.
    """

    __slots__ = ()
    _instance: "_FiredSentinel | None" = None

    def __new__(cls) -> "_FiredSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_FiredSentinel, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<fired>"


#: Sentinel stored in an entry's callback slot once the event has executed,
#: so handles can distinguish fired events from cancelled ones (``None``).
_FIRED = _FiredSentinel()

# Entry layout indices (entries are plain lists for C-speed comparison).
_TIME = 0
_PRIORITY = 1
_SEQUENCE = 2
_CALLBACK = 3

# Module-level binding: one global load instead of two attribute loads per
# scheduling call.
_heappush = heapq.heappush


def ns_to_ps(nanoseconds: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounding to nearest)."""
    return round(nanoseconds * PS_PER_NS)


def ps_to_ns(picoseconds: int) -> float:
    """Convert picoseconds back to float nanoseconds."""
    return picoseconds / PS_PER_NS


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`, for cancellation."""

    __slots__ = ("_engine", "_entry")

    def __init__(self, engine: "Engine", entry: list):
        self._engine = engine
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing (safe after it has fired: no-op)."""
        entry = self._entry
        callback = entry[_CALLBACK]
        if callback is not None and callback is not _FIRED:
            entry[_CALLBACK] = None
            self._engine._live -= 1

    @property
    def time_ps(self) -> int:
        return self._entry[_TIME]

    @property
    def pending(self) -> bool:
        """True while the event is queued: not yet fired, not cancelled."""
        callback = self._entry[_CALLBACK]
        return callback is not None and callback is not _FIRED

    @property
    def fired(self) -> bool:
        """True once the event's callback has executed."""
        return self._entry[_CALLBACK] is _FIRED

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before firing."""
        return self._entry[_CALLBACK] is None


class Engine:
    """Deterministic discrete-event simulation kernel."""

    __slots__ = (
        "_queue",
        "_now_ps",
        "_sequence",
        "_running",
        "_live",
        "_instrument",
        "events_executed",
    )

    #: Process-wide default instrumentation hook, picked up by every Engine
    #: at construction.  ``None`` (the default) keeps the run loop on a
    #: zero-overhead path; :mod:`repro.sim.profiling` installs a counter
    #: here while a ``--profile`` run is active.  The hook is called as
    #: ``hook(time_ps, callback)`` after each executed event.
    default_instrument: ClassVar[Callable[[int, Callable], None] | None] = None

    def __init__(self):
        self._queue: list[list] = []
        self._now_ps = 0
        self._sequence = 0
        self._running = False
        self._live = 0
        self._instrument = type(self).default_instrument
        self.events_executed = 0

    @property
    def now_ps(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now_ps

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return ps_to_ns(self._now_ps)

    def schedule(
        self, delay_ps: int, callback: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now.

        Lower ``priority`` values run first among simultaneous events.
        Returns a handle for cancellation; call sites that never cancel
        should prefer :meth:`post`, which skips the handle allocation.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        entry = [self._now_ps + delay_ps, priority, self._sequence, callback]
        self._sequence += 1
        self._live += 1
        _heappush(self._queue, entry)
        return EventHandle(self, entry)

    def schedule_at(
        self, time_ps: int, callback: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule at an absolute time, which must not be in the past."""
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps; now is {self._now_ps} ps"
            )
        return self.schedule(time_ps - self._now_ps, callback, priority)

    def post(
        self, delay_ps: int, callback: Callable[[], None], priority: int = 0
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        Identical ordering semantics; the only difference is that the event
        cannot be cancelled.  This is the fast path for the simulation's
        inner loops, where handles were measured to be pure overhead.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        _heappush(
            self._queue, [self._now_ps + delay_ps, priority, self._sequence, callback]
        )
        self._sequence += 1
        self._live += 1

    def post_at(
        self, time_ps: int, callback: Callable[[], None], priority: int = 0
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`EventHandle`."""
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps; now is {self._now_ps} ps"
            )
        _heappush(self._queue, [time_ps, priority, self._sequence, callback])
        self._sequence += 1
        self._live += 1

    def post_entry(
        self, delay_ps: int, callback: Callable[[], None], priority: int = 0
    ) -> list:
        """Schedule and return the *raw* queue entry (advanced fast path).

        The entry is the plain ``[time_ps, priority, sequence, callback]``
        list the heap holds; ``entry[0]`` is the fire time.  Cancel it with
        :meth:`cancel_entry`.  This exists for call sites that keep exactly
        one pending event and re-arm it constantly (the channel scheduler's
        wakeup), where even the :class:`EventHandle` allocation shows up.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        entry = [self._now_ps + delay_ps, priority, self._sequence, callback]
        self._sequence += 1
        self._live += 1
        _heappush(self._queue, entry)
        return entry

    def cancel_entry(self, entry: list) -> None:
        """Cancel a raw entry from :meth:`post_entry` (no-op once fired)."""
        callback = entry[_CALLBACK]
        if callback is not None and callback is not _FIRED:
            entry[_CALLBACK] = None
            self._live -= 1

    def run(
        self,
        until_ps: int | None = None,
        max_events: int | None = None,
        stop_after_events: int | None = None,
    ) -> None:
        """Execute events in order until the queue empties or limits hit.

        Parameters
        ----------
        until_ps:
            Stop once the next event would be strictly after this time.
        max_events:
            Safety valve for tests; raises if exceeded.
        stop_after_events:
            Return *cleanly* after executing this many events (unlike
            ``max_events``, which raises).  This is the checkpoint hook:
            the engine pauses between events, where its state — heap,
            clock, sequence counter — is self-consistent and
            snapshottable; calling :meth:`run` again continues exactly
            where the previous call stopped.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        if stop_after_events is not None and stop_after_events <= 0:
            return
        # The two event limits fold into ONE per-event comparison (the run
        # loop is the hottest code in the repository): whichever limit is
        # tighter becomes ``limit``; on equality the clean stop wins.
        limit = max_events
        raise_at_limit = True
        if stop_after_events is not None and (
            limit is None or stop_after_events <= limit
        ):
            limit = stop_after_events
            raise_at_limit = False
        self._running = True
        # Hot loop: locals beat attribute loads, entries are plain lists,
        # tombstones (nulled callbacks) are discarded as they surface.
        queue = self._queue
        pop = heapq.heappop
        instrument = self._instrument
        executed = 0
        now = self._now_ps
        try:
            while queue:
                entry = queue[0]
                callback = entry[_CALLBACK]
                if callback is None:
                    pop(queue)
                    continue
                time_ps = entry[_TIME]
                if until_ps is not None and time_ps > until_ps:
                    break
                pop(queue)
                if time_ps < now:
                    raise SimulationError("event queue corrupted: time reversal")
                self._now_ps = now = time_ps
                entry[_CALLBACK] = _FIRED
                self._live -= 1
                callback()
                executed += 1
                if instrument is not None:
                    instrument(time_ps, callback)
                if limit is not None and executed >= limit:
                    if raise_at_limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely a livelock"
                        )
                    break
            if until_ps is not None and until_ps > self._now_ps:
                self._now_ps = until_ps
        finally:
            self.events_executed += executed
            self._running = False

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    # -- checkpoint protocol ------------------------------------------------
    #
    # The engine may only be snapshotted *between* events (not from inside a
    # callback); everything that defines future behaviour — the heap, the
    # clock, the sequence counter, the live count — round-trips.  The
    # instrument hook is deliberately dropped: it is process-local
    # observability (a profiler counter), re-attached from
    # ``default_instrument`` on restore.  Pickling an engine as part of a
    # larger object graph uses the same state, so heap entries shared with
    # component-held references (e.g. the channel scheduler's wakeup entry)
    # keep their identity through one combined dump.

    def __getstate__(self) -> dict:
        if self._running:
            raise SimulationError("cannot snapshot a running engine mid-event")
        return {
            "queue": self._queue,
            "now_ps": self._now_ps,
            "sequence": self._sequence,
            "live": self._live,
            "events_executed": self.events_executed,
        }

    def __setstate__(self, state: dict) -> None:
        self._queue = state["queue"]
        self._now_ps = state["now_ps"]
        self._sequence = state["sequence"]
        self._running = False
        self._live = state["live"]
        self._instrument = type(self).default_instrument
        self.events_executed = state["events_executed"]

    def snapshot(self) -> dict:
        """Serializable engine state (heap + clock + counters).

        The outer heap list is copied so later scheduling does not mutate
        the snapshot's spine; the entries themselves are shared (they are
        frozen in place once fired, and pickling deep-copies them anyway).
        """
        state = self.__getstate__()
        return {**state, "queue": list(state["queue"])}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot`; the engine continues bit-identically."""
        self.__setstate__({**state, "queue": list(state["queue"])})
