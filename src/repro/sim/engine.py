"""Discrete-event simulation engine.

A deliberately small, deterministic event kernel in the style of gem5's
event queue: events are (time, priority, sequence, callback) tuples ordered
by time, then priority, then insertion order.  The sequence number makes
simultaneous events deterministic, which every experiment in this repository
relies on for reproducibility.

Time is kept in **picoseconds** as integers.  All the DDR/PCM timing
parameters in the paper are exact multiples of 0.25 ns, so integer
picoseconds keep arithmetic exact; helpers on :class:`Clock` convert to and
from nanoseconds and CPU cycles.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError

PS_PER_NS = 1000


def ns_to_ps(nanoseconds: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounding to nearest)."""
    return round(nanoseconds * PS_PER_NS)


def ps_to_ns(picoseconds: int) -> float:
    """Convert picoseconds back to float nanoseconds."""
    return picoseconds / PS_PER_NS


@dataclass(order=True)
class _ScheduledEvent:
    time_ps: int
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`, for cancellation."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (safe after it has fired: no-op)."""
        self._event.cancelled = True

    @property
    def time_ps(self) -> int:
        return self._event.time_ps

    @property
    def pending(self) -> bool:
        return not self._event.cancelled


class Engine:
    """Deterministic discrete-event simulation kernel."""

    def __init__(self):
        self._queue: list[_ScheduledEvent] = []
        self._now_ps = 0
        self._sequence = 0
        self._running = False
        self.events_executed = 0

    @property
    def now_ps(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now_ps

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return ps_to_ns(self._now_ps)

    def schedule(
        self, delay_ps: int, callback: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now.

        Lower ``priority`` values run first among simultaneous events.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ps})")
        event = _ScheduledEvent(
            time_ps=self._now_ps + delay_ps,
            priority=priority,
            sequence=self._sequence,
            callback=callback,
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self, time_ps: int, callback: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule at an absolute time, which must not be in the past."""
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps; now is {self._now_ps} ps"
            )
        return self.schedule(time_ps - self._now_ps, callback, priority)

    def run(self, until_ps: int | None = None, max_events: int | None = None) -> None:
        """Execute events in order until the queue empties or limits hit.

        Parameters
        ----------
        until_ps:
            Stop once the next event would be strictly after this time.
        max_events:
            Safety valve for tests; raises if exceeded.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        executed_this_run = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until_ps is not None and event.time_ps > until_ps:
                    break
                heapq.heappop(self._queue)
                if event.time_ps < self._now_ps:
                    raise SimulationError("event queue corrupted: time reversal")
                self._now_ps = event.time_ps
                event.callback()
                self.events_executed += 1
                executed_this_run += 1
                if max_events is not None and executed_this_run >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
            if until_ps is not None and until_ps > self._now_ps:
                self._now_ps = until_ps
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)
