"""Opt-in profiling harness: cProfile, event counts and phase attribution.

The simulation kernel is instrumented through
:attr:`repro.sim.engine.Engine.default_instrument` — a hook that costs one
``is not None`` check per event when off.  When a profiling session is
active, every engine constructed inherits an :class:`EventAccountant` that
counts executed events by callback target, while ``cProfile`` captures the
Python-level hotspots of the same wall-clock window.

Engine event counts only explain the *memory-side* of a run.  The second
instrument is :func:`phase`: front-end and simulator code wraps its
non-engine stages (synthetic trace generation, kernel-to-trace hierarchy
filtering, the engine drive loop itself) in ``with profiling.phase(name)``
blocks, which cost nothing measurable when no session is active and
accumulate per-phase wall-clock when one is.  ``--profile`` reports
therefore show the front-end vs memory-side split, not just event counts.

Usage (what ``--profile`` on the experiment CLIs does)::

    from repro.sim import profiling

    with profiling.capture() as session:
        ...  # build engines, run simulations

    json_path, text_path = session.write_reports(directory, "table1")

The reports land next to the sweep's run manifest:
``<cache-dir>/manifests/<label>.profile.json`` (machine-readable) and
``<label>.profile.txt`` (human-readable hotspot listing).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from contextlib import contextmanager
from pathlib import Path

from repro.sim.engine import Engine

#: How many cProfile rows the reports keep, sorted by internal time.
HOTSPOT_LIMIT = 30

#: The session currently collecting phase timings, or None.  Set by
#: :func:`capture`; read by :func:`phase` on every enclosed block.
_active_session = None


@contextmanager
def phase(name: str):
    """Attribute the wall-clock of the enclosed block to a named phase.

    When no profiling session is active this is a no-op beyond one module
    attribute read, so hot paths can wrap themselves unconditionally.
    Phases may repeat (each ``with`` adds to the phase's total) and may
    nest distinct names; nested time is attributed to *both* phases, so
    reports should treat top-level phases (``trace_generation``,
    ``hierarchy_filtering``, ``engine``) as the primary split.
    """
    session = _active_session
    if session is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        session.add_phase(name, time.perf_counter() - started)


def _target_name(callback) -> str:
    """Stable human-readable name for an event callback."""
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:  # functools.partial, callable objects, ...
        func = getattr(callback, "func", None)
        if func is not None:
            return _target_name(func)
        return type(callback).__name__
    module = getattr(callback, "__module__", "") or ""
    short_module = module.rsplit(".", 1)[-1]
    return f"{short_module}.{qualname}" if short_module else qualname


class EventAccountant:
    """Counts executed events per callback target.

    Instances are engine instrument hooks: the kernel calls them as
    ``instrument(time_ps, callback)`` after each executed event.
    """

    __slots__ = ("events", "by_target")

    def __init__(self):
        self.events = 0
        self.by_target: dict[str, int] = {}

    def __call__(self, time_ps: int, callback) -> None:
        self.events += 1
        target = _target_name(callback)
        by_target = self.by_target
        by_target[target] = by_target.get(target, 0) + 1

    def as_dict(self) -> dict[str, int]:
        """Targets sorted by descending event count."""
        return dict(
            sorted(self.by_target.items(), key=lambda item: (-item[1], item[0]))
        )


class ProfileSession:
    """One completed profiling window: cProfile stats + event accounting."""

    def __init__(self, accountant: EventAccountant, profiler: cProfile.Profile):
        self.accountant = accountant
        self.profiler = profiler
        self.wall_s: float = 0.0
        #: Per-phase accumulated wall-clock: name -> {"wall_s", "calls"}.
        self.phases: dict[str, dict[str, float]] = {}

    def add_phase(self, name: str, wall_s: float) -> None:
        """Fold one :func:`phase` block's wall-clock into the session."""
        entry = self.phases.get(name)
        if entry is None:
            entry = self.phases[name] = {"wall_s": 0.0, "calls": 0}
        entry["wall_s"] += wall_s
        entry["calls"] += 1

    # -- report generation --------------------------------------------------

    def _stats(self) -> pstats.Stats:
        return pstats.Stats(self.profiler, stream=io.StringIO())

    def hotspots(self, limit: int = HOTSPOT_LIMIT) -> list[dict]:
        """Top functions by internal time, as JSON-friendly records."""
        stats = self._stats()
        rows = []
        for func, (cc, ncalls, tottime, cumtime, _callers) in stats.stats.items():
            filename, line, name = func
            rows.append(
                {
                    "function": name,
                    "location": f"{filename}:{line}",
                    "ncalls": ncalls,
                    "primitive_calls": cc,
                    "tottime_s": round(tottime, 6),
                    "cumtime_s": round(cumtime, 6),
                }
            )
        rows.sort(key=lambda row: -row["tottime_s"])
        return rows[:limit]

    def to_jsonable(self, label: str) -> dict:
        """The machine-readable report (what the ``.json`` file holds)."""
        events = self.accountant.events
        return {
            "label": label,
            "wall_s": round(self.wall_s, 6),
            "events_executed": events,
            "events_per_sec": round(events / self.wall_s, 1) if self.wall_s else 0.0,
            "events_by_target": self.accountant.as_dict(),
            "phases": {
                name: {"wall_s": round(entry["wall_s"], 6), "calls": entry["calls"]}
                for name, entry in sorted(
                    self.phases.items(), key=lambda item: -item[1]["wall_s"]
                )
            },
            "hotspots": self.hotspots(),
        }

    def text_report(self, label: str) -> str:
        """Human-readable hotspot report (what the ``.txt`` file holds)."""
        out = io.StringIO()
        events = self.accountant.events
        out.write(f"profile: {label}\n")
        out.write(f"wall time          : {self.wall_s:.3f} s\n")
        out.write(f"events executed    : {events}\n")
        if self.wall_s:
            out.write(f"events per second  : {events / self.wall_s:,.0f}\n")
        out.write("\nevents by callback target:\n")
        for target, count in self.accountant.as_dict().items():
            out.write(f"  {count:10d}  {target}\n")
        if self.phases:
            out.write("\nwall time by phase:\n")
            for name, entry in sorted(
                self.phases.items(), key=lambda item: -item[1]["wall_s"]
            ):
                share = entry["wall_s"] / self.wall_s if self.wall_s else 0.0
                out.write(
                    f"  {entry['wall_s']:10.3f} s  {share:6.1%}  "
                    f"({entry['calls']} calls)  {name}\n"
                )
        out.write("\nhotspots (cProfile, by internal time):\n")
        stats = pstats.Stats(self.profiler, stream=out)
        stats.sort_stats("tottime").print_stats(HOTSPOT_LIMIT)
        return out.getvalue()

    def write_reports(self, directory: str | Path, label: str) -> tuple[Path, Path]:
        """Write ``<label>.profile.json`` and ``.txt`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        json_path = directory / f"{label}.profile.json"
        text_path = directory / f"{label}.profile.txt"
        json_path.write_text(json.dumps(self.to_jsonable(label), indent=1) + "\n")
        text_path.write_text(self.text_report(label))
        return json_path, text_path


@contextmanager
def capture():
    """Profile everything inside the ``with`` block.

    Installs an :class:`EventAccountant` as the default engine instrument
    (picked up by every :class:`~repro.sim.engine.Engine` constructed inside
    the block) and runs ``cProfile`` over the same window.  Yields the
    :class:`ProfileSession`; its reports are complete once the block exits.

    Sessions do not nest: the previous instrument is restored on exit.
    """
    global _active_session
    accountant = EventAccountant()
    profiler = cProfile.Profile()
    session = ProfileSession(accountant, profiler)
    previous = Engine.default_instrument
    previous_session = _active_session
    Engine.default_instrument = accountant
    _active_session = session
    start = time.perf_counter()
    profiler.enable()
    try:
        yield session
    finally:
        profiler.disable()
        Engine.default_instrument = previous
        _active_session = previous_session
        session.wall_s = time.perf_counter() - start
