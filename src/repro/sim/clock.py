"""Clock domains: convert between cycles and simulation picoseconds.

The simulated machine has several clock domains (2 GHz cores, 800 MHz DDR
bus, 250 MHz AES engine cycle time of 4 ns); each is represented by a
:class:`Clock` that converts cycle counts to engine time.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.engine import PS_PER_NS


class Clock:
    """A fixed-frequency clock domain.

    >>> cpu = Clock.from_frequency_ghz(2.0)
    >>> cpu.cycles_to_ps(2)
    1000
    """

    def __init__(self, period_ps: int):
        if period_ps <= 0:
            raise ConfigurationError("clock period must be positive")
        self.period_ps = period_ps

    @classmethod
    def from_frequency_ghz(cls, ghz: float) -> "Clock":
        return cls(round(PS_PER_NS / ghz))

    @classmethod
    def from_period_ns(cls, nanoseconds: float) -> "Clock":
        return cls(round(nanoseconds * PS_PER_NS))

    @property
    def frequency_ghz(self) -> float:
        return PS_PER_NS / self.period_ps

    def cycles_to_ps(self, cycles: float) -> int:
        """Duration of ``cycles`` clock cycles in picoseconds."""
        return round(cycles * self.period_ps)

    def ps_to_cycles(self, picoseconds: int) -> float:
        """How many cycles of this clock fit in ``picoseconds``."""
        return picoseconds / self.period_ps
