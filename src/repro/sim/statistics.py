"""Statistics registry: counters, histograms and derived metrics.

Every simulated component owns a :class:`StatGroup`; the system simulator
collects them into one report.  The design mirrors gem5's stats: named
scalar counters plus simple distributions, all dumpable to a flat dict so
experiments can diff runs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class Histogram:
    """A bucketed distribution of integer samples."""

    samples: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    buckets: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    bucket_width: float = 1.0

    def record(self, value: float) -> None:
        """Add one sample to the distribution."""
        self.samples += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.buckets[int(value // self.bucket_width)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0


class StatGroup:
    """A named set of counters and histograms owned by one component."""

    def __init__(self, name: str):
        if not name:
            raise ConfigurationError("stat group needs a non-empty name")
        self.name = name
        self._counters: dict[str, float] = defaultdict(float)
        self._histograms: dict[str, Histogram] = {}

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named counter (created on first use)."""
        self._counters[counter] += amount

    def set(self, counter: str, value: float) -> None:
        """Set a counter to an absolute value."""
        self._counters[counter] = value

    def get(self, counter: str) -> float:
        """Read a counter; missing counters read as zero."""
        return self._counters.get(counter, 0.0)

    def record(self, histogram: str, value: float, bucket_width: float = 1.0) -> None:
        """Record a sample into a named histogram."""
        if histogram not in self._histograms:
            self._histograms[histogram] = Histogram(bucket_width=bucket_width)
        self._histograms[histogram].record(value)

    def histogram(self, name: str) -> Histogram | None:
        """Named histogram, or None if never recorded."""
        return self._histograms.get(name)

    def as_dict(self) -> dict[str, float]:
        """Flatten counters (and histogram means) into ``name.key`` pairs."""
        flat = {f"{self.name}.{key}": value for key, value in self._counters.items()}
        for key, histogram in self._histograms.items():
            flat[f"{self.name}.{key}.mean"] = histogram.mean
            flat[f"{self.name}.{key}.samples"] = histogram.samples
        return flat

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two counters (0 when the denominator is 0)."""
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0


class StatRegistry:
    """All stat groups of a simulated system."""

    def __init__(self):
        self._groups: dict[str, StatGroup] = {}

    def group(self, name: str) -> StatGroup:
        """Get or create the group with this name."""
        if name not in self._groups:
            self._groups[name] = StatGroup(name)
        return self._groups[name]

    def as_dict(self) -> dict[str, float]:
        """Flattened counters of every group, merged into one dict."""
        flat: dict[str, float] = {}
        for group in self._groups.values():
            flat.update(group.as_dict())
        return flat

    def groups(self) -> list[StatGroup]:
        """All stat groups registered so far."""
        return list(self._groups.values())
