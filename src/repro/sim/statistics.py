"""Statistics registry: counters, histograms and derived metrics.

Every simulated component owns a :class:`StatGroup`; the system simulator
collects them into one report.  The design mirrors gem5's stats: named
scalar counters plus simple distributions, all dumpable to a flat dict so
experiments can diff runs.

:meth:`StatGroup.add` and :meth:`StatGroup.record` sit on the simulation's
hot path (every issued request records counters and latency samples), so
both classes use ``__slots__`` and :meth:`Histogram.record` avoids any
per-sample allocation or function-call indirection.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ConfigurationError


class Histogram:
    """A bucketed distribution of numeric samples."""

    __slots__ = ("samples", "total", "minimum", "maximum", "buckets", "bucket_width")

    def __init__(self, bucket_width: float = 1.0):
        self.samples = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets: dict[int, int] = defaultdict(int)
        self.bucket_width = bucket_width

    def record(self, value: float) -> None:
        """Add one sample to the distribution."""
        self.samples += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.buckets[int(value // self.bucket_width)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    # -- checkpoint protocol ------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable distribution state (buckets copied out)."""
        return {
            "samples": self.samples,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "bucket_width": self.bucket_width,
            "buckets": dict(self.buckets),
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` *in place*.

        The bucket mapping is mutated rather than rebound, so hot-path
        bindings from :meth:`StatGroup.live_histogram` keep observing the
        restored distribution.
        """
        self.samples = state["samples"]
        self.total = state["total"]
        self.minimum = state["minimum"]
        self.maximum = state["maximum"]
        self.bucket_width = state["bucket_width"]
        self.buckets.clear()
        self.buckets.update(state["buckets"])


class StatGroup:
    """A named set of counters and histograms owned by one component."""

    __slots__ = ("name", "_counters", "_histograms")

    def __init__(self, name: str):
        if not name:
            raise ConfigurationError("stat group needs a non-empty name")
        self.name = name
        self._counters: dict[str, float] = defaultdict(float)
        self._histograms: dict[str, Histogram] = {}

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named counter (created on first use)."""
        self._counters[counter] += amount

    def set(self, counter: str, value: float) -> None:
        """Set a counter to an absolute value."""
        self._counters[counter] = value

    def get(self, counter: str) -> float:
        """Read a counter; missing counters read as zero."""
        return self._counters.get(counter, 0.0)

    def record(self, histogram: str, value: float, bucket_width: float = 1.0) -> None:
        """Record a sample into a named histogram."""
        existing = self._histograms.get(histogram)
        if existing is None:
            existing = self._histograms[histogram] = Histogram(bucket_width)
        existing.record(value)

    def histogram(self, name: str) -> Histogram | None:
        """Named histogram, or None if never recorded."""
        return self._histograms.get(name)

    # -- hot-path accessors -------------------------------------------------
    #
    # Components on the simulation's inner loop (the channel scheduler, the
    # ObfusMem controller) bind these once and update counters/histograms
    # with plain dict/attribute operations, skipping a method call per
    # sample.  The returned objects are the live ones — updates through them
    # and through add()/record() are interchangeable and immediately visible.

    def counters(self) -> dict[str, float]:
        """The live counter mapping (a defaultdict; missing keys read 0.0)."""
        return self._counters

    def live_histogram(self, name: str, bucket_width: float = 1.0) -> Histogram:
        """Get-or-create a histogram for direct :meth:`Histogram.record` use."""
        existing = self._histograms.get(name)
        if existing is None:
            existing = self._histograms[name] = Histogram(bucket_width)
        return existing

    def as_dict(self) -> dict[str, float]:
        """Flatten counters (and histogram means) into ``name.key`` pairs."""
        flat = {f"{self.name}.{key}": value for key, value in self._counters.items()}
        for key, histogram in self._histograms.items():
            flat[f"{self.name}.{key}.mean"] = histogram.mean
            flat[f"{self.name}.{key}.samples"] = histogram.samples
        return flat

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two counters (0 when the denominator is 0)."""
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    # -- checkpoint protocol ------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable group state: counters and histogram snapshots."""
        return {
            "name": self.name,
            "counters": dict(self._counters),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in self._histograms.items()
            },
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` *in place*.

        The live counter mapping handed out by :meth:`counters` is mutated,
        never rebound, so components holding hot-path bindings keep writing
        into the restored state.  Histograms recorded after the snapshot
        are dropped (they did not exist then); surviving ones are restored
        through :meth:`Histogram.restore`, again preserving identity.
        """
        self.name = state["name"]
        self._counters.clear()
        self._counters.update(state["counters"])
        saved = state["histograms"]
        for name in [key for key in self._histograms if key not in saved]:
            del self._histograms[name]
        for name, histogram_state in saved.items():
            existing = self._histograms.get(name)
            if existing is None:
                existing = self._histograms[name] = Histogram(
                    histogram_state["bucket_width"]
                )
            existing.restore(histogram_state)


class StatRegistry:
    """All stat groups of a simulated system."""

    __slots__ = ("_groups",)

    def __init__(self):
        self._groups: dict[str, StatGroup] = {}

    def group(self, name: str) -> StatGroup:
        """Get or create the group with this name."""
        existing = self._groups.get(name)
        if existing is None:
            existing = self._groups[name] = StatGroup(name)
        return existing

    def as_dict(self) -> dict[str, float]:
        """Flattened counters of every group, merged into one dict."""
        flat: dict[str, float] = {}
        for group in self._groups.values():
            flat.update(group.as_dict())
        return flat

    def groups(self) -> list[StatGroup]:
        """All stat groups registered so far."""
        return list(self._groups.values())

    # -- checkpoint protocol ------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable registry state: every group's snapshot, by name."""
        return {name: group.snapshot() for name, group in self._groups.items()}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` *in place* (group identity preserved).

        Groups created after the snapshot are dropped; groups present in
        both are restored through :meth:`StatGroup.restore`, so component
        references to their group objects stay valid.
        """
        for name in [key for key in self._groups if key not in state]:
            del self._groups[name]
        for name, group_state in state.items():
            self.group(name).restore(group_state)
