"""Start-Gap wear leveling: mapping algebra and wear spreading."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping, DecodedAddress
from repro.mem.dram_timing import PcmEnergy, PcmTiming
from repro.mem.pcm import PcmDevice
from repro.mem.wear_leveling import StartGapWearLeveler, wear_metrics
from repro.sim.statistics import StatGroup


def make_leveler(rows=16, interval=4):
    return StartGapWearLeveler(rows, StatGroup("wl"), gap_write_interval=interval)


class TestMapping:
    def test_initial_mapping_is_identity(self):
        leveler = make_leveler()
        for row in range(16):
            assert leveler.physical_row(row) == row

    def test_mapping_is_injective_always(self):
        leveler = make_leveler(rows=16, interval=1)
        for _ in range(100):
            physical = [leveler.physical_row(r) for r in range(16)]
            assert len(set(physical)) == 16
            assert all(0 <= p <= 16 for p in physical)
            leveler.note_row_write()

    def test_gap_never_mapped(self):
        leveler = make_leveler(rows=8, interval=1)
        for _ in range(50):
            physical = {leveler.physical_row(r) for r in range(8)}
            assert leveler.gap not in physical
            leveler.note_row_write()

    def test_gap_moves_every_interval(self):
        leveler = make_leveler(rows=8, interval=4)
        start_gap = leveler.gap
        for _ in range(3):
            assert leveler.note_row_write() == 0
        assert leveler.note_row_write() == 1
        assert leveler.gap == start_gap - 1

    def test_full_rotation_advances_start(self):
        leveler = make_leveler(rows=4, interval=1)
        for _ in range(5):  # gap walks 4 -> 0, then wraps
            leveler.note_row_write()
        assert leveler.start == 1

    def test_every_logical_row_migrates(self):
        """Over enough rotations, a hot logical row visits many physical
        rows — the property that bounds wear."""
        leveler = make_leveler(rows=8, interval=1)
        homes = set()
        for _ in range(100):
            homes.add(leveler.physical_row(0))
            leveler.note_row_write()
        assert len(homes) >= 8

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            make_leveler(rows=8).physical_row(8)

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            StartGapWearLeveler(1, StatGroup("wl"))
        with pytest.raises(ConfigurationError):
            StartGapWearLeveler(8, StatGroup("wl"), gap_write_interval=0)

    def test_write_overhead(self):
        assert make_leveler(interval=16).write_overhead == pytest.approx(1 / 16)


class TestWearMetrics:
    def test_even_wear(self):
        maximum, imbalance = wear_metrics({0: 5, 1: 5, 2: 5, 3: 5}, 4)
        assert maximum == 5
        assert imbalance == pytest.approx(1.0)

    def test_hot_row(self):
        maximum, imbalance = wear_metrics({0: 100}, 10)
        assert maximum == 100
        assert imbalance == pytest.approx(10.0)

    def test_empty(self):
        assert wear_metrics({}, 4) == (0, 1.0)


class TestDeviceIntegration:
    def _hammer(self, wear_leveling):
        """Alternate dirty evictions between two rows of one bank.

        A 1MB device has 64 rows per bank, so the gap sweeps the whole
        region several times during the hammering and the hot row migrates.
        """
        mapping = AddressMapping(capacity_bytes=1 << 20, channels=1)
        device = PcmDevice(
            mapping,
            0,
            PcmTiming(),
            PcmEnergy(),
            StatGroup("pcm"),
            wear_leveling=wear_leveling,
            gap_write_interval=2,
        )
        hot = DecodedAddress(channel=0, rank=0, bank=0, row=0, column=0)
        other = DecodedAddress(channel=0, rank=0, bank=0, row=1, column=0)
        for _ in range(400):
            device.access(hot, is_write=True)
            device.access(other, is_write=False)  # evicts dirty hot row
        return device

    def test_leveling_spreads_hot_row_wear(self):
        plain = self._hammer(wear_leveling=False)
        leveled = self._hammer(wear_leveling=True)
        assert leveled.max_row_writes < plain.max_row_writes

    def test_leveling_costs_extra_writes(self):
        plain = self._hammer(wear_leveling=False)
        leveled = self._hammer(wear_leveling=True)
        extra = leveled.stats.get("wear_level_writes")
        assert extra > 0
        # Bounded by the configured 1/interval overhead.
        assert extra <= plain.total_cell_writes / 2 + 1
