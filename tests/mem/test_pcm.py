"""PCM device: row-buffer semantics, wear accounting, functional store."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.dram_timing import PcmEnergy, PcmTiming
from repro.mem.pcm import PcmDevice
from repro.sim.statistics import StatGroup


def make_device(functional=False, channels=1):
    mapping = AddressMapping(channels=channels)
    return (
        PcmDevice(
            mapping, 0, PcmTiming(), PcmEnergy(), StatGroup("pcm"), functional=functional
        ),
        mapping,
    )


class TestRowBuffer:
    def test_first_access_activates(self):
        device, mapping = make_device()
        timing = device.access(mapping.decode(0), is_write=False)
        assert not timing.row_hit
        assert timing.preparation_ps == PcmTiming().t_rcd_ps

    def test_same_row_hits(self):
        device, mapping = make_device()
        device.access(mapping.decode(0), is_write=False)
        timing = device.access(mapping.decode(64), is_write=False)
        assert timing.row_hit
        assert timing.preparation_ps == 0

    def test_clean_row_conflict_costs_activation_only(self):
        device, mapping = make_device()
        device.access(mapping.decode(0), is_write=False)
        # Another row in the same bank: same (rank, bank), different row.
        conflict = mapping.encode(
            mapping.decode(0).__class__(channel=0, rank=0, bank=0, row=5, column=0)
        )
        timing = device.access(mapping.decode(conflict), is_write=False)
        assert timing.preparation_ps == PcmTiming().t_rcd_ps
        assert not timing.wrote_cells

    def test_dirty_row_conflict_writes_cells(self):
        device, mapping = make_device()
        device.access(mapping.decode(0), is_write=True)  # dirty row 0
        conflict = mapping.encode(
            mapping.decode(0).__class__(channel=0, rank=0, bank=0, row=5, column=0)
        )
        timing = device.access(mapping.decode(conflict), is_write=False)
        assert timing.wrote_cells
        expected = PcmTiming().t_rp_ps + PcmTiming().t_rcd_ps
        assert timing.preparation_ps == expected
        assert device.total_cell_writes == 1

    def test_writes_only_dirty_the_buffer(self):
        device, mapping = make_device()
        device.access(mapping.decode(0), is_write=True)
        assert device.total_cell_writes == 0  # cells written only on eviction


class TestWear:
    def test_flush_accounts_dirty_rows(self):
        device, mapping = make_device()
        device.access(mapping.decode(0), is_write=True)
        assert device.flush_dirty_rows() == 1
        assert device.total_cell_writes == 1

    def test_flush_idempotent(self):
        device, mapping = make_device()
        device.access(mapping.decode(0), is_write=True)
        device.flush_dirty_rows()
        assert device.flush_dirty_rows() == 0

    def test_max_row_writes_tracks_hot_row(self):
        device, mapping = make_device()
        row0 = mapping.decode(0)
        row5 = mapping.decode(
            mapping.encode(row0.__class__(channel=0, rank=0, bank=0, row=5, column=0))
        )
        for _ in range(3):
            device.access(row0, is_write=True)
            device.access(row5, is_write=False)  # evicts dirty row 0
        assert device.max_row_writes == 3


class TestEnergyStats:
    def test_energy_accumulates(self):
        device, mapping = make_device()
        device.access(mapping.decode(0), is_write=False)
        assert device.stats.get("energy_pj") > 0
        assert device.stats.get("array_reads") == 1

    def test_row_hit_counted(self):
        device, mapping = make_device()
        device.access(mapping.decode(0), is_write=False)
        device.access(mapping.decode(64), is_write=False)
        assert device.stats.get("row_buffer_hits") == 1


class TestFunctionalStore:
    def test_read_write_roundtrip(self):
        device, _ = make_device(functional=True)
        device.write_block(128, b"\x42" * 64)
        assert device.read_block(128) == b"\x42" * 64

    def test_unwritten_reads_zero(self):
        device, _ = make_device(functional=True)
        assert device.read_block(0) == b"\x00" * 64

    def test_unaligned_access_normalized(self):
        device, _ = make_device(functional=True)
        device.write_block(130, b"\x01" * 64)
        assert device.read_block(128) == b"\x01" * 64

    def test_non_functional_rejects_data_access(self):
        device, _ = make_device(functional=False)
        with pytest.raises(ConfigurationError):
            device.read_block(0)

    def test_bad_block_size_rejected(self):
        device, _ = make_device(functional=True)
        with pytest.raises(ConfigurationError):
            device.write_block(0, b"short")
