"""Set-associative cache: LRU, evictions, MESI line states."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mem.cache import MesiState, SetAssociativeCache
from repro.sim.statistics import StatGroup


def make_cache(size=4096, assoc=4):
    return SetAssociativeCache("test", size, assoc, 2, StatGroup("test"))


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(size=4096, assoc=4)  # 4096/(4*64) = 16 sets
        assert cache.num_sets == 16

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache("bad", 1000, 3, 1, StatGroup("bad"))

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache("bad", 3 * 64 * 2, 2, 1, StatGroup("bad"))


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(5) is None
        cache.insert(5, MesiState.EXCLUSIVE)
        assert cache.lookup(5).state is MesiState.EXCLUSIVE

    def test_reinsert_updates_state(self):
        cache = make_cache()
        cache.insert(5, MesiState.EXCLUSIVE)
        cache.insert(5, MesiState.MODIFIED)
        assert cache.lookup(5).state is MesiState.MODIFIED

    def test_lru_victim_selection(self):
        cache = make_cache(size=2 * 64 * 16, assoc=2)  # 16 sets, 2-way
        way0, way1, way2 = 0, 16, 32  # same set (stride = num_sets)
        cache.insert(way0, MesiState.EXCLUSIVE)
        cache.insert(way1, MesiState.EXCLUSIVE)
        cache.lookup(way0)  # touch way0: way1 becomes LRU
        eviction = cache.insert(way2, MesiState.EXCLUSIVE)
        assert eviction.block == way1

    def test_dirty_eviction_flagged(self):
        cache = make_cache(size=2 * 64 * 16, assoc=2)
        cache.insert(0, MesiState.MODIFIED)
        cache.insert(16, MesiState.EXCLUSIVE)
        eviction = cache.insert(32, MesiState.EXCLUSIVE)
        assert eviction.block == 0 and eviction.dirty

    def test_clean_eviction_not_dirty(self):
        cache = make_cache(size=2 * 64 * 16, assoc=2)
        cache.insert(0, MesiState.SHARED)
        cache.insert(16, MesiState.EXCLUSIVE)
        eviction = cache.insert(32, MesiState.EXCLUSIVE)
        assert not eviction.dirty


class TestCoherenceOperations:
    def test_invalidate_returns_dirtiness(self):
        cache = make_cache()
        cache.insert(1, MesiState.MODIFIED)
        assert cache.invalidate(1) is True
        assert cache.lookup(1) is None

    def test_invalidate_absent_block(self):
        assert make_cache().invalidate(99) is False

    def test_downgrade_modified_to_shared(self):
        cache = make_cache()
        cache.insert(1, MesiState.MODIFIED)
        assert cache.downgrade(1) is True
        assert cache.lookup(1).state is MesiState.SHARED

    def test_downgrade_exclusive_clean(self):
        cache = make_cache()
        cache.insert(1, MesiState.EXCLUSIVE)
        assert cache.downgrade(1) is False

    def test_set_state_requires_residency(self):
        with pytest.raises(ConfigurationError):
            make_cache().set_state(42, MesiState.SHARED)


@settings(max_examples=30)
@given(
    operations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=200), st.booleans()),
        max_size=100,
    )
)
def test_capacity_never_exceeded(operations):
    cache = make_cache(size=1024, assoc=2)  # 8 sets x 2 ways = 16 lines
    for block, dirty in operations:
        cache.insert(block, MesiState.MODIFIED if dirty else MesiState.EXCLUSIVE)
    assert len(cache.resident_blocks()) <= 16


@settings(max_examples=30)
@given(blocks=st.lists(st.integers(min_value=0, max_value=500), max_size=60))
def test_most_recent_insert_always_resident(blocks):
    cache = make_cache(size=1024, assoc=2)
    for block in blocks:
        cache.insert(block, MesiState.EXCLUSIVE)
        assert cache.contains(block)
