"""Memory requests and the RoRaBaChCo address mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping, DecodedAddress
from repro.mem.request import (
    BLOCK_SIZE_BYTES,
    MemoryRequest,
    RequestType,
    block_aligned,
)


class TestMemoryRequest:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigurationError):
            MemoryRequest(3, RequestType.READ)

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryRequest(-64, RequestType.READ)

    def test_payload_size_enforced(self):
        with pytest.raises(ConfigurationError):
            MemoryRequest(0, RequestType.WRITE, payload=b"short")

    def test_opposite_type(self):
        assert RequestType.READ.opposite is RequestType.WRITE
        assert RequestType.WRITE.opposite is RequestType.READ

    def test_block_index(self):
        assert MemoryRequest(128, RequestType.READ).block_index == 2

    def test_latency_requires_completion(self):
        request = MemoryRequest(0, RequestType.READ)
        with pytest.raises(ConfigurationError):
            _ = request.latency_ps
        request.issue_time_ps = 100
        request.complete_time_ps = 350
        assert request.latency_ps == 250

    def test_unique_ids(self):
        a = MemoryRequest(0, RequestType.READ)
        b = MemoryRequest(0, RequestType.READ)
        assert a.request_id != b.request_id

    def test_block_aligned(self):
        assert block_aligned(130) == 128


class TestAddressMapping:
    def test_table2_organization(self):
        mapping = AddressMapping()
        assert mapping.channels == 1
        assert mapping.blocks_per_row == 16  # 1KB row / 64B blocks
        assert mapping.num_blocks == (8 << 30) // 64

    def test_decode_low_address(self):
        mapping = AddressMapping(channels=2)
        decoded = mapping.decode(0)
        assert decoded == DecodedAddress(channel=0, rank=0, bank=0, row=0, column=0)

    def test_column_walks_first(self):
        mapping = AddressMapping(channels=2)
        # Consecutive blocks stay in the same row until the column wraps.
        first = mapping.decode(0)
        second = mapping.decode(64)
        assert (second.row, second.channel, second.bank) == (
            first.row,
            first.channel,
            first.bank,
        )
        assert second.column == first.column + 1

    def test_channel_interleaves_after_row_chunk(self):
        mapping = AddressMapping(channels=2)
        # After one row's worth of blocks (1KB), the channel flips.
        assert mapping.decode(1024).channel == 1
        assert mapping.decode(2048).channel == 0

    def test_channel_of_matches_decode(self):
        mapping = AddressMapping(channels=4)
        for address in (0, 1024, 4096, 123 * 64, 999 * 1024):
            assert mapping.channel_of(address) == mapping.decode(address).channel

    def test_out_of_range_rejected(self):
        mapping = AddressMapping(capacity_bytes=1 << 20, channels=1)
        with pytest.raises(ConfigurationError):
            mapping.decode(1 << 20)

    def test_non_power_of_two_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMapping(channels=3)

    def test_dummy_block_per_channel(self):
        mapping = AddressMapping(channels=4)
        addresses = {mapping.dummy_block_address(c) for c in range(4)}
        assert len(addresses) == 4
        for channel in range(4):
            address = mapping.dummy_block_address(channel)
            assert mapping.channel_of(address) == channel
            assert address % BLOCK_SIZE_BYTES == 0

    def test_dummy_block_out_of_range_channel(self):
        with pytest.raises(ConfigurationError):
            AddressMapping(channels=2).dummy_block_address(2)


@given(
    block=st.integers(min_value=0, max_value=(1 << 27) - 1),
    channels=st.sampled_from([1, 2, 4, 8]),
)
def test_encode_decode_roundtrip(block, channels):
    mapping = AddressMapping(capacity_bytes=8 << 30, channels=channels)
    address = block * BLOCK_SIZE_BYTES
    assert mapping.encode(mapping.decode(address)) == address


@given(block=st.integers(min_value=0, max_value=(1 << 27) - 1))
def test_decode_fields_in_range(block):
    mapping = AddressMapping(channels=4)
    decoded = mapping.decode(block * BLOCK_SIZE_BYTES)
    assert 0 <= decoded.channel < 4
    assert 0 <= decoded.rank < mapping.ranks_per_channel
    assert 0 <= decoded.bank < mapping.banks_per_rank
    assert 0 <= decoded.column < mapping.blocks_per_row
    assert 0 <= decoded.row < mapping.rows_per_bank
