"""Three-level hierarchy: hit levels, write-backs, MESI coherence."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig
from repro.mem.request import RequestType
from repro.sim.statistics import StatRegistry


def make_hierarchy(**kwargs):
    return CacheHierarchy(HierarchyConfig(**kwargs), StatRegistry())


class TestHitLevels:
    def test_cold_miss_goes_to_memory(self):
        hierarchy = make_hierarchy()
        result = hierarchy.access(0, 0x1000, is_write=False)
        assert result.hit_level == "memory"
        assert any(r.is_read for r in result.memory_requests)

    def test_second_access_hits_l1(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0, 0x1000, is_write=False)
        result = hierarchy.access(0, 0x1000, is_write=False)
        assert result.hit_level == "L1"
        assert result.memory_requests == []

    def test_latency_accumulates_per_level(self):
        config = HierarchyConfig()
        hierarchy = CacheHierarchy(config, StatRegistry())
        miss = hierarchy.access(0, 0x1000, False)
        hit = hierarchy.access(0, 0x1000, False)
        assert hit.latency_cycles == config.l1_latency
        assert miss.latency_cycles == (
            config.l1_latency + config.l2_latency + config.l3_latency
        )

    def test_l3_hit_after_other_core_fetch(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0, 0x1000, is_write=False)
        result = hierarchy.access(1, 0x1000, is_write=False)
        assert result.hit_level == "L3"


class TestWritebacks:
    def test_dirty_l3_eviction_writes_back(self):
        # Tiny L3 so evictions occur quickly.
        hierarchy = make_hierarchy(
            cores=1,
            l1_size=2 * 64 * 2,
            l1_assoc=2,
            l2_size=4 * 64 * 2,
            l2_assoc=2,
            l3_size=8 * 64 * 2,
            l3_assoc=2,
        )
        writebacks = []
        # Write a block, then stream enough conflicting blocks to push it
        # out of the inclusive L3.
        hierarchy.access(0, 0, is_write=True)
        for i in range(1, 64):
            result = hierarchy.access(0, i * 64 * 16, is_write=False)
            writebacks += [r for r in result.memory_requests if r.is_write]
        assert writebacks, "expected a dirty write-back from L3 eviction"
        assert all(r.request_type is RequestType.WRITE for r in writebacks)

    def test_inclusive_l3_back_invalidates(self):
        hierarchy = make_hierarchy(
            cores=1,
            l1_size=2 * 64 * 2,
            l1_assoc=2,
            l2_size=4 * 64 * 2,
            l2_assoc=2,
            l3_size=8 * 64 * 2,
            l3_assoc=2,
        )
        hierarchy.access(0, 0, is_write=False)
        for i in range(1, 64):
            hierarchy.access(0, i * 64 * 16, is_write=False)
        stats = hierarchy.stats
        assert stats.get("back_invalidations") > 0


class TestCoherence:
    def test_write_invalidates_other_core(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0, 0x2000, is_write=False)
        hierarchy.access(1, 0x2000, is_write=False)
        hierarchy.access(0, 0x2000, is_write=True)
        # Core 1 must re-fetch (its copy was invalidated) — but from L3,
        # not memory.
        result = hierarchy.access(1, 0x2000, is_write=False)
        assert result.hit_level == "L3"
        assert hierarchy.stats.get("coherence_invalidations") > 0

    def test_read_sharing_no_invalidation(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0, 0x3000, is_write=False)
        hierarchy.access(1, 0x3000, is_write=False)
        assert hierarchy.stats.get("coherence_invalidations") == 0

    def test_invalid_core_rejected(self):
        with pytest.raises(ConfigurationError):
            make_hierarchy(cores=2).access(2, 0, False)


class TestMpki:
    def test_mpki_accounting(self):
        hierarchy = make_hierarchy()
        hierarchy.instructions = 10_000
        for i in range(10):
            hierarchy.access(0, i * 64 * 1024, is_write=False)
        assert hierarchy.mpki() == pytest.approx(1.0)

    def test_zero_instructions(self):
        assert make_hierarchy().mpki() == 0.0
