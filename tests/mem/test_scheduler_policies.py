"""Channel-scheduler policies: horizon throttling, direction grouping,
bounded FR-FCFS lookahead, drain behaviour."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address_mapping import AddressMapping
from repro.mem.request import MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry


def make_system(channels=1):
    engine = Engine()
    stats = StatRegistry()
    system = MemorySystem(engine, AddressMapping(channels=channels), stats)
    return engine, stats, system


class TestIssueHorizon:
    def test_queues_hold_depth_under_burst(self):
        """A burst must not drain instantly into future reservations."""
        engine, _, system = make_system()
        channel = system.channels[0]
        for i in range(32):
            system.enqueue(MemoryRequest(i * 64 * 1024, RequestType.WRITE))
        # Before the engine runs, everything is queued.
        assert channel.pending == 32
        engine.run(until_ps=ns_to_ps(20.0))
        # A short while in, most of the burst is still genuinely queued
        # (bounded in-flight), not reserved into the far future.
        assert channel.pending > 16
        engine.run()
        assert channel.pending == 0

    def test_all_requests_eventually_serviced(self):
        engine, stats, system = make_system()
        done = []
        for i in range(64):
            request = MemoryRequest(i * 64, RequestType.READ)
            request.issue_time_ps = 0
            system.enqueue(request, lambda r: done.append(r))
        engine.run()
        assert len(done) == 64


class TestDirectionGrouping:
    def test_same_direction_bursts_grouped(self):
        """Queued same-direction requests issue together, saving
        turnarounds versus strict arrival order."""
        engine, stats, system = make_system()
        # Interleave arrival order: R W R W R W ... (distinct banks).
        for i in range(16):
            request_type = RequestType.READ if i % 2 == 0 else RequestType.WRITE
            system.enqueue(MemoryRequest(i * 64 * 1024, request_type))
        engine.run()
        turnarounds = stats.group("channel0").get("bus_turnarounds")
        # Strict R/W alternation would need ~15 turnarounds; grouping
        # within the lookahead window cuts that well down.
        assert turnarounds < 12


class TestBoundedLookahead:
    def test_row_hits_prioritized_within_window(self):
        engine, stats, system = make_system()
        mapping = system.mapping
        # Open a row, then queue a conflicting request followed by a
        # row-hit request: the hit should issue first.
        opener = MemoryRequest(0, RequestType.READ)
        opener.issue_time_ps = 0
        done = []
        system.enqueue(opener, lambda r: done.append(("opener", engine.now_ps)))
        engine.run()
        conflict = MemoryRequest(
            mapping.encode(
                mapping.decode(0).__class__(channel=0, rank=0, bank=0, row=9, column=0)
            ),
            RequestType.READ,
        )
        hit = MemoryRequest(64, RequestType.READ)
        for name, request in (("conflict", conflict), ("hit", hit)):
            request.issue_time_ps = engine.now_ps
            system.enqueue(request, lambda r, n=name: done.append((n, engine.now_ps)))
        engine.run()
        order = [name for name, _ in done]
        assert order.index("hit") < order.index("conflict")


class TestWriteDrain:
    def test_writes_do_not_starve(self):
        engine, stats, system = make_system()
        # Continuous read pressure plus a batch of writes.
        for i in range(40):
            system.enqueue(MemoryRequest(i * 64 * 1024, RequestType.READ))
            if i < 20:
                system.enqueue(MemoryRequest((1000 + i) * 64 * 1024, RequestType.WRITE))
        engine.run()
        group = stats.group("channel0")
        assert group.get("writes") == 20
        assert group.get("requests_serviced") == 60


@settings(max_examples=20, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4000),
            st.booleans(),
            st.integers(min_value=0, max_value=200),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_every_read_completes_property(operations):
    """No request is ever lost, whatever the arrival pattern."""
    engine, _, system = make_system()
    completed = []
    expected_reads = 0
    time = 0
    for block, is_write, gap in operations:
        time += ns_to_ps(float(gap))
        request = MemoryRequest(
            block * 64, RequestType.WRITE if is_write else RequestType.READ
        )
        if not is_write:
            expected_reads += 1

        def send(request=request):
            request.issue_time_ps = engine.now_ps
            system.enqueue(
                request, (lambda r: completed.append(r)) if request.is_read else None
            )

        engine.schedule_at(time, send)
    engine.run()
    assert len(completed) == expected_reads
    for request in completed:
        assert request.latency_ps > 0
