"""Channel scheduler: latency composition, dummy handling, bus behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.address_mapping import AddressMapping
from repro.mem.bus import BusObserver, Direction, MemoryBus, TransferKind
from repro.mem.request import MemoryRequest, RequestType
from repro.mem.scheduler import MemorySystem
from repro.sim.engine import Engine, ns_to_ps
from repro.sim.statistics import StatRegistry


def make_system(channels=1, bus=None, functional=False):
    engine = Engine()
    stats = StatRegistry()
    mapping = AddressMapping(channels=channels)
    system = MemorySystem(engine, mapping, stats, bus=bus, functional=functional)
    return engine, stats, system


def run_one(system, engine, request):
    done = []
    request.issue_time_ps = engine.now_ps
    system.enqueue(request, lambda r: done.append(r))
    engine.run()
    assert len(done) == 1
    return done[0]


class TestReadTiming:
    def test_cold_read_latency(self):
        engine, _, system = make_system()
        request = run_one(system, engine, MemoryRequest(0, RequestType.READ))
        # command + activation + CAS + burst
        expected = ns_to_ps(1.25 + 60 + 13.75 + 5)
        assert request.latency_ps == expected

    def test_row_hit_read_is_faster(self):
        engine, _, system = make_system()
        run_one(system, engine, MemoryRequest(0, RequestType.READ))
        request = run_one(system, engine, MemoryRequest(64, RequestType.READ))
        assert request.latency_ps == ns_to_ps(1.25 + 13.75 + 5)

    def test_bank_conflict_serializes(self):
        engine, _, system = make_system()
        mapping = system.mapping
        same_bank_other_row = mapping.encode(
            mapping.decode(0).__class__(channel=0, rank=0, bank=0, row=7, column=0)
        )
        done = []
        for address in (0, same_bank_other_row):
            request = MemoryRequest(address, RequestType.READ)
            request.issue_time_ps = 0
            system.enqueue(request, lambda r: done.append(r))
        engine.run()
        assert done[1].latency_ps > done[0].latency_ps


class TestWriteHandling:
    def test_write_completes(self):
        engine, _, system = make_system()
        request = run_one(system, engine, MemoryRequest(0, RequestType.WRITE))
        assert request.complete_time_ps is not None

    def test_reads_prioritized_over_writes(self):
        engine, _, system = make_system()
        done = []
        write = MemoryRequest(0, RequestType.WRITE)
        read = MemoryRequest(1024 * 64, RequestType.READ)
        for request in (write, read):
            request.issue_time_ps = 0
            system.enqueue(request, lambda r: done.append(r))
        engine.run()
        # Both complete; the read is not stuck behind the posted write by
        # more than the first command slot.
        read_latency = next(r for r in done if r.is_read).latency_ps
        assert read_latency < ns_to_ps(120)

    def test_write_drain_under_pressure(self):
        engine, stats, system = make_system()
        for i in range(20):
            system.enqueue(MemoryRequest(i * 64 * 1024, RequestType.WRITE))
        engine.run()
        assert stats.group("channel0").get("writes") == 20


class TestDummyHandling:
    def test_droppable_dummy_write_touches_no_bank(self):
        engine, stats, system = make_system()
        dummy = MemoryRequest(0, RequestType.WRITE, is_dummy=True, droppable=True)
        run_one(system, engine, dummy)
        assert stats.group("pcm0").get("row_buffer_accesses") == 0
        assert stats.group("channel0").get("dummy_writes_dropped") == 1

    def test_droppable_dummy_read_answered_without_array(self):
        engine, stats, system = make_system()
        dummy = MemoryRequest(0, RequestType.READ, is_dummy=True, droppable=True)
        run_one(system, engine, dummy)
        assert stats.group("pcm0").get("array_reads") == 0
        assert stats.group("channel0").get("dummy_reads_answered") == 1

    def test_non_droppable_dummy_does_array_work(self):
        engine, stats, system = make_system()
        dummy = MemoryRequest(0, RequestType.WRITE, is_dummy=True, droppable=False)
        run_one(system, engine, dummy)
        assert stats.group("pcm0").get("row_buffer_accesses") == 1

    def test_dummy_occupies_bus(self):
        engine, stats, system = make_system()
        dummy = MemoryRequest(0, RequestType.WRITE, is_dummy=True, droppable=True)
        run_one(system, engine, dummy)
        assert stats.group("channel0").get("bus_bytes") == 64


class TestBusObservability:
    def test_transfers_emitted(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, system = make_system(bus=bus)
        run_one(system, engine, MemoryRequest(0, RequestType.READ))
        kinds = [t.kind for t in observer.transfers]
        assert kinds == [TransferKind.COMMAND, TransferKind.DATA]
        assert observer.transfers[0].direction is Direction.TO_MEMORY
        assert observer.transfers[1].direction is Direction.TO_PROCESSOR

    def test_plaintext_wire_format_by_default(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, system = make_system(bus=bus)
        run_one(system, engine, MemoryRequest(0x4000, RequestType.WRITE))
        command = observer.command_transfers()[0]
        assert command.wire_bytes[0] == 1  # write type byte
        assert int.from_bytes(command.wire_bytes[1:9], "big") == 0x4000

    def test_custom_wire_bytes_pass_through(self):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        engine, _, system = make_system(bus=bus)
        request = MemoryRequest(0, RequestType.READ)
        request.issue_time_ps = 0
        system.enqueue(request, None, wire_command=b"\xab" * 16)
        engine.run()
        assert observer.command_transfers()[0].wire_bytes == b"\xab" * 16

    def test_turnaround_counted_on_direction_change(self):
        engine, stats, system = make_system()
        read = MemoryRequest(0, RequestType.READ)
        write = MemoryRequest(1024 * 64 * 8, RequestType.WRITE)
        for request in (read, write):
            request.issue_time_ps = 0
            system.enqueue(request)
        engine.run()
        assert stats.group("channel0").get("bus_turnarounds") >= 1


class TestRouting:
    def test_requests_route_by_channel(self):
        engine, stats, system = make_system(channels=2)
        system.enqueue(MemoryRequest(0, RequestType.READ))
        system.enqueue(MemoryRequest(1024, RequestType.READ))  # channel 1
        engine.run()
        assert stats.group("channel0").get("reads") == 1
        assert stats.group("channel1").get("reads") == 1

    def test_wrong_channel_rejected(self):
        engine, _, system = make_system(channels=2)
        with pytest.raises(ConfigurationError):
            system.channels[0].enqueue(MemoryRequest(1024, RequestType.READ))

    def test_promote_oldest_write(self):
        engine, stats, system = make_system()
        system.enqueue(MemoryRequest(0, RequestType.WRITE))
        channel = system.channels[0]
        assert channel.pending_real_writes == 1
        assert channel.promote_oldest_write() is True
        assert channel.promote_oldest_write() is False
        engine.run()
        assert stats.group("channel0").get("writes_promoted") == 1

    def test_functional_payload_roundtrip(self):
        engine, _, system = make_system(functional=True)
        payload = bytes(range(64))
        write = MemoryRequest(128, RequestType.WRITE, payload=payload)
        run_one(system, engine, write)
        read = run_one(system, engine, MemoryRequest(128, RequestType.READ))
        assert read.payload == payload
