"""Multi-channel functional system: boot to ciphertext, end to end."""

import pytest

from repro.analysis.leakage import channel_entropy, ciphertext_repeat_fraction
from repro.core.config import AuthMode
from repro.core.system import BootApproach, FunctionalObfusMemSystem
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, TrustError
from repro.mem.bus import BusObserver, MemoryBus


def make_system(**kwargs):
    return FunctionalObfusMemSystem(DeterministicRng(2024), **kwargs)


class TestBoot:
    @pytest.mark.parametrize("approach", list(BootApproach))
    def test_all_approaches_boot(self, approach):
        system = make_system(approach=approach)
        assert len(system.session_keys) == 2

    def test_per_channel_keys_differ(self):
        system = make_system(channels=4)
        keys = {system.session_keys.key_for(c) for c in range(4)}
        assert len(keys) == 4

    def test_malicious_integrator_fails_attested_boot(self):
        with pytest.raises(TrustError):
            make_system(
                approach=BootApproach.UNTRUSTED_INTEGRATOR,
                malicious_integrator=True,
            )

    def test_malicious_integrator_also_fails_trusted_boot(self):
        # The burned MITM key cannot produce valid chip signatures.
        with pytest.raises(TrustError):
            make_system(
                approach=BootApproach.TRUSTED_INTEGRATOR,
                malicious_integrator=True,
            )


class TestDataPath:
    def test_roundtrip_across_channels(self):
        system = make_system(channels=2)
        blocks = {i * 64: bytes([i]) * 64 for i in range(1, 40)}
        for address, data in blocks.items():
            system.write(address, data)
        for address, data in blocks.items():
            assert system.read(address) == data

    def test_addresses_route_to_distinct_channels(self):
        system = make_system(channels=2)
        system.write(0, b"a" * 64)  # channel 0
        system.write(1024, b"b" * 64)  # channel 1 (RoRaBaChCo stripes @1KB)
        assert system.channels[0].memory_side.cell_writes == 1
        assert system.channels[1].memory_side.cell_writes == 1

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make_system().write(0, b"short")

    def test_dummy_block_not_addressable(self):
        system = make_system()
        with pytest.raises(ConfigurationError):
            system.channels[0].read(system.channels[0].dummy_address)

    def test_snapshot_is_ciphertext_only(self):
        system = make_system()
        secret = b"very secret block contents!".ljust(64, b".")
        system.write(0x4000, secret)
        assert secret not in system.array_snapshot().values()


class TestObfuscation:
    def _observe(self, **kwargs):
        bus = MemoryBus()
        observer = BusObserver()
        bus.attach(observer)
        system = FunctionalObfusMemSystem(DeterministicRng(9), bus=bus, **kwargs)
        for i in range(1, 30):
            # Blocks 1..15 stay within the first 1KB stripe: channel 0 only.
            address = (i % 15 + 1) * 64
            system.write(address, bytes([i]) * 64)
            system.read(address)
        return system, observer

    def test_inter_channel_dummies_balance_channels(self):
        _, observer = self._observe(channels=2)
        assert channel_entropy(observer.transfers, 2) > 0.95

    def test_without_injection_single_channel_leaks(self):
        _, observer = self._observe(channels=2, inter_channel_dummies=False)
        assert channel_entropy(observer.transfers, 2) < 0.5

    def test_no_ciphertext_repeats_anywhere(self):
        _, observer = self._observe(channels=2)
        assert ciphertext_repeat_fraction(observer.transfers) == 0.0

    def test_dummies_dropped_in_memory(self):
        system, _ = self._observe(channels=2)
        assert system.dummies_dropped > 50

    def test_counters_stay_synchronized_under_load(self):
        system, _ = self._observe(channels=2)
        for channel in system.channels:
            assert channel.codec.request_counter == (
                channel.memory_side.codec.request_counter
            )

    def test_auth_none_also_works(self):
        system = make_system(auth=AuthMode.NONE)
        system.write(0x1000, b"x" * 64)
        assert system.read(0x1000) == b"x" * 64
